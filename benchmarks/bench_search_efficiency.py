"""Search efficiency: ASHA vs the exhaustive grid on a defended-attack sweep.

The adaptive search's pitch is *quality at a fraction of the budget*: launch
every hyper-parameter combination at low fidelity (few communication rounds),
keep the top ``1/eta`` per rung, and promote the survivors by **resuming their
stored checkpoints** instead of replaying them.  This bench makes the three
load-bearing claims assertable on a real workload — FAIR-BFL under a
mixed-attack adversary, searching ``(learning_rate, defense,
defense_fraction, staleness_decay)``:

* **quality** — ASHA's winner scores within :data:`QUALITY_TOLERANCE` of the
  exhaustive grid's best final accuracy;
* **budget** — ASHA spends at most :data:`BUDGET_FRACTION` of the grid's
  round-evaluations (the engine's ``round_evaluations`` counter: only rounds
  actually computed count; checkpoint-resumed prefixes and cache hits are
  free);
* **resumability** — a search killed after its first rung and re-run against
  the same store finishes with a bit-identical leaderboard while recomputing
  only what the kill lost.

The smoke tier runs a 4-trial cohort end-to-end for structural coverage;
the full grid (3 lrs x 2 defenses x 2 fractions x 2 decays = 24 trials)
runs via ``pytest benchmarks/bench_search_efficiency.py`` or
``REPRO_FULL_BENCH=1``.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks.conftest import emit, emit_json
from repro import api
from repro.core.results import ComparisonResult, summarize_history
from repro.runner.scenario import ScenarioSpec
from repro.search import run_search

#: ASHA's winner must land within this much final accuracy of the grid's best.
QUALITY_TOLERANCE = 0.03
#: ...while spending at most this fraction of the grid's round-evaluations.
BUDGET_FRACTION = 0.40

ETA = 3
FULL_ROUNDS = 9
#: First-rung fidelity.  The default ``ceil(R/eta²) = 1`` round is too noisy
#: to rank a defended-attack cohort reliably; two rounds gives a stable
#: ranking at rungs (2, 6, 9) while keeping the budget at 40% of the grid.
MIN_ROUNDS = 2

#: The searched axes: optimisation (lr), defense choice and sizing, and the
#: async staleness weighting — 24 grid cells under a mixed-attack adversary.
LEARNING_RATES = (0.01, 0.05, 0.2)
DEFENSES = ("none", "krum")
DEFENSE_FRACTIONS = (0.1, 0.3)
STALENESS_DECAYS = (0.25, 1.0)


def _trial(lr: float, defense: str, fraction: float, decay: float) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"search[lr={lr},defense={defense},frac={fraction},decay={decay}]",
        system="fairbfl",
        num_clients=8,
        num_samples=320,
        num_rounds=FULL_ROUNDS,
        participation=0.5,
        round_mode="async",
        staleness_decay=decay,
        attacks=True,
        attack_name="mixed",
        defense=defense,
        defense_fraction=fraction,
        learning_rate=lr,
        seed=5,
    )


def _grid() -> list[ScenarioSpec]:
    return [
        _trial(lr, defense, fraction, decay)
        for lr in LEARNING_RATES
        for defense in DEFENSES
        for fraction in DEFENSE_FRACTIONS
        for decay in STALENESS_DECAYS
    ]


def _leaderboard_fingerprint(result) -> list[tuple]:
    return [dataclasses.astuple(t) for t in result.leaderboard]


def test_search_efficiency(benchmark, tmp_path):
    trials = _grid()

    def _run():
        # Exhaustive reference: every cell at full fidelity on a storeless
        # engine, so the search below cannot free-ride on its records.
        grid_engine = api.ExperimentEngine()
        grid_scores = {}
        for spec in trials:
            history = grid_engine.run(spec)
            grid_scores[spec.name] = float(summarize_history(history)["final_accuracy"])
        # Adaptive search on a fresh store.
        engine = api.ExperimentEngine(store=api.RunStore(tmp_path / "asha"), reuse_cached=True)
        result = run_search(trials, engine=engine, eta=ETA, min_rounds=MIN_ROUNDS)
        # Kill-and-resume: replay only rung 0 into a fresh store, then re-run
        # the full search against it.
        killed = api.ExperimentEngine(store=api.RunStore(tmp_path / "killed"), reuse_cached=True)
        for spec in trials:
            killed.run_partial(spec, result.rungs[0])
        resumed = run_search(trials, engine=killed, eta=ETA, min_rounds=MIN_ROUNDS)
        return grid_engine, grid_scores, result, resumed

    grid_engine, grid_scores, result, resumed = benchmark.pedantic(_run, rounds=1, iterations=1)

    grid_best_name = max(grid_scores, key=grid_scores.get)
    grid_best = grid_scores[grid_best_name]
    gap = grid_best - result.best.score

    table = ComparisonResult(
        title="Search efficiency -- ASHA vs exhaustive grid (mixed-attack FAIR-BFL)",
        columns=["strategy", "round_evals", "best_scenario", "best_final_accuracy"],
    )
    table.add_row("grid", grid_engine.round_evaluations, grid_best_name, grid_best)
    table.add_row("asha", result.round_evaluations, result.best.name, result.best.score)
    table.notes.append(
        f"rungs {result.rungs}, eta {ETA}: {result.evaluation_fraction:.0%} of the "
        f"grid's round-evaluations, accuracy gap {gap:+.4f}"
    )
    emit(table, "search_efficiency.txt")
    emit_json(
        "search_efficiency",
        config={
            "eta": ETA,
            "rungs": list(result.rungs),
            "grid_cells": len(trials),
            "full_rounds": FULL_ROUNDS,
            "quality_tolerance": QUALITY_TOLERANCE,
            "budget_fraction": BUDGET_FRACTION,
        },
        measurements=[
            {
                "label": "grid",
                "round_evaluations": grid_engine.round_evaluations,
                "best": grid_best_name,
                "best_final_accuracy": grid_best,
            },
            {
                "label": "asha",
                "round_evaluations": result.round_evaluations,
                "best": result.best.name,
                "best_final_accuracy": result.best.score,
            },
        ],
        notes=[
            "round_evaluations counts computed rounds only (resume/cache are free)",
            "killed-and-resumed search asserted bit-identical to the straight search",
        ],
        specs=trials,
    )

    # Quality: the adaptive winner is competitive with the exhaustive best.
    assert gap <= QUALITY_TOLERANCE, (
        f"ASHA best {result.best.score:.4f} ({result.best.name}) trails grid best "
        f"{grid_best:.4f} ({grid_best_name}) by {gap:.4f} > {QUALITY_TOLERANCE}"
    )
    # Budget: at most 40% of the grid's round-evaluations.
    assert result.grid_round_evaluations == grid_engine.round_evaluations
    assert result.round_evaluations <= BUDGET_FRACTION * result.grid_round_evaluations, (
        f"ASHA spent {result.round_evaluations} round-evaluations, over "
        f"{BUDGET_FRACTION:.0%} of the grid's {result.grid_round_evaluations}"
    )
    # Resumability: the killed-and-resumed search finishes bit-identically.
    assert _leaderboard_fingerprint(resumed) == _leaderboard_fingerprint(result)
    assert resumed.cache_hits >= len(trials)


@pytest.mark.smoke
def test_search_efficiency_smoke(tmp_path):
    """Fast structural pass: a 4-trial corner of the grid, all three claims."""
    trials = [
        _trial(lr, defense, DEFENSE_FRACTIONS[0], STALENESS_DECAYS[0])
        for lr in LEARNING_RATES[:2]
        for defense in DEFENSES
    ]
    engine = api.ExperimentEngine(store=api.RunStore(tmp_path / "a"), reuse_cached=True)
    result = run_search(trials, engine=engine, eta=2, min_rounds=3)
    assert result.round_evaluations < result.grid_round_evaluations
    assert result.best.name == result.leaderboard[0].name

    killed = api.ExperimentEngine(store=api.RunStore(tmp_path / "b"), reuse_cached=True)
    for spec in trials:
        killed.run_partial(spec, result.rungs[0])
    resumed = run_search(trials, engine=killed, eta=2, min_rounds=3)
    assert _leaderboard_fingerprint(resumed) == _leaderboard_fingerprint(result)
