"""Shared infrastructure for the benchmark harness.

Every bench module regenerates one table or figure of the paper at laptop
scale: it runs the experiment, prints the rows/series the paper reports (and
writes them to ``benchmarks/results/``), and registers a pytest-benchmark
measurement for the core computation so the harness also tracks runtime.

Scale note: the paper's full configuration (n=100 clients, 100 communication
rounds, full MNIST) is hours of pure-Python compute; the benches run the same
experiment *shapes* at a reduced scale (documented per bench and in
EXPERIMENTS.md).  The qualitative conclusions -- orderings, crossovers, trends
-- are what is being reproduced.
"""

from __future__ import annotations

import os
import platform
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.experiment import ExperimentSuite  # noqa: E402
from repro.core.results import ComparisonResult  # noqa: E402
from repro.fl.client import LocalTrainingConfig  # noqa: E402
from repro.store.keys import spec_key  # noqa: E402
from repro.store.records import write_json_record  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_configure(config) -> None:
    """Register the benchmark-local markers (pytest has no ini file here)."""
    config.addinivalue_line(
        "markers",
        "smoke: fast structural subset of a bench (run with -m smoke to keep CI quick)",
    )


def pytest_collect_file(file_path: Path, parent):
    """Collect ``bench_*.py`` modules during directory collection.

    Pytest's default ``python_files`` pattern only auto-collects
    ``test_*.py``, so historically the benches only ran when named explicitly
    on the command line.  This hook pulls them into directory-level collection
    too — which is what lets the plain tier-1 run (``pytest -x -q``) and
    ``pytest benchmarks -m smoke`` exercise every bench's smoke subset.
    Explicitly named files are left to the built-in python plugin (it
    collects init paths regardless of pattern); returning a second module for
    them would duplicate every test.
    """
    if file_path.name.startswith("bench_") and file_path.suffix == ".py":
        if parent.session.isinitpath(file_path):
            return None
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def pytest_collection_modifyitems(config, items) -> None:
    """Keep directory-level runs on the smoke tier.

    Full bench tests (everything in a ``bench_*.py`` without the ``smoke``
    marker) run only when their file is named explicitly on the command line
    or ``REPRO_FULL_BENCH=1`` is set; otherwise they are skipped, so the
    tier-1 suite gains the fast smoke coverage without inheriting the
    multi-minute full benchmarks.
    """
    if os.environ.get("REPRO_FULL_BENCH"):
        return
    skip_full = pytest.mark.skip(
        reason=(
            "full bench: run its file explicitly "
            "(pytest benchmarks/bench_<name>.py) or set REPRO_FULL_BENCH=1"
        )
    )
    for item in items:
        if not item.path.name.startswith("bench_"):
            continue
        if item.get_closest_marker("smoke") is not None:
            continue
        if item.session.isinitpath(item.path):
            continue
        item.add_marker(skip_full)


def visible_cpus() -> int:
    """CPUs visible to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def emit(table: ComparisonResult, filename: str) -> None:
    """Print a reproduction table and persist it under benchmarks/results/."""
    text = table.to_text()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")


def emit_json(
    name: str,
    *,
    config: dict,
    measurements: list[dict],
    notes: list[str] | None = None,
    specs=(),
) -> Path:
    """Persist a machine-readable benchmark record as ``benchmarks/results/BENCH_<name>.json``.

    The record is written through the run store's versioned serialiser
    (:func:`repro.store.records.write_json_record`), so every ``BENCH_*.json``
    carries the shared ``schema_version`` stamp: ``config`` captures the
    workload knobs, each entry of ``measurements`` pairs a label with its
    wall-clock seconds and (where meaningful) the simulated per-round delay,
    and environment facts that affect wall-clock (python version, CPU count
    visible to the process) ride along.  Pass the bench's ``ScenarioSpec``
    objects as ``specs`` to record their content addresses
    (:func:`repro.store.keys.spec_key`) under ``spec_keys`` — the hash that
    links a benchmark row to the run store's cached cell for the same
    scenario.
    """
    payload = {
        "benchmark": name,
        "config": config,
        "measurements": measurements,
        "notes": list(notes or []),
        "spec_keys": {spec.name: spec_key(spec) for spec in specs},
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": visible_cpus(),
        },
    }
    path = write_json_record(RESULTS_DIR / f"BENCH_{name}.json", payload, kind="benchmark")
    print(f"\nmachine-readable record written to {path}")
    return path


@pytest.fixture(scope="session")
def bench_suite() -> ExperimentSuite:
    """The shared scaled-down experimental setup used by most benches."""
    return ExperimentSuite(
        num_clients=20,
        num_samples=1500,
        num_rounds=10,
        participation_fraction=0.5,
        scheme="dirichlet",
        model_name="logreg",
        local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        seed=0,
    )


@pytest.fixture(scope="session")
def smoke_suite() -> ExperimentSuite:
    """A minimal setup for the smoke tier: structural coverage in seconds."""
    return ExperimentSuite(
        num_clients=8,
        num_samples=600,
        num_rounds=2,
        participation_fraction=0.5,
        scheme="dirichlet",
        model_name="logreg",
        local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
        seed=0,
    )


@pytest.fixture(scope="session")
def smoke_quality_suite() -> ExperimentSuite:
    """Smoke-scale setup with low-quality clients for the discard benches."""
    return ExperimentSuite(
        num_clients=8,
        num_samples=600,
        num_rounds=3,
        participation_fraction=0.5,
        scheme="dirichlet",
        low_quality_fraction=0.3,
        model_name="logreg",
        local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
        seed=0,
    )


@pytest.fixture(scope="session")
def quality_suite() -> ExperimentSuite:
    """Setup with low-quality (label-noise) clients for the Fig. 7 benches."""
    return ExperimentSuite(
        num_clients=20,
        num_samples=1500,
        num_rounds=16,
        participation_fraction=0.5,
        scheme="dirichlet",
        low_quality_fraction=0.3,
        model_name="logreg",
        local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        seed=0,
    )
