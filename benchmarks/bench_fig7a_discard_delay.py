"""Figure 7a: average delay with and without the discarding strategy.

Paper result: FAIR-BFL with the discard strategy is markedly faster than plain
FAIR-BFL (discarded low contributors sit out the following round, shrinking
the per-round workload), approaching -- in the paper, slightly beating --
FedAvg, while the vanilla blockchain remains the slowest.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.results import ComparisonResult


def _run(suite):
    fair = suite.run("fairbfl")
    fair_discard = suite.run("fairbfl", strategy="discard", dbscan_eps=0.6)
    fedavg = suite.run("fedavg")
    chain = suite.run("blockchain", num_clients=100)
    return fair, fair_discard, fedavg, chain


def test_fig7a_discard_delay(benchmark, quality_suite):
    fair, fair_discard, fedavg, chain = benchmark.pedantic(
        _run, args=(quality_suite,), rounds=1, iterations=1
    )

    table = ComparisonResult(
        title="Figure 7a -- running average delay (s) with the discarding strategy",
        columns=["round", "FAIR-Discard", "FAIR", "Blockchain", "FedAvg"],
    )
    for i in range(len(fair)):
        table.add_row(
            i + 1,
            fair_discard.running_average_delay()[i],
            fair.running_average_delay()[i],
            chain.running_average_delay()[i] if i < len(chain) else float("nan"),
            fedavg.running_average_delay()[i],
        )
    discarded_per_round = [len(r.discarded) for r in fair_discard.rounds]
    participants_per_round = [len(r.participants) for r in fair_discard.rounds]
    table.notes.append(f"clients discarded per round: {discarded_per_round}")
    table.notes.append(f"participants per round (discard run): {participants_per_round}")
    table.notes.append(
        "paper: FAIR-Discard < FedAvg < FAIR < Blockchain; at this simulation scale the "
        "discard savings land FAIR-Discard between FedAvg and FAIR (see EXPERIMENTS.md)"
    )
    emit(table, "fig7a_discard_delay.txt")

    # Core qualitative claims: discarding reduces FAIR-BFL's delay, and the
    # vanilla blockchain remains the slowest system.
    assert fair_discard.average_delay() <= fair.average_delay()
    assert chain.average_delay() > fair.average_delay()
    # The discard strategy did actually discard someone.
    assert sum(discarded_per_round) > 0


@pytest.mark.smoke
def test_fig7a_discard_delay_smoke(smoke_quality_suite):
    """Fast structural pass: the discard run completes with well-formed rounds."""
    fair_discard = smoke_quality_suite.run("fairbfl", strategy="discard", dbscan_eps=0.6)
    assert fair_discard.average_delay() > 0
    assert all(isinstance(r.discarded, list) for r in fair_discard.rounds)
