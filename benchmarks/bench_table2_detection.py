"""Table 2: detecting malicious attacks with the contribution-based incentive mechanism.

Paper protocol: 10 indexed clients, 1-3 random clients designated malicious
each round, 10 rounds, DBSCAN clustering; the table reports the attacker
indices, the drop list, the per-round detection rate, and the average
detection rate for non-IID and IID data (paper: 64.96% non-IID, 75% IID, with
IID > non-IID).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.config import FairBFLConfig
from repro.core.experiment import build_federated_dataset, run_fairbfl
from repro.core.results import ComparisonResult
from repro.fl.client import LocalTrainingConfig
from repro.incentive.contribution import ContributionConfig

NUM_CLIENTS = 10
NUM_ROUNDS = 10


def _run_detection(scheme: str, seed: int = 0):
    dataset = build_federated_dataset(
        num_clients=NUM_CLIENTS,
        num_samples=800,
        scheme=scheme,
        seed=seed,
        noise_std=0.35,
    )
    config = FairBFLConfig(
        num_rounds=NUM_ROUNDS,
        participation_fraction=1.0,
        local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        model_name="logreg",
        strategy="discard",
        enable_attacks=True,
        attack_name="sign_flip",
        min_attackers=1,
        max_attackers=3,
        contribution=ContributionConfig(eps=0.7),
        seed=seed,
    )
    trainer, _history = run_fairbfl(dataset, config=config)
    return trainer.detection_logs(), trainer.average_detection_rate()


def _run_both():
    non_iid_logs, non_iid_rate = _run_detection("dirichlet")
    iid_logs, iid_rate = _run_detection("iid")
    return (non_iid_logs, non_iid_rate), (iid_logs, iid_rate)


def test_table2_malicious_detection(benchmark):
    (non_iid_logs, non_iid_rate), (iid_logs, iid_rate) = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )

    table = ComparisonResult(
        title="Table 2 -- detecting malicious attacks (contribution-based incentive mechanism)",
        columns=["distribution", "round", "attacker_index", "drop_index", "detection_rate"],
    )
    for label, logs in (("Non-IID", non_iid_logs), ("IID", iid_logs)):
        for log in logs:
            table.add_row(
                label,
                log.round_index + 1,
                str(log.attacker_ids),
                str(log.dropped_ids),
                log.detection_rate,
            )
    table.notes.append(
        f"average detection rate: Non-IID={non_iid_rate:.2%}, IID={iid_rate:.2%}"
    )
    table.notes.append("paper: Non-IID 64.96%, IID 75% (IID easier than non-IID)")
    emit(table, "table2_detection.txt")

    # Every round designated between 1 and 3 attackers, as in the paper's protocol.
    for logs in (non_iid_logs, iid_logs):
        assert len(logs) == NUM_ROUNDS
        assert all(1 <= len(log.attacker_ids) <= 3 for log in logs)
    # The mechanism catches a clear majority of attackers in both regimes.
    assert non_iid_rate >= 0.5
    assert iid_rate >= 0.6
    # The paper's qualitative ordering: IID detection is at least as good as non-IID.
    assert iid_rate >= non_iid_rate - 0.05


@pytest.mark.smoke
def test_table2_detection_smoke():
    """Fast structural pass: the detection protocol runs at toy scale."""
    dataset = build_federated_dataset(
        num_clients=6, num_samples=400, scheme="iid", seed=0, noise_std=0.35
    )
    config = FairBFLConfig(
        num_rounds=2,
        participation_fraction=1.0,
        local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
        model_name="logreg",
        strategy="discard",
        enable_attacks=True,
        attack_name="sign_flip",
        min_attackers=1,
        max_attackers=2,
        contribution=ContributionConfig(eps=0.7),
        seed=0,
    )
    trainer, _ = run_fairbfl(dataset, config=config)
    logs = trainer.detection_logs()
    assert len(logs) == 2
    assert all(1 <= len(log.attacker_ids) <= 2 for log in logs)
