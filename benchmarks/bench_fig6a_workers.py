"""Figure 6a: average delay as the number of workers grows.

Paper result: the vanilla blockchain's delay grows with the worker count
(every worker adds an on-chain transaction; once the volume crosses the block
size, queueing kicks in), while FAIR-BFL and FedAvg stay nearly flat because
each FAIR-BFL block carries only the round's single global gradient
(Assumption 2).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.experiment import ExperimentSuite
from repro.core.results import ComparisonResult
from repro.fl.client import LocalTrainingConfig

WORKER_COUNTS = (20, 60, 100, 140)


def _sweep():
    rows = []
    for n in WORKER_COUNTS:
        suite = ExperimentSuite(
            num_clients=n,
            num_samples=max(600, 30 * n),
            num_rounds=6,
            participation_fraction=0.1,
            model_name="logreg",
            local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
            seed=0,
        )
        fair = suite.run("fairbfl")
        fedavg = suite.run("fedavg")
        chain = suite.run("blockchain")
        rows.append((n, fair.average_delay(), chain.average_delay(), fedavg.average_delay()))
    return rows


def test_fig6a_delay_vs_workers(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = ComparisonResult(
        title="Figure 6a -- average delay (s) vs number of workers",
        columns=["workers", "FAIR", "Blockchain", "FedAvg"],
    )
    for row in rows:
        table.add_row(*row)
    table.notes.append(
        "paper: Blockchain grows with n (transaction volume / queueing); FAIR and FedAvg stay flat"
    )
    emit(table, "fig6a_workers.txt")

    workers = np.array([r[0] for r in rows], dtype=float)
    fair = np.array([r[1] for r in rows])
    chain = np.array([r[2] for r in rows])
    # Blockchain delay grows substantially from the smallest to the largest population.
    assert chain[-1] > 1.5 * chain[0]
    # FAIR-BFL's growth is far milder than the vanilla blockchain's.
    assert (fair[-1] - fair[0]) < 0.5 * (chain[-1] - chain[0])
    # At large scale the vanilla blockchain is the slowest system.
    assert chain[-1] > fair[-1]


@pytest.mark.smoke
def test_fig6a_workers_smoke():
    """Fast structural pass: one population point of the worker sweep."""
    suite = ExperimentSuite(
        num_clients=12,
        num_samples=600,
        num_rounds=2,
        participation_fraction=0.25,
        model_name="logreg",
        local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
        seed=0,
    )
    assert suite.run("fairbfl").average_delay() > 0
    assert suite.run("blockchain").average_delay() > 0
