"""Figure 4a: average per-round delay of FAIR-BFL vs vanilla blockchain vs FedAvg.

Paper result: FAIR-BFL's average delay lies *between* the vanilla blockchain
(highest) and FedAvg (lowest), because Assumptions 1 and 2 remove the
queueing/forking costs of the vanilla ledger while keeping one proof-of-work
block per round.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.results import ComparisonResult


def _run(suite):
    # All systems drive through the suite's scenario engine (one wiring path
    # shared with the CLI's run/compare/sweep subcommands).
    fair = suite.run("fairbfl")
    fedavg = suite.run("fedavg")
    chain = suite.run("blockchain", num_clients=100)
    return fair, fedavg, chain


def test_fig4a_delay_comparison(benchmark, bench_suite):
    fair, fedavg, chain = benchmark.pedantic(
        _run, args=(bench_suite,), rounds=1, iterations=1
    )

    table = ComparisonResult(
        title="Figure 4a -- running average delay per communication round (seconds)",
        columns=["round", "FAIR", "Blockchain", "FedAvg"],
    )
    fair_avg = fair.running_average_delay()
    chain_avg = chain.running_average_delay()
    fedavg_avg = fedavg.running_average_delay()
    for i in range(len(fair)):
        table.add_row(i + 1, fair_avg[i], chain_avg[i], fedavg_avg[i])
    table.notes.append(
        f"overall averages: FAIR={fair.average_delay():.2f}s, "
        f"Blockchain={chain.average_delay():.2f}s, FedAvg={fedavg.average_delay():.2f}s"
    )
    table.notes.append("paper: FedAvg < FAIR < Blockchain (approx. 6 / 9.5 / 15 s)")
    emit(table, "fig4a_delay.txt")

    # The paper's qualitative conclusion: FAIR sits between FedAvg and Blockchain.
    assert fedavg.average_delay() < fair.average_delay() < chain.average_delay()
    assert np.all(fair.delays > 0)


@pytest.mark.smoke
def test_fig4a_delay_smoke(smoke_suite):
    """Fast structural pass: FedAvg stays cheaper than the vanilla chain."""
    fedavg = smoke_suite.run("fedavg")
    chain = smoke_suite.run("blockchain", num_clients=20)
    assert 0.0 < fedavg.average_delay() < chain.average_delay()
