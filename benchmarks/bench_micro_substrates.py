"""Micro-benchmarks of the hot substrate operations.

These are conventional pytest-benchmark targets (many iterations of a small
operation) covering the per-round building blocks whose costs the delay model
abstracts: proof-of-work hashing, RSA signing/verification, DBSCAN clustering
of a gradient set, fair aggregation, and one client's local SGD epoch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.block import Block
from repro.blockchain.pow import mine_block
from repro.crypto.keystore import KeyStore
from repro.fl.aggregation import fair_aggregate
from repro.fl.client import FLClient, LocalTrainingConfig
from repro.incentive.clustering import DBSCAN
from repro.incentive.contribution import ContributionConfig, identify_contributions
from repro.nn.models import LogisticRegressionModel
from repro.nn.parameters import get_flat_parameters
from repro.utils.rng import new_rng


@pytest.fixture(scope="module")
def gradient_set():
    rng = new_rng(0, "micro", "gradients")
    honest = np.ones(512) + 0.1 * rng.normal(size=(18, 512))
    attackers = -np.ones(512) + 0.1 * rng.normal(size=(2, 512))
    return np.vstack([honest, attackers])


def test_micro_pow_mining(benchmark):
    """Nonce search at a small difficulty (Equation 4)."""

    def mine():
        block = Block.genesis()
        return mine_block(block, difficulty=64.0, max_attempts=1_000_000)

    result = benchmark(mine)
    assert result.success


def test_micro_rsa_sign_verify(benchmark):
    """One sign + verify cycle over a gradient-sized payload digest (Figure 2)."""
    store = KeyStore(seed=0, key_bits=256)
    store.register("client-0")
    payload = np.ones(1024).tobytes()

    def sign_and_verify():
        sig = store.sign("client-0", payload)
        return store.verify("client-0", payload, sig)

    assert benchmark(sign_and_verify)


def test_micro_dbscan_clustering(benchmark, gradient_set):
    """DBSCAN over a 20-vector gradient set (Algorithm 2's dominant cost)."""
    clusterer = DBSCAN(eps=0.5, min_samples=3, metric="cosine")
    result = benchmark(clusterer.fit, gradient_set)
    assert result.num_clusters >= 1


def test_micro_contribution_identification(benchmark, gradient_set):
    """Full Algorithm 2 (clustering + distances + reward list)."""
    ids = list(range(gradient_set.shape[0]))
    global_update = gradient_set.mean(axis=0)
    config = ContributionConfig(eps=0.5)

    report = benchmark(identify_contributions, gradient_set, ids, global_update, config)
    assert len(report.high_contributors) + len(report.low_contributors) == len(ids)


def test_micro_fair_aggregation(benchmark, gradient_set):
    """Equation (1) weighting over the gradient set."""
    thetas = np.linspace(0.1, 1.0, gradient_set.shape[0])
    agg = benchmark(fair_aggregate, gradient_set, thetas)
    assert agg.shape == (gradient_set.shape[1],)


def test_micro_local_sgd_epoch(benchmark, tiny_federated=None):
    """One client's local update (Procedure I) on a small shard."""
    from repro.core.experiment import build_federated_dataset

    dataset = build_federated_dataset(num_clients=4, num_samples=300, seed=0)
    shard = dataset.client(0)
    client = FLClient(
        shard, lambda: LogisticRegressionModel(784, 10, new_rng(0, "m")), new_rng(0, "c")
    )
    global_params = get_flat_parameters(client.model)
    config = LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05)

    update = benchmark(client.local_update, global_params, config)
    assert update.parameters.shape == global_params.shape


@pytest.mark.smoke
def test_micro_substrates_smoke(gradient_set):
    """Fast structural pass over the substrates, without benchmark timing."""
    assert mine_block(Block.genesis(), difficulty=16.0, max_attempts=100_000).success
    store = KeyStore(seed=0, key_bits=256)
    store.register("client-0")
    payload = np.ones(16).tobytes()
    assert store.verify("client-0", payload, store.sign("client-0", payload))
    assert DBSCAN(eps=0.5, min_samples=3, metric="cosine").fit(gradient_set).num_clusters >= 1
    agg = fair_aggregate(gradient_set, np.linspace(0.1, 1.0, gradient_set.shape[0]))
    assert agg.shape == (gradient_set.shape[1],)
