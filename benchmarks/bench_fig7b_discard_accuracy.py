"""Figure 7b: accuracy vs time with and without the discarding strategy.

Paper result: FAIR-BFL with the discard strategy converges faster and at least
as high as plain FAIR-BFL and FedAvg (dropping low-quality gradients removes
noise from the aggregation), while FedProx with drop_percent=0.02 plateaus
lower.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.results import ComparisonResult


def _run(suite):
    fair = suite.run("fairbfl")
    fair_discard = suite.run("fairbfl", strategy="discard", dbscan_eps=0.6)
    fedavg = suite.run("fedavg")
    fedprox = suite.run("fedprox", proximal_mu=0.1, drop_percent=0.02)
    return fair, fair_discard, fedavg, fedprox


def test_fig7b_discard_accuracy(benchmark, quality_suite):
    fair, fair_discard, fedavg, fedprox = benchmark.pedantic(
        _run, args=(quality_suite,), rounds=1, iterations=1
    )

    table = ComparisonResult(
        title="Figure 7b -- accuracy vs elapsed time with the discarding strategy",
        columns=["system", "round", "time_s", "accuracy"],
    )
    for name, hist in (
        ("FAIR-Discard", fair_discard),
        ("FAIR", fair),
        ("FedAvg", fedavg),
        ("FedProx-Drop(0.02)", fedprox),
    ):
        for i, (t, a) in enumerate(zip(*hist.accuracy_vs_time())):
            table.add_row(name, i + 1, t, a)
    table.notes.append(
        f"final accuracy: FAIR-Discard={fair_discard.final_accuracy():.3f}, "
        f"FAIR={fair.final_accuracy():.3f}, FedAvg={fedavg.final_accuracy():.3f}, "
        f"FedProx={fedprox.final_accuracy():.3f}"
    )
    table.notes.append("paper: FAIR-Discard converges fastest/highest; FedProx plateaus lower")
    emit(table, "fig7b_discard_accuracy.txt")

    # Discarding low-quality gradients does not hurt accuracy (paper: it helps).
    assert fair_discard.final_accuracy() >= fair.final_accuracy() - 0.03
    # Both FAIR variants end up at a useful accuracy on this workload.
    assert fair_discard.final_accuracy() > 0.6
    # FedProx with dropping does not beat the FAIR variants at convergence.
    assert fedprox.final_accuracy() <= max(
        fair_discard.final_accuracy(), fair.final_accuracy()
    ) + 0.02


@pytest.mark.smoke
def test_fig7b_discard_accuracy_smoke(smoke_quality_suite):
    """Fast structural pass: discard and plain runs produce comparable series."""
    fair = smoke_quality_suite.run("fairbfl")
    fair_discard = smoke_quality_suite.run("fairbfl", strategy="discard", dbscan_eps=0.6)
    assert len(fair_discard) == len(fair)
    assert 0.0 <= fair_discard.final_accuracy() <= 1.0
