"""Serving throughput: single-flight dedup and stored-run latency.

The experiment service's two quantitative promises, measured against a real
HTTP server on an ephemeral port:

* **exactly-once under contention** — :data:`CONCURRENT_SUBMITTERS` clients
  submitting the *same* scenario at the same instant trigger exactly one
  computation; everyone else collapses onto the in-flight job (single-flight)
  or reads the finished record through the store;
* **sub-millisecond reads** — once a run is stored, ``GET /v1/results/<key>``
  over a keep-alive connection answers from the rendered-payload cache with a
  median latency under :data:`LATENCY_BUDGET_MS` (the record is
  content-addressed and immutable, so the byte cache can never be stale).

The smoke tier boots an ephemeral server and does one submit/status/result
round-trip; the full measurement runs via
``pytest benchmarks/bench_serve_throughput.py`` or ``REPRO_FULL_BENCH=1``.
"""

from __future__ import annotations

import http.client
import json
import statistics
import threading
import time

import pytest

from benchmarks.conftest import emit, emit_json
from repro import api
from repro.core.results import ComparisonResult
from repro.runner.scenario import ScenarioSpec
from repro.serve.client import ServeClient

#: Identical submissions racing for one computation.
CONCURRENT_SUBMITTERS = 8
#: Median stored-run GET latency bound, in milliseconds.
LATENCY_BUDGET_MS = 1.0
#: Latency sample count (after warm-up) for the median.
LATENCY_SAMPLES = 200
WATCHDOG_S = 120.0


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="serve-throughput",
        system="fedavg",
        num_clients=6,
        num_samples=300,
        num_rounds=2,
        seed=3,
    )


def _timed_get(conn: http.client.HTTPConnection, path: str) -> tuple[float, bytes]:
    """One keep-alive GET; returns (seconds, body)."""
    start = time.perf_counter()
    conn.request("GET", path)
    response = conn.getresponse()
    body = response.read()
    elapsed = time.perf_counter() - start
    assert response.status == 200, f"GET {path} -> {response.status}"
    return elapsed, body


def test_serve_throughput(benchmark, tmp_path):
    spec = _spec()

    def _run():
        with api.serve(workers=2, store=tmp_path / "store") as server:
            # -- exactly-once under contention ---------------------------
            barrier = threading.Barrier(CONCURRENT_SUBMITTERS)
            finals: list[dict] = []
            errors: list[BaseException] = []

            def submitter() -> None:
                client = ServeClient(server.url)
                try:
                    barrier.wait(timeout=WATCHDOG_S)
                    job = client.submit(spec)[0]
                    finals.append(client.wait(job["job_id"], timeout=WATCHDOG_S))
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=submitter, daemon=True)
                for _ in range(CONCURRENT_SUBMITTERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WATCHDOG_S)
            assert not errors, f"submitters failed: {errors}"
            health = ServeClient(server.url).health()

            # -- stored-run read latency ---------------------------------
            key = finals[0]["result_key"]
            conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
            try:
                for _ in range(20):  # warm the connection and the byte cache
                    _timed_get(conn, f"/v1/results/{key}")
                samples = [
                    _timed_get(conn, f"/v1/results/{key}")[0]
                    for _ in range(LATENCY_SAMPLES)
                ]
                _, body = _timed_get(conn, f"/v1/results/{key}")
            finally:
                conn.close()
            record = json.loads(body.decode("utf-8"))
        return finals, health, samples, record

    finals, health, samples, record = benchmark.pedantic(_run, rounds=1, iterations=1)

    median_ms = statistics.median(samples) * 1000.0
    p99_ms = sorted(samples)[int(0.99 * (len(samples) - 1))] * 1000.0

    table = ComparisonResult(
        title="Serving throughput -- single-flight dedup and stored-run latency",
        columns=["metric", "value"],
    )
    table.add_row("concurrent identical submitters", CONCURRENT_SUBMITTERS)
    table.add_row("runs computed", health["engine"]["runs_computed"])
    table.add_row("singleflight + readthrough hits",
                  health["singleflight_hits"] + health["readthrough_hits"])
    table.add_row("median stored-run GET (ms)", round(median_ms, 4))
    table.add_row("p99 stored-run GET (ms)", round(p99_ms, 4))
    emit(table, "serve_throughput.txt")
    emit_json(
        "serve_throughput",
        config={
            "concurrent_submitters": CONCURRENT_SUBMITTERS,
            "latency_budget_ms": LATENCY_BUDGET_MS,
            "latency_samples": LATENCY_SAMPLES,
            "workers": 2,
        },
        measurements=[
            {
                "label": "dedup",
                "runs_computed": health["engine"]["runs_computed"],
                "singleflight_hits": health["singleflight_hits"],
                "readthrough_hits": health["readthrough_hits"],
            },
            {
                "label": "stored_run_get",
                "median_ms": median_ms,
                "p99_ms": p99_ms,
                "samples": len(samples),
            },
        ],
        notes=[
            "latency measured over one keep-alive HTTP/1.1 connection on loopback",
            "results served from the content-addressed byte cache (immutable records)",
        ],
        specs=[_spec()],
    )

    # Exactly one computation: the other 7 submissions deduped or read through.
    assert health["engine"]["runs_computed"] == 1, (
        f"{CONCURRENT_SUBMITTERS} identical submissions computed "
        f"{health['engine']['runs_computed']} times; expected exactly 1"
    )
    assert health["singleflight_hits"] + health["readthrough_hits"] == (
        CONCURRENT_SUBMITTERS - 1
    )
    assert all(f["state"] == "done" for f in finals)
    assert len({f["result_key"] for f in finals}) == 1

    # Stored-run reads are sub-millisecond at the median.
    assert median_ms < LATENCY_BUDGET_MS, (
        f"median stored-run GET latency {median_ms:.3f} ms over the "
        f"{LATENCY_BUDGET_MS} ms budget"
    )

    # The served record is the full-fidelity content-addressed form.
    assert record["key"] == finals[0]["result_key"]
    assert len(record["history"]["rounds"]) == _spec().num_rounds


@pytest.mark.smoke
def test_serve_round_trip_smoke(tmp_path):
    """Fast structural pass: boot, submit, poll, fetch, health — one of each."""
    with api.serve(workers=1, store=tmp_path / "store") as server:
        client = ServeClient(server.url)
        job = client.submit(_spec())[0]
        final = client.wait(job["job_id"], timeout=WATCHDOG_S)
        assert final["state"] == "done"
        record = client.result(final["result_key"])
        assert record["key"] == final["result_key"]
        history = client.history(final["result_key"])
        assert len(history.accuracies) == _spec().num_rounds
        health = client.health()
        assert health["status"] == "ok" and health["queue_depth"] == 0
