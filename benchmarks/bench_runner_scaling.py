"""Runner scaling: serial vs parallel wall-clock for Procedure I fan-out.

Measures the wall-clock of full FAIR-BFL rounds at 10 / 50 / 200 clients under
the ``serial``, ``thread`` and ``process`` executor backends, and verifies the
engine's central determinism claim: **per-round histories are bit-identical
across backends** (every stochastic draw comes from the owning client's
private RNG stream, and the process backend ships/restores those streams).
Because the serial backend is the original list-comprehension loop, backend
parity also pins the parallel paths to the seed implementation's output.

The speed-up assertion (parallel ≤ 0.6× serial wall-clock at 200 clients) is
made only when the machine exposes ≥ 4 CPUs to this process: on one CPU a
process pool cannot beat the serial loop at all, and on two the ideal ratio is
already 0.5× before pool overhead (client shipping, per-task parameter and
RNG-state transfer), which makes a hard 0.6× gate flaky.  Below that threshold
the bench still reports the measured ratio without asserting it.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit, emit_json, visible_cpus
from repro import api
from repro.core.results import ComparisonResult
from repro.runner.scenario import ScenarioSpec

CLIENT_COUNTS = (10, 50, 200)
BACKENDS = ("serial", "thread", "process")
SPEEDUP_TARGET = 0.6
MIN_CPUS_FOR_SPEEDUP_ASSERT = 4


def _scaling_spec(num_clients: int, backend: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"scaling[n={num_clients},backend={backend}]",
        system="fairbfl",
        num_clients=num_clients,
        num_samples=30 * num_clients,
        num_rounds=2,
        participation=0.5,
        epochs=2,
        batch_size=10,
        learning_rate=0.05,
        backend=backend,
        seed=0,
    )


def _fingerprint(history) -> tuple:
    """Everything stochastic about a run, for exact cross-backend comparison."""
    return tuple(
        (r.round_index, r.accuracy, r.train_loss, r.delay, tuple(r.participants), tuple(r.attackers))
        for r in history.rounds
    )


def _sweep():
    # One engine shared across the sweep (dataset memoisation); runs go
    # through the public facade, the same path the CLI takes.
    engine = api.ExperimentEngine()
    rows = []
    for n in CLIENT_COUNTS:
        timings: dict[str, float] = {}
        fingerprints: dict[str, tuple] = {}
        sim_delays: dict[str, float] = {}
        for backend in BACKENDS:
            spec = _scaling_spec(n, backend)
            engine.dataset_for(spec)  # exclude the (shared) partitioning cost
            start = time.perf_counter()
            history = api.run(spec, engine=engine)
            timings[backend] = time.perf_counter() - start
            fingerprints[backend] = _fingerprint(history)
            sim_delays[backend] = history.average_delay()
        rows.append((n, timings, fingerprints, sim_delays))
    return rows


def test_runner_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    cpus = visible_cpus()

    table = ComparisonResult(
        title="Runner scaling -- wall-clock (s) of 2 FAIR-BFL rounds per backend",
        columns=["clients", "serial_s", "thread_s", "process_s", "process/serial"],
    )
    measurements = []
    for n, timings, _prints, sim_delays in rows:
        table.add_row(
            n,
            timings["serial"],
            timings["thread"],
            timings["process"],
            timings["process"] / timings["serial"],
        )
        for backend in BACKENDS:
            measurements.append(
                {
                    "label": f"n={n},backend={backend}",
                    "clients": n,
                    "backend": backend,
                    "wall_time_s": timings[backend],
                    "simulated_avg_delay_s": sim_delays[backend],
                }
            )
    table.notes.append(f"CPUs visible to this process: {cpus}")
    table.notes.append(
        f"speed-up target (process <= {SPEEDUP_TARGET}x serial at {CLIENT_COUNTS[-1]} clients) "
        + ("asserted" if cpus >= MIN_CPUS_FOR_SPEEDUP_ASSERT else f"not asserted with only {cpus} CPU(s)")
    )
    emit(table, "runner_scaling.txt")
    emit_json(
        "runner_scaling",
        config={
            "client_counts": list(CLIENT_COUNTS),
            "backends": list(BACKENDS),
            "rounds_per_run": 2,
            "cpus_visible": cpus,
        },
        measurements=measurements,
        notes=["histories are asserted bit-identical across backends"],
        specs=[_scaling_spec(n, backend) for n in CLIENT_COUNTS for backend in BACKENDS],
    )

    # Determinism: every backend produced the exact same history at every scale.
    for n, _timings, fingerprints, _delays in rows:
        assert fingerprints["serial"] == fingerprints["thread"] == fingerprints["process"], (
            f"backend histories diverged at {n} clients"
        )
    # Speed: with real parallel hardware the process backend must win big.
    if cpus >= MIN_CPUS_FOR_SPEEDUP_ASSERT:
        _n, timings, _prints, _delays = rows[-1]
        ratio = timings["process"] / timings["serial"]
        assert ratio <= SPEEDUP_TARGET, (
            f"process backend too slow: {ratio:.2f}x serial at {CLIENT_COUNTS[-1]} clients"
        )


@pytest.mark.smoke
def test_runner_scaling_smoke():
    """Fast structural pass: serial/thread parity at the smallest scale."""
    engine = api.ExperimentEngine()
    histories = {
        backend: api.run(_scaling_spec(10, backend), engine=engine)
        for backend in ("serial", "thread")
    }
    assert _fingerprint(histories["serial"]) == _fingerprint(histories["thread"])
