"""Ablation: choice of clustering algorithm in Algorithm 2 (DBSCAN vs KMeans).

The paper uses DBSCAN by default and notes that "any suitable clustering
algorithm can be used".  This ablation re-runs the Table 2 attack-detection
protocol with both clusterers and compares average detection rates and false
positives (honest clients wrongly discarded).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.config import FairBFLConfig
from repro.core.experiment import build_federated_dataset, run_fairbfl
from repro.core.results import ComparisonResult
from repro.fl.client import LocalTrainingConfig
from repro.incentive.contribution import ContributionConfig


def _run_with(algorithm: str):
    dataset = build_federated_dataset(
        num_clients=10, num_samples=800, scheme="dirichlet", seed=1, noise_std=0.35
    )
    contribution = (
        ContributionConfig(algorithm="dbscan", eps=0.7)
        if algorithm == "dbscan"
        else ContributionConfig(algorithm="kmeans", num_clusters=2)
    )
    config = FairBFLConfig(
        num_rounds=8,
        participation_fraction=1.0,
        local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        model_name="logreg",
        strategy="discard",
        enable_attacks=True,
        contribution=contribution,
        seed=1,
    )
    trainer, _ = run_fairbfl(dataset, config=config)
    logs = trainer.detection_logs()
    detection = trainer.average_detection_rate()
    false_positives = float(np.mean([len(log.false_positives) for log in logs]))
    return detection, false_positives


def _sweep():
    return {alg: _run_with(alg) for alg in ("dbscan", "kmeans")}


def test_ablation_clustering_algorithm(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = ComparisonResult(
        title="Ablation -- clustering algorithm in Algorithm 2",
        columns=["algorithm", "avg_detection_rate", "avg_false_positives_per_round"],
    )
    for alg, (det, fp) in results.items():
        table.add_row(alg, det, fp)
    table.notes.append("paper default is DBSCAN; the mechanism is clusterer-agnostic")
    emit(table, "ablation_clustering.txt")

    # DBSCAN (the paper's default) gives a working detector and clearly beats the
    # forced-two-cluster KMeans variant, which justifies the default choice.
    assert results["dbscan"][0] >= 0.5
    assert results["dbscan"][0] >= results["kmeans"][0]
    assert results["kmeans"][0] >= 0.1
    # False positives stay bounded (the detector does not discard everyone).
    assert results["dbscan"][1] <= 5.0
    assert results["kmeans"][1] <= 6.0


@pytest.mark.smoke
def test_ablation_clustering_smoke():
    """Fast structural pass: the DBSCAN detector runs end-to-end at toy scale."""
    dataset = build_federated_dataset(
        num_clients=6, num_samples=400, scheme="dirichlet", seed=1, noise_std=0.35
    )
    config = FairBFLConfig(
        num_rounds=2,
        participation_fraction=1.0,
        local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
        model_name="logreg",
        strategy="discard",
        enable_attacks=True,
        contribution=ContributionConfig(algorithm="dbscan", eps=0.7),
        seed=1,
    )
    trainer, _ = run_fairbfl(dataset, config=config)
    assert len(trainer.detection_logs()) == 2
    assert 0.0 <= trainer.average_detection_rate() <= 1.0
