"""Theorem 3.1: convergence of the fair-aggregated federated optimisation.

The paper proves E[F(w_r)] - F* <= kappa/(gamma + r) * (2(B+C)/mu +
mu(gamma+1)/2 * ||w_1 - w*||^2) under Assumptions 3-6.  This bench runs local
SGD with the theorem's decaying step size on a strongly convex synthetic
objective (where L, mu, G are known exactly) and reports the measured
optimality gap against the bound round by round.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.convergence import theorem31_bound, theorem31_constants
from repro.core.results import ComparisonResult

DIM = 8
NUM_CLIENTS = 10
LOCAL_EPOCHS = 5
ROUNDS = 60
MU, L, G = 1.0, 5.0, 8.0


def _simulate():
    rng = np.random.default_rng(0)
    eigs = np.linspace(MU, L, DIM)
    hessian = np.diag(eigs)
    centers = rng.normal(scale=0.5, size=(NUM_CLIENTS, DIM))
    w_star = centers.mean(axis=0)

    def objective(w):
        return float(np.mean([0.5 * (w - c) @ hessian @ (w - c) for c in centers]))

    f_star = objective(w_star)
    constants = theorem31_constants(
        smoothness=L,
        strong_convexity=MU,
        gradient_bound=G,
        local_epochs=LOCAL_EPOCHS,
        num_selected=NUM_CLIENTS,
    )
    w = np.full(DIM, 2.0)
    init_dist = float(np.sum((w - w_star) ** 2))

    rows = []
    for r in range(1, ROUNDS + 1):
        lr = 2.0 / (MU * (constants["gamma"] + r))
        local_models = []
        for c in centers:
            wi = w.copy()
            for _ in range(LOCAL_EPOCHS):
                wi -= lr * (hessian @ (wi - c))
            local_models.append(wi)
        w = np.mean(local_models, axis=0)
        gap = objective(w) - f_star
        bound = theorem31_bound(r, constants=constants, initial_distance_sq=init_dist)
        rows.append((r, gap, bound))
    return rows


def test_theorem31_convergence_bound(benchmark):
    rows = benchmark.pedantic(_simulate, rounds=1, iterations=1)

    table = ComparisonResult(
        title="Theorem 3.1 -- measured optimality gap vs theoretical bound",
        columns=["round", "measured_gap", "theorem_bound"],
    )
    for r, gap, bound in rows[:: max(1, len(rows) // 12)]:
        table.add_row(r, gap, bound)
    table.notes.append("bound is O(1/r); measured gap must stay below it and decrease")
    emit(table, "theorem31_convergence.txt")

    gaps = np.array([r[1] for r in rows])
    bounds = np.array([r[2] for r in rows])
    # The empirical gap respects the bound at every recorded round.
    assert np.all(gaps <= bounds + 1e-9)
    # Both the bound and the measured gap decrease with communication rounds.
    assert bounds[-1] < bounds[0]
    assert gaps[-1] < gaps[0]
    # The gap goes to (near) zero, i.e. the algorithm converges.
    assert gaps[-1] < 0.05 * gaps[0]


@pytest.mark.smoke
def test_theorem31_smoke():
    """Fast structural pass: the bound holds over the early rounds."""
    rows = _simulate()[:10]
    assert all(gap <= bound + 1e-9 for _, gap, bound in rows)
