"""Ablation: fair aggregation (Equation 1) vs simple averaging.

The paper's fair aggregation assigns contribution-based weights instead of the
uniform 1/n.  This ablation compares the two aggregation rules with and
without attackers present (the discard strategy disabled, so the aggregation
rule is the only defence).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.results import ComparisonResult


def _run(suite):
    results = {}
    for label, use_fair, attacks in (
        ("fair_agg/clean", True, False),
        ("simple_avg/clean", False, False),
        ("fair_agg/attacked", True, True),
        ("simple_avg/attacked", False, True),
    ):
        hist = suite.run(
            "fairbfl",
            name=label,
            use_fair_aggregation=use_fair,
            attacks=attacks,
            attack_name="scaling",
            strategy="keep",
        )
        results[label] = (hist.average_accuracy(), hist.final_accuracy())
    return results


def test_ablation_aggregation_rule(benchmark, bench_suite):
    results = benchmark.pedantic(_run, args=(bench_suite,), rounds=1, iterations=1)

    table = ComparisonResult(
        title="Ablation -- fair aggregation (Eq. 1) vs simple averaging",
        columns=["configuration", "average_accuracy", "final_accuracy"],
    )
    for label, (avg, final) in results.items():
        table.add_row(label, avg, final)
    table.notes.append(
        "with honest clients the two rules coincide closely; under attack the Eq.-1 weighting "
        "(weights proportional to distance) amplifies unfiltered outliers, so it must be paired "
        "with the discard strategy -- which is exactly how the paper deploys it"
    )
    emit(table, "ablation_aggregation.txt")

    # On clean data, fair aggregation tracks simple averaging (paper: FAIR ~= FedAvg).
    assert abs(results["fair_agg/clean"][1] - results["simple_avg/clean"][1]) < 0.1
    # Attacks hurt both un-defended configurations relative to clean runs.
    assert results["fair_agg/attacked"][1] <= results["fair_agg/clean"][1] + 0.02
    assert results["simple_avg/attacked"][1] <= results["simple_avg/clean"][1] + 0.02


@pytest.mark.smoke
def test_ablation_aggregation_smoke(smoke_suite):
    """Fast structural pass: both aggregation rules run at toy scale."""
    fair = smoke_suite.run("fairbfl", name="fair_agg/smoke", use_fair_aggregation=True)
    simple = smoke_suite.run("fairbfl", name="simple_avg/smoke", use_fair_aggregation=False)
    assert len(fair) == len(simple) == smoke_suite.num_rounds
    assert 0.0 <= fair.final_accuracy() <= 1.0
    assert 0.0 <= simple.final_accuracy() <= 1.0
