"""Figure 5b: average accuracy under different learning rates.

Paper result: FAIR-BFL and FedAvg have an interior optimum learning rate
(accuracy rises, peaks, then degrades as η grows), while FedProx's accuracy is
comparatively insensitive to η (the proximal term damps the local steps).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.results import ComparisonResult

LEARNING_RATES = (0.01, 0.05, 0.10, 0.15, 0.20)


def _sweep(suite):
    rows = []
    for lr in LEARNING_RATES:
        fair = suite.run("fairbfl", learning_rate=lr)
        fedavg = suite.run("fedavg", learning_rate=lr)
        fedprox = suite.run("fedprox", learning_rate=lr, proximal_mu=0.1)
        rows.append(
            (lr, fair.average_accuracy(), fedavg.average_accuracy(), fedprox.average_accuracy())
        )
    return rows


def test_fig5b_learning_rate_accuracy(benchmark, bench_suite):
    rows = benchmark.pedantic(_sweep, args=(bench_suite,), rounds=1, iterations=1)

    table = ComparisonResult(
        title="Figure 5b -- average accuracy under different learning rates",
        columns=["learning_rate", "FAIR", "FedAvg", "FedProx"],
    )
    for row in rows:
        table.add_row(*row)
    table.notes.append("paper: FAIR/FedAvg have an optimal eta; FedProx is less sensitive")
    emit(table, "fig5b_lr_accuracy.txt")

    fair_acc = np.array([r[1] for r in rows])
    fedprox_acc = np.array([r[3] for r in rows])
    # The learning rate matters for FAIR (a meaningful accuracy spread exists).
    assert np.ptp(fair_acc) > 0.01
    # The best FAIR setting is not the most extreme learning rate being terrible:
    # accuracy at the optimum beats the worst setting clearly.
    assert fair_acc.max() - fair_acc.min() >= 0.01
    # FedProx's spread is no larger than ~2x FAIR's spread (insensitive by comparison
    # at this scale; the paper shows it as nearly flat).
    assert np.ptp(fedprox_acc) <= max(2.0 * np.ptp(fair_acc), 0.15)
    # Every configuration still learns.
    assert fair_acc.min() > 0.4


@pytest.mark.smoke
def test_fig5b_lr_accuracy_smoke(smoke_suite):
    """Fast structural pass: the lr axis yields valid accuracies per system."""
    for system, kwargs in (("fairbfl", {}), ("fedprox", {"proximal_mu": 0.1})):
        hist = smoke_suite.run(system, learning_rate=LEARNING_RATES[1], **kwargs)
        assert 0.0 <= hist.average_accuracy() <= 1.0
