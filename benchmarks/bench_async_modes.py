"""Round modes: sync vs semi_sync vs async under straggler-heavy delays.

The discrete-event kernel makes the round discipline a measurable axis: the
same FAIR-BFL workload runs under the three ``round_mode`` settings with
deliberately heavy compute/upload jitter (a straggler-heavy edge network).
The synchronous round pays the slowest client twice (the local-phase barrier
plus its upload), the semi-synchronous round closes the upload window at a
deadline and drops stragglers, and the asynchronous round proceeds once half
the uploads are in, folding late gradients into the next round with
staleness-decayed weights.

Asserted (the paper-extension claim this bench pins):

* mean round delay: ``async < semi_sync < sync``;
* accuracy does not collapse — both relaxed modes finish within 10 accuracy
  points of sync on this workload.

Emits the human-readable table (``async_modes.txt``) and the machine-readable
perf record (``BENCH_async_modes.json``).
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from benchmarks.conftest import emit, emit_json
from repro.core.experiment import run_fairbfl
from repro.core.results import ComparisonResult
from repro.runner.engine import ExperimentEngine
from repro.runner.scenario import ScenarioSpec
from repro.sim.delay import DelayParameters
from repro.sim.rounds import ROUND_MODES

#: Straggler-heavy calibration: strong per-client compute/upload variance.
STRAGGLER_PARAMS = dict(compute_jitter=0.8, upload_jitter=1.0)

NUM_CLIENTS = 16
NUM_ROUNDS = 8
STRAGGLER_DEADLINE = 4.0


def _spec(round_mode: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"modes[{round_mode}]",
        system="fairbfl",
        num_clients=NUM_CLIENTS,
        num_samples=60 * NUM_CLIENTS,
        num_rounds=NUM_ROUNDS,
        participation=0.75,
        epochs=2,
        batch_size=10,
        learning_rate=0.05,
        round_mode=round_mode,
        straggler_deadline=STRAGGLER_DEADLINE,
        async_quorum=0.5,
        staleness_decay=0.5,
        seed=0,
    )


def _run_modes():
    engine = ExperimentEngine()
    results = {}
    for mode in ROUND_MODES:
        spec = _spec(mode)
        # Heavier jitter than the paper's calibration: the regime where the
        # round discipline matters.
        config = dataclasses.replace(
            spec.fairbfl_config(), delay_params=DelayParameters(**STRAGGLER_PARAMS)
        )
        start = time.perf_counter()
        trainer, history = run_fairbfl(engine.dataset_for(spec), config=config)
        wall = time.perf_counter() - start
        trainer.close()
        stragglers = sum(len(r.extras.get("stragglers", [])) for r in history.rounds)
        stale = sum(int(r.extras.get("stale_applied", 0)) for r in history.rounds)
        results[mode] = {
            "history": history,
            "wall_time_s": wall,
            "stragglers": stragglers,
            "stale_applied": stale,
        }
    return results


def test_round_modes(benchmark):
    results = benchmark.pedantic(_run_modes, rounds=1, iterations=1)

    table = ComparisonResult(
        title="Round modes under straggler-heavy delays (FAIR-BFL, n=16, m=2)",
        columns=[
            "round_mode",
            "avg_delay_s",
            "avg_accuracy",
            "final_accuracy",
            "stragglers",
            "stale_applied",
        ],
    )
    measurements = []
    for mode in ROUND_MODES:
        entry = results[mode]
        history = entry["history"]
        table.add_row(
            mode,
            history.average_delay(),
            history.average_accuracy(),
            history.final_accuracy(),
            entry["stragglers"],
            entry["stale_applied"],
        )
        measurements.append(
            {
                "label": mode,
                "wall_time_s": entry["wall_time_s"],
                "simulated_avg_delay_s": history.average_delay(),
                "avg_accuracy": history.average_accuracy(),
                "final_accuracy": history.final_accuracy(),
                "stragglers": entry["stragglers"],
                "stale_applied": entry["stale_applied"],
            }
        )
    table.notes.append(
        f"straggler-heavy calibration: {STRAGGLER_PARAMS}; "
        f"semi_sync deadline {STRAGGLER_DEADLINE}s, async quorum 0.5"
    )
    emit(table, "async_modes.txt")
    emit_json(
        "async_modes",
        config={
            "num_clients": NUM_CLIENTS,
            "num_rounds": NUM_ROUNDS,
            "participation": 0.75,
            "straggler_deadline": STRAGGLER_DEADLINE,
            "async_quorum": 0.5,
            "staleness_decay": 0.5,
            "delay_params": STRAGGLER_PARAMS,
        },
        measurements=measurements,
        notes=["assertion: mean delay async < semi_sync < sync"],
        specs=[_spec(mode) for mode in ROUND_MODES],
    )

    sync_d = results["sync"]["history"].average_delay()
    semi_d = results["semi_sync"]["history"].average_delay()
    async_d = results["async"]["history"].average_delay()
    assert semi_d < sync_d, f"semi_sync not faster than sync ({semi_d:.2f} vs {sync_d:.2f})"
    assert async_d < semi_d, f"async not faster than semi_sync ({async_d:.2f} vs {semi_d:.2f})"
    # Dropping/deferring stragglers must not wreck learning on this workload.
    sync_acc = results["sync"]["history"].final_accuracy()
    for mode in ("semi_sync", "async"):
        acc = results[mode]["history"].final_accuracy()
        assert acc > sync_acc - 0.10, f"{mode} accuracy collapsed: {acc:.3f} vs sync {sync_acc:.3f}"
    # The relaxed modes actually exercised their mechanisms.
    assert results["semi_sync"]["stragglers"] > 0
    assert results["async"]["stale_applied"] > 0


@pytest.mark.smoke
def test_round_modes_smoke():
    """Fast structural pass: every round mode runs under the default calibration."""
    engine = ExperimentEngine()
    for mode in ROUND_MODES:
        spec = _spec(mode).with_overrides(
            name=f"modes-smoke[{mode}]", num_clients=8, num_samples=480, num_rounds=2
        )
        history = engine.run(spec)
        assert len(history) == 2
        assert all(r.delay > 0 for r in history.rounds)
