"""Ablation: Assumption 2 (bounding the block's data scope).

FAIR-BFL records only the round's global gradient in each block; vanilla BFL
records every local gradient, so its per-round block count (and therefore its
mining and queueing cost) grows with the participant count.  This ablation
quantifies exactly that design choice by sweeping the worker count and
measuring (a) blocks mined per round and (b) the resulting ledger delay.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.results import ComparisonResult
from repro.sim.delay import DelayModel, DelayParameters
from repro.sim.vanilla_blockchain import VanillaBlockchainConfig, VanillaBlockchainSimulator
from repro.utils.rng import new_rng

WORKER_COUNTS = (20, 60, 100, 200, 300)


def _sweep():
    params = DelayParameters(transactions_per_block=100)
    rows = []
    for n in WORKER_COUNTS:
        # Vanilla recording: every worker's gradient is an on-chain transaction.
        sim = VanillaBlockchainSimulator(
            VanillaBlockchainConfig(
                num_workers=n, num_miners=2, num_rounds=4, delay_params=params, seed=0
            )
        )
        vanilla_hist = sim.run()
        vanilla_blocks = float(
            np.mean([r.extras["blocks_mined"] for r in vanilla_hist.rounds])
        )
        # Assumption 2: exactly one block per round regardless of n; its ledger
        # cost is a single mining competition.
        model = DelayModel(params, new_rng(1, "scoped", n))
        scoped_delay = float(np.mean([model.mining_delay(2) for _ in range(200)]))
        rows.append((n, vanilla_blocks, vanilla_hist.average_delay(), 1.0, scoped_delay))
    return rows


def test_ablation_block_scope(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = ComparisonResult(
        title="Ablation -- Assumption 2 (block data scope): vanilla per-gradient vs single global block",
        columns=[
            "workers",
            "vanilla_blocks_per_round",
            "vanilla_ledger_delay_s",
            "scoped_blocks_per_round",
            "scoped_ledger_delay_s",
        ],
    )
    for row in rows:
        table.add_row(*row)
    table.notes.append(
        "Assumption 2 keeps the block count at 1 regardless of scale; vanilla recording "
        "queues transactions once n exceeds the block capacity"
    )
    emit(table, "ablation_block_scope.txt")

    vanilla_blocks = np.array([r[1] for r in rows])
    scoped_delay = np.array([r[4] for r in rows])
    vanilla_delay = np.array([r[2] for r in rows])
    # Vanilla block count grows once the population exceeds the block capacity.
    assert vanilla_blocks[-1] > vanilla_blocks[0]
    assert vanilla_blocks[-1] >= 3.0
    # The scoped design's ledger delay is flat in n and cheaper at scale.
    assert np.ptp(scoped_delay) < 0.5 * scoped_delay.mean() + 1.0
    assert vanilla_delay[-1] > scoped_delay[-1]


@pytest.mark.smoke
def test_ablation_block_scope_smoke():
    """Fast structural pass: one vanilla point vs the scoped single-block cost."""
    params = DelayParameters(transactions_per_block=100)
    sim = VanillaBlockchainSimulator(
        VanillaBlockchainConfig(
            num_workers=120, num_miners=2, num_rounds=2, delay_params=params, seed=0
        )
    )
    hist = sim.run()
    blocks = float(np.mean([r.extras["blocks_mined"] for r in hist.rounds]))
    # 120 per-gradient transactions overflow a 100-transaction block.
    assert blocks > 1.0
    model = DelayModel(params, new_rng(1, "scoped-smoke"))
    assert float(np.mean([model.mining_delay(2) for _ in range(20)])) > 0.0
