"""Population scaling: the vectorized cohort engine at 100k clients per round.

Procedure-I local training is embarrassingly parallel across the selected
clients, but the per-client Python path pays interpreter and allocation
overhead for every client (and, past cache scale, a ~60 KB parameter copy per
client per step), so its wall-clock grows *faster* than linearly with the
population.  The cohort backend batches the whole cohort into
``(clients, batch, features)`` numpy ops instead; its per-client cost is flat,
so the speed-up over the per-client path *grows* with the population — the
superlinear-scaling claim this bench measures and asserts.

Three scales:

* ``n=64`` — both backends run for real; the cohort history must be
  **byte-identical** to the serial one (the engine's bit-exactness contract,
  fuzzed broadly in ``tests/test_cohort_parity.py``).  At this scale the
  cohort engine is allowed to *lose* on wall-clock: one under-filled chunk
  cannot amortise its setup.
* ``n=1024`` — serial runs for real one last time; its per-client rate is the
  extrapolation basis for the scales where running serial would take minutes.
* ``n=20_000`` and ``n=100_000`` — cohort only (above the trainer's
  ``STREAM_THRESHOLD``, so these rounds stream per-cohort blocks into a
  running aggregate instead of materialising 100k ``ClientUpdate`` objects).
  The population is synthesised with ``distinct_shards=64`` archetype shards
  shared cyclically as array views, which is how 100k clients fit in memory.

The headline assertion: ``speedup(100k) > 2`` **and**
``speedup(100k) > 2 x speedup(64)`` — the ratio must grow with n, not merely
exist.  Serial baselines at 20k/100k are linear extrapolations of the
measured n=1024 per-client rate, which is *conservative*: the profiled serial
path only gets slower per client as the population outgrows the cache.

The ``smoke`` marker runs the n=64 parity cell only:
``pytest benchmarks/bench_population_scaling.py -m smoke``.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.conftest import emit, emit_json, visible_cpus
from repro import api
from repro.core.results import ComparisonResult
from repro.fl.fedavg import FedAvgTrainer
from repro.runner.scenario import ScenarioSpec
from repro.store.records import history_to_payload

SMALL_N = 64  # both backends, byte parity + measured speed-up
RATE_N = 1024  # last scale where serial runs for real (per-client rate basis)
LARGE_NS = (20_000, 100_000)  # cohort only, streaming rounds
SMALL_ROUNDS = 3  # tiny runs get extra rounds so their timings are stable
MIN_SPEEDUP_AT_100K = 2.0
GROWTH_FACTOR = 2.0  # speedup(100k) must exceed this multiple of speedup(64)


def _population_spec(num_clients: int, backend: str, *, num_rounds: int = 1) -> ScenarioSpec:
    # distinct_shards pins the per-client workload across scales: every run
    # draws from the same 64 archetype shards (~26 train samples each), so the
    # n=1024 serial rate extrapolates apples-to-apples to n=100k.
    return ScenarioSpec(
        name=f"population[n={num_clients},backend={backend}]",
        system="fedavg",
        num_clients=num_clients,
        num_samples=2048,
        distinct_shards=64,
        num_rounds=num_rounds,
        participation=1.0,
        scheme="dirichlet",
        model_name="logreg",
        epochs=1,
        batch_size=32,
        learning_rate=0.05,
        backend=backend,
        seed=0,
    )


def _canonical_history(history) -> str:
    """The byte-comparable form of a history (every round field, extras included).

    The label is excluded: it carries the spec *name*, which embeds the
    backend and is deliberately outside the determinism contract.
    """
    payload = history_to_payload(history)
    payload.pop("label", None)
    return json.dumps(payload, sort_keys=True)


def _timed_run(engine, spec: ScenarioSpec):
    engine.dataset_for(spec)  # exclude the (shared) partitioning cost
    start = time.perf_counter()
    history = api.run(spec, engine=engine)
    return history, time.perf_counter() - start


def test_population_scaling(benchmark):
    engine = api.ExperimentEngine()

    def _sweep():
        out = {}
        for backend in ("serial", "cohort"):
            out[(SMALL_N, backend)] = _timed_run(
                engine, _population_spec(SMALL_N, backend, num_rounds=SMALL_ROUNDS)
            )
        out[(RATE_N, "serial")] = _timed_run(engine, _population_spec(RATE_N, "serial"))
        for n in LARGE_NS:
            out[(n, "cohort")] = _timed_run(engine, _population_spec(n, "cohort"))
        return out

    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # -- parity: the cohort engine is bit-exact against the serial path ----
    serial_small, t_serial_small = runs[(SMALL_N, "serial")]
    cohort_small, t_cohort_small = runs[(SMALL_N, "cohort")]
    assert _canonical_history(cohort_small) == _canonical_history(serial_small), (
        f"cohort history diverged from serial at n={SMALL_N}"
    )

    # -- speed-ups ---------------------------------------------------------
    _, t_serial_rate = runs[(RATE_N, "serial")]
    serial_per_client = t_serial_rate / RATE_N
    speedups = {SMALL_N: t_serial_small / t_cohort_small}
    for n in LARGE_NS:
        _, t_cohort = runs[(n, "cohort")]
        speedups[n] = serial_per_client * n / t_cohort

    table = ComparisonResult(
        title="Population scaling -- per-client vs vectorized cohort engine",
        columns=["clients", "serial_s", "cohort_s", "speedup"],
    )
    measurements = []
    for n in (SMALL_N, RATE_N, *LARGE_NS):
        t_serial = (
            runs[(n, "serial")][1]
            if (n, "serial") in runs
            else serial_per_client * n
        )
        t_cohort = runs[(n, "cohort")][1] if (n, "cohort") in runs else None
        table.add_row(
            n,
            t_serial,
            float("nan") if t_cohort is None else t_cohort,
            speedups.get(n, float("nan")),
        )
        measurements.append(
            {
                "label": f"n={n}",
                "clients": n,
                "serial_wall_s": t_serial,
                "serial_extrapolated": (n, "serial") not in runs,
                "cohort_wall_s": t_cohort,  # None when serial-only at this scale
                "speedup": speedups.get(n),
            }
        )
    table.notes.append(
        f"serial at n>{RATE_N} extrapolated from the measured n={RATE_N} per-client "
        f"rate ({serial_per_client * 1e3:.3f} ms/client-round)"
    )
    table.notes.append(f"CPUs visible to this process: {visible_cpus()}")
    emit(table, "population_scaling.txt")
    emit_json(
        "population_scaling",
        config={
            "scales": [SMALL_N, RATE_N, *LARGE_NS],
            "distinct_shards": 64,
            "stream_threshold": FedAvgTrainer.STREAM_THRESHOLD,
            "cpus_visible": visible_cpus(),
        },
        measurements=measurements,
        notes=[
            f"cohort history asserted byte-identical to serial at n={SMALL_N}",
            "speed-up asserted to grow with population (superlinear scaling)",
        ],
        specs=[
            _population_spec(SMALL_N, "serial", num_rounds=SMALL_ROUNDS),
            _population_spec(SMALL_N, "cohort", num_rounds=SMALL_ROUNDS),
            _population_spec(RATE_N, "serial"),
            *(_population_spec(n, "cohort") for n in LARGE_NS),
        ],
    )

    # -- the 100k round really streamed ------------------------------------
    large_history, _ = runs[(LARGE_NS[-1], "cohort")]
    record = large_history.rounds[-1]
    assert len(record.participants) == LARGE_NS[-1]
    stream = record.extras.get("cohort_stream")
    assert stream is not None, "100k round did not take the streaming path"
    assert stream["clients"] == LARGE_NS[-1]

    # -- superlinear scaling ------------------------------------------------
    assert speedups[LARGE_NS[-1]] > MIN_SPEEDUP_AT_100K, (
        f"cohort engine too slow at n={LARGE_NS[-1]}: "
        f"{speedups[LARGE_NS[-1]]:.2f}x serial"
    )
    assert speedups[LARGE_NS[-1]] > GROWTH_FACTOR * speedups[SMALL_N], (
        "speed-up did not grow with the population: "
        f"{speedups[SMALL_N]:.2f}x at n={SMALL_N} vs "
        f"{speedups[LARGE_NS[-1]]:.2f}x at n={LARGE_NS[-1]}"
    )


@pytest.mark.smoke
def test_population_scaling_smoke():
    """Fast structural pass: byte parity at n=64 (no pytest-benchmark timing)."""
    engine = api.ExperimentEngine()
    serial = api.run(_population_spec(SMALL_N, "serial", num_rounds=2), engine=engine)
    cohort = api.run(_population_spec(SMALL_N, "cohort", num_rounds=2), engine=engine)
    assert _canonical_history(cohort) == _canonical_history(serial)
