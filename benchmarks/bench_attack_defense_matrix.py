"""Attack × defense matrix: every attack against every defense, one sweep.

The paper's security story (Table 2) pits its detection mechanism against a
single forgery.  This bench runs the full cartesian grid the defense
subsystem unlocks — {no_attack, sign_flip, label_flip, scaled_forgery} ×
{none, krum, median, trimmed_mean, fairbfl_detection} — on one shared
workload at 20% adversaries (2 of 10 clients forged every round), and pins
the qualitative claims:

* each targeted attack genuinely hurts the undefended (``none``) run;
* under each targeted attack, its *matched* defense's final accuracy
  strictly beats the ``none`` defense (sign-flip and label-flip fall to the
  paper's own detection path, scaled forgeries to the robust-statistics
  rules — which is exactly the regime where detection fails, since a scaled
  forgery keeps the honest direction and clusters with the global update);
* every defense in the grid wins under at least one attack.

``fairbfl_detection`` is the paper's Procedure II path (DBSCAN clustering +
discard strategy, no robust layer); the other defenses run with the keep
strategy so the robust rule is the only thing that changes.  Emits the
human-readable matrix (``attack_defense_matrix.txt``) and the
machine-readable record (``BENCH_attack_defense_matrix.json``).

The ``smoke`` marker selects a 2-cell structural pass for quick CI:
``pytest benchmarks/bench_attack_defense_matrix.py -m smoke``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit, emit_json
from repro.core.results import ComparisonResult
from repro.runner.engine import ExperimentEngine
from repro.runner.scenario import ScenarioSpec

NUM_CLIENTS = 10
NUM_ROUNDS = 10
NUM_ATTACKERS = 2  # 20% of the population, every round

#: Attack axis: scenario overrides per grid row.
ATTACKS = {
    "no_attack": dict(attacks=False),
    "sign_flip": dict(attacks=True, attack_name="sign_flip"),
    "label_flip": dict(attacks=True, attack_name="label_flip"),
    "scaled_forgery": dict(attacks=True, attack_name="scaling"),
}

#: Defense axis: scenario overrides per grid column.  ``fairbfl_detection``
#: is the paper's own defense (Algorithm 2 + discard), not a robust rule.
DEFENSES = {
    "none": dict(defense="none"),
    "krum": dict(defense="krum"),
    "median": dict(defense="median"),
    "trimmed_mean": dict(defense="trimmed_mean"),
    "fairbfl_detection": dict(defense="none", strategy="discard"),
}

#: Matched pairs pinned by the assertions: under each targeted attack these
#: defenses must strictly beat ``none`` on final accuracy.  Robust-statistics
#: rules win where detection fails (scaled forgery) and vice versa.
MATCHED = {
    "sign_flip": ("fairbfl_detection", "trimmed_mean"),
    "label_flip": ("fairbfl_detection",),
    "scaled_forgery": ("krum", "median", "trimmed_mean"),
}


def _spec(attack: str, defense: str, *, num_rounds: int = NUM_ROUNDS) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"matrix[{attack}|{defense}]",
        system="fairbfl",
        num_clients=NUM_CLIENTS,
        num_samples=80 * NUM_CLIENTS,
        num_rounds=num_rounds,
        participation=1.0,
        epochs=2,
        batch_size=10,
        learning_rate=0.05,
        model_name="logreg",
        min_attackers=NUM_ATTACKERS,
        max_attackers=NUM_ATTACKERS,
        defense_fraction=NUM_ATTACKERS / NUM_CLIENTS,
        seed=0,
        **{**ATTACKS[attack], **DEFENSES[defense]},
    )


def _run_matrix():
    engine = ExperimentEngine()
    grid = {}
    for attack in ATTACKS:
        for defense in DEFENSES:
            start = time.perf_counter()
            history = engine.run(_spec(attack, defense))
            wall = time.perf_counter() - start
            rejected = sum(
                len(r.extras.get("defense_rejected", [])) for r in history.rounds
            )
            grid[(attack, defense)] = {
                "history": history,
                "wall_time_s": wall,
                "defense_rejected": rejected,
            }
    return grid


def test_attack_defense_matrix(benchmark):
    grid = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)

    table = ComparisonResult(
        title=(
            "Attack x defense matrix (FAIR-BFL, n=10, 2 attackers/round, "
            f"{NUM_ROUNDS} rounds)"
        ),
        columns=["attack", "defense", "final_accuracy", "avg_accuracy", "defense_rejected"],
    )
    measurements = []
    for (attack, defense), entry in grid.items():
        history = entry["history"]
        table.add_row(
            attack,
            defense,
            history.final_accuracy(),
            history.average_accuracy(),
            entry["defense_rejected"],
        )
        measurements.append(
            {
                "label": f"{attack}|{defense}",
                "attack": attack,
                "defense": defense,
                "wall_time_s": entry["wall_time_s"],
                "final_accuracy": history.final_accuracy(),
                "avg_accuracy": history.average_accuracy(),
                "defense_rejected": entry["defense_rejected"],
            }
        )
    table.notes.append(
        "matched pairs asserted (defense strictly beats 'none' under the attack): "
        + "; ".join(f"{a} -> {', '.join(ds)}" for a, ds in MATCHED.items())
    )
    table.notes.append(
        "krum collapses without attackers (a single row is a poor global update); "
        "it earns its place only against scaled forgeries"
    )
    emit(table, "attack_defense_matrix.txt")
    emit_json(
        "attack_defense_matrix",
        config={
            "num_clients": NUM_CLIENTS,
            "num_rounds": NUM_ROUNDS,
            "attackers_per_round": NUM_ATTACKERS,
            "defense_fraction": NUM_ATTACKERS / NUM_CLIENTS,
            "attacks": sorted(ATTACKS),
            "defenses": sorted(DEFENSES),
        },
        measurements=measurements,
        notes=["assertion: matched defense final accuracy strictly exceeds 'none'"],
        specs=[_spec(a, d) for a in ATTACKS for d in DEFENSES],
    )

    def final(attack, defense):
        return grid[(attack, defense)]["history"].final_accuracy()

    # The two gradient-space forgeries must genuinely hurt the undefended run.
    clean = final("no_attack", "none")
    for attack in ("sign_flip", "scaled_forgery"):
        assert final(attack, "none") < clean - 0.10, (
            f"{attack} did not degrade the undefended run "
            f"({final(attack, 'none'):.3f} vs clean {clean:.3f})"
        )

    # Acceptance: each matched defense strictly beats 'none' under its attack.
    for attack, defenses in MATCHED.items():
        undefended = final(attack, "none")
        for defense in defenses:
            defended = final(attack, defense)
            assert defended > undefended, (
                f"{defense} did not beat 'none' under {attack} "
                f"({defended:.3f} vs {undefended:.3f})"
            )

    # Every non-none defense earns its place somewhere in the grid.
    covered = {d for defenses in MATCHED.values() for d in defenses}
    assert covered == set(DEFENSES) - {"none"}

    # Robust statistics cover detection's blind spot: a scaled forgery keeps
    # the honest direction, so Procedure II cannot separate it.
    assert final("scaled_forgery", "median") > final("scaled_forgery", "fairbfl_detection")


@pytest.mark.smoke
def test_attack_defense_smoke():
    """Fast structural pass over one matched cell (no pytest-benchmark timing)."""
    engine = ExperimentEngine()
    undefended = engine.run(_spec("scaled_forgery", "none", num_rounds=3))
    defended = engine.run(_spec("scaled_forgery", "trimmed_mean", num_rounds=3))
    assert defended.final_accuracy() > undefended.final_accuracy()
    assert all(
        r.extras["defense"] == "trimmed_mean" for r in defended.rounds
    )
