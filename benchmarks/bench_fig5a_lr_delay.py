"""Figure 5a: average delay under different learning rates.

Paper result: the learning rate has a negligible effect on the average delay
of FAIR-BFL and FedAvg (the delay is dominated by communication and mining,
not by the local arithmetic, and the learning rate does not change the number
of local steps).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.results import ComparisonResult

LEARNING_RATES = (0.01, 0.05, 0.10, 0.15, 0.20)


def _sweep(suite):
    rows = []
    for lr in LEARNING_RATES:
        fair = suite.run("fairbfl", learning_rate=lr)
        fedavg = suite.run("fedavg", learning_rate=lr)
        rows.append((lr, fair.average_delay(), fedavg.average_delay()))
    return rows


def test_fig5a_learning_rate_delay(benchmark, bench_suite):
    rows = benchmark.pedantic(_sweep, args=(bench_suite,), rounds=1, iterations=1)

    table = ComparisonResult(
        title="Figure 5a -- average delay (s) under different learning rates",
        columns=["learning_rate", "FAIR", "FedAvg"],
    )
    for lr, fair_delay, fedavg_delay in rows:
        table.add_row(lr, fair_delay, fedavg_delay)
    table.notes.append("paper: delay is essentially flat in the learning rate for both systems")
    emit(table, "fig5a_lr_delay.txt")

    fair_delays = np.array([r[1] for r in rows])
    fedavg_delays = np.array([r[2] for r in rows])
    # Flatness: the spread across learning rates stays within the round-to-round
    # noise band (well under half of the mean delay).
    assert np.ptp(fair_delays) < 0.5 * fair_delays.mean()
    assert np.ptp(fedavg_delays) < 0.5 * fedavg_delays.mean()
    # And FAIR remains the costlier of the two at every learning rate.
    assert np.all(fair_delays > fedavg_delays)


@pytest.mark.smoke
def test_fig5a_lr_delay_smoke(smoke_suite):
    """Fast structural pass: the delay is flat across one pair of learning rates."""
    lo = smoke_suite.run("fedavg", learning_rate=LEARNING_RATES[0])
    hi = smoke_suite.run("fedavg", learning_rate=LEARNING_RATES[-1])
    assert lo.average_delay() > 0 and hi.average_delay() > 0
    assert abs(lo.average_delay() - hi.average_delay()) < 0.5 * lo.average_delay() + 1.0
