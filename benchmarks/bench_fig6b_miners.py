"""Figure 6b: average delay as the number of miners grows.

Paper result: the vanilla blockchain's delay grows sharply (approximately
exponentially) with the miner count because simultaneous solutions fork the
chain and merging costs time, while FAIR-BFL is nearly flat -- Assumptions 1
and 2 guarantee one block per round and no forks, so extra miners only add
broadcast/exchange overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.results import ComparisonResult

MINER_COUNTS = (2, 4, 6, 8, 10)


def _sweep(suite):
    rows = []
    for m in MINER_COUNTS:
        fair = suite.run("fairbfl", miners=m)
        chain = suite.run("blockchain", num_clients=100, miners=m)
        rows.append((m, fair.average_delay(), chain.average_delay()))
    return rows


def test_fig6b_delay_vs_miners(benchmark, bench_suite):
    rows = benchmark.pedantic(_sweep, args=(bench_suite,), rounds=1, iterations=1)

    table = ComparisonResult(
        title="Figure 6b -- average delay (s) vs number of miners",
        columns=["miners", "FAIR", "Blockchain"],
    )
    for row in rows:
        table.add_row(*row)
    table.notes.append(
        "paper: Blockchain grows ~exponentially with m (forking); FAIR stays nearly flat"
    )
    emit(table, "fig6b_miners.txt")

    fair = np.array([r[1] for r in rows])
    chain = np.array([r[2] for r in rows])
    # The vanilla chain pays a substantial fork-merge penalty as miners increase.
    assert chain[-1] > chain[0] + 2.0
    # FAIR-BFL's delay growth across the whole sweep is small in comparison.
    assert (fair[-1] - fair[0]) < 0.35 * (chain[-1] - chain[0])
    # FAIR is cheaper than the vanilla chain at every miner count.
    assert np.all(fair < chain)


@pytest.mark.smoke
def test_fig6b_miners_smoke(smoke_suite):
    """Fast structural pass: the miner axis is wired through both systems."""
    fair = smoke_suite.run("fairbfl", miners=3)
    chain = smoke_suite.run("blockchain", num_clients=20, miners=3)
    assert fair.average_delay() > 0
    assert chain.average_delay() > 0
