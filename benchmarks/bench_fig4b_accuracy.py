"""Figure 4b: average accuracy versus elapsed (simulated) time.

Paper result: FAIR-BFL reaches essentially the same accuracy as FedAvg;
FedProx converges to a lower accuracy and keeps fluctuating after convergence
(inexact local solutions).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.convergence import ConvergenceCriterion
from repro.core.results import ComparisonResult


def _run(suite):
    fair = suite.run("fairbfl")
    fedavg = suite.run("fedavg")
    fedprox = suite.run("fedprox", proximal_mu=0.1)
    return fair, fedavg, fedprox


def test_fig4b_accuracy_vs_time(benchmark, bench_suite):
    fair, fedavg, fedprox = benchmark.pedantic(
        _run, args=(bench_suite,), rounds=1, iterations=1
    )

    table = ComparisonResult(
        title="Figure 4b -- average accuracy vs elapsed simulated time",
        columns=["system", "round", "time_s", "accuracy"],
    )
    for name, hist in (("FAIR", fair), ("FedAvg", fedavg), ("FedProx", fedprox)):
        times, accs = hist.accuracy_vs_time()
        for i, (t, a) in enumerate(zip(times, accs)):
            table.add_row(name, i + 1, t, a)
    table.notes.append(
        f"final accuracy: FAIR={fair.final_accuracy():.3f}, "
        f"FedAvg={fedavg.final_accuracy():.3f}, FedProx={fedprox.final_accuracy():.3f}"
    )
    table.notes.append("paper: FAIR ~= FedAvg; FedProx converges lower and fluctuates")
    emit(table, "fig4b_accuracy.txt")

    # FAIR tracks FedAvg closely (within a few accuracy points at this scale).
    assert abs(fair.final_accuracy() - fedavg.final_accuracy()) < 0.1
    # Everyone learns something.
    assert fair.final_accuracy() > 0.5
    assert np.all(np.diff(fair.elapsed_times) > 0)
    # Convergence criterion is reachable within the configured horizon or accuracy is still rising.
    criterion = ConvergenceCriterion()
    assert criterion.has_converged(fair.accuracies) or fair.accuracies[-1] >= fair.accuracies[0]


@pytest.mark.smoke
def test_fig4b_accuracy_smoke(smoke_suite):
    """Fast structural pass: the accuracy-vs-time series is well-formed."""
    fair = smoke_suite.run("fairbfl")
    times, accs = fair.accuracy_vs_time()
    assert len(times) == len(accs) == smoke_suite.num_rounds
    assert np.all(np.diff(fair.elapsed_times) > 0)
    assert all(0.0 <= a <= 1.0 for a in accs)
