"""Partition consensus: delay and reward fairness degrade, then recover.

The gossip substrate makes the cost of a network split measurable.  One
FAIR-BFL workload (4 miners, full peer graph) runs through three phases —
healthy, partitioned, healed: a timed ``partition`` window splits the miner
committee into two groups that each mine their own fork, and the heal-time
reorg voids the losing fork's blocks and rewards.

Asserted (the claims this bench pins):

* **consensus delay** — blocks mined during the partition only reach
  network-wide agreement at the heal, so their consensus delay (simulated
  seconds from block creation to global agreement) is orders of magnitude
  above the healed baseline of a few gossip hops;
* **reward fairness** — Jain's fairness index over the canonical chain's
  per-client rewards drops during the partition (only the winning fork's
  clients keep their rewards) and recovers after the heal.

Emits the human-readable phase table (``partition_consensus.txt``) and the
machine-readable record (``BENCH_partition_consensus.json``).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit, emit_json
from repro.core.experiment import run_fairbfl
from repro.core.results import ComparisonResult
from repro.runner.engine import ExperimentEngine
from repro.runner.scenario import ScenarioSpec

NUM_CLIENTS = 12
NUM_MINERS = 4
NUM_ROUNDS = 10
PARTITION = "3-6:0,1"  # rounds 3-6: miners {0,1} vs {2,3}
PARTITION_ROUNDS = range(3, 7)

PHASES = ("pre", "partition", "post")


def _phase_of(round_index: int) -> str:
    if round_index < PARTITION_ROUNDS.start:
        return "pre"
    if round_index in PARTITION_ROUNDS:
        return "partition"
    return "post"


def _spec(num_rounds: int = NUM_ROUNDS, partition: str = PARTITION) -> ScenarioSpec:
    return ScenarioSpec(
        name="partition-consensus",
        system="fairbfl",
        num_clients=NUM_CLIENTS,
        num_samples=50 * NUM_CLIENTS,
        num_rounds=num_rounds,
        participation=0.75,
        epochs=1,
        batch_size=10,
        learning_rate=0.05,
        miners=NUM_MINERS,
        topology="full",
        partition=partition,
        seed=0,
    )


def jain_index(values: list[float]) -> float:
    """Jain's fairness index over ``values`` (1 = perfectly even, 1/n = one winner)."""
    if not values:
        return 0.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 0.0
    return (total * total) / (len(values) * squares)


def _phase_fairness(chain) -> dict[str, float]:
    """Jain index over per-client canonical-chain rewards, one value per phase."""
    by_phase: dict[str, dict[str, float]] = {phase: {} for phase in PHASES}
    for block in chain.blocks:
        rewards = by_phase[_phase_of(block.round_index)]
        for record in block.reward_records():
            client = str(record.get("client"))
            rewards[client] = rewards.get(client, 0.0) + float(record.get("reward", 0.0))
    return {
        phase: jain_index(list(rewards.values())) for phase, rewards in by_phase.items()
    }


def _run_partition_experiment():
    spec = _spec()
    engine = ExperimentEngine()
    start = time.perf_counter()
    trainer, history = run_fairbfl(engine.dataset_for(spec), config=spec.fairbfl_config())
    wall = time.perf_counter() - start
    trainer.close()

    consensus: dict[int, float] = {}
    net = [record.extras["net"] for record in history.rounds]
    for entry in net:
        for r, delay in entry["consensus_resolved"].items():
            consensus[int(r)] = float(delay)
    return {
        "spec": spec,
        "trainer": trainer,
        "history": history,
        "net": net,
        "consensus": consensus,
        "fairness": _phase_fairness(trainer.chain),
        "wall_time_s": wall,
    }


def test_partition_consensus(benchmark):
    results = benchmark.pedantic(_run_partition_experiment, rounds=1, iterations=1)
    consensus, net = results["consensus"], results["net"]
    fairness = results["fairness"]

    assert set(consensus) == set(range(NUM_ROUNDS)), "every round must resolve"
    phase_delays = {phase: [] for phase in PHASES}
    for r, delay in consensus.items():
        phase_delays[_phase_of(r)].append(delay)
    mean_delay = {
        phase: sum(values) / len(values) for phase, values in phase_delays.items()
    }

    table = ComparisonResult(
        title=(
            f"Partition consensus (FAIR-BFL, n={NUM_CLIENTS}, m={NUM_MINERS}, "
            f"partition rounds {PARTITION_ROUNDS.start}-{PARTITION_ROUNDS.stop - 1})"
        ),
        columns=["phase", "rounds", "mean_consensus_delay_s", "reward_fairness_jain"],
    )
    measurements = []
    for phase in PHASES:
        table.add_row(
            phase, len(phase_delays[phase]), mean_delay[phase], fairness[phase]
        )
        measurements.append(
            {
                "label": phase,
                "rounds": len(phase_delays[phase]),
                "mean_consensus_delay_s": mean_delay[phase],
                "max_consensus_delay_s": max(phase_delays[phase]),
                "reward_fairness_jain": fairness[phase],
            }
        )
    total_reorgs = net[-1]["total_reorgs"]
    lost_uploads = sum(entry["lost_uploads"] for entry in net)
    table.notes.append(
        f"total reorgs {total_reorgs}, lost uploads {lost_uploads}; consensus "
        "delay = simulated seconds from block creation to network-wide agreement"
    )
    emit(table, "partition_consensus.txt")
    emit_json(
        "partition_consensus",
        config={
            "num_clients": NUM_CLIENTS,
            "num_miners": NUM_MINERS,
            "num_rounds": NUM_ROUNDS,
            "topology": "full",
            "partition": PARTITION,
            "participation": 0.75,
        },
        measurements=measurements,
        notes=[
            "assertion: partition-phase consensus delay > healed baseline",
            "assertion: reward fairness (Jain) recovers after the heal",
        ],
        specs=[results["spec"]],
    )

    # Consensus delay: a partitioned block waits whole rounds for agreement;
    # a healed block waits a few gossip hops.
    healed_baseline = max(mean_delay["pre"], mean_delay["post"])
    assert mean_delay["partition"] > 10 * healed_baseline, (
        f"partition did not degrade consensus delay: {mean_delay['partition']:.3f}s "
        f"vs healed {healed_baseline:.3f}s"
    )
    # Reward fairness: the heal voids the losing fork's rewards, so the
    # partitioned phase concentrates canonical rewards on the winning side.
    assert fairness["partition"] < fairness["pre"], (
        f"partition did not degrade reward fairness: "
        f"{fairness['partition']:.3f} vs pre {fairness['pre']:.3f}"
    )
    assert fairness["post"] > fairness["partition"], (
        f"fairness did not recover after the heal: "
        f"{fairness['post']:.3f} vs partition {fairness['partition']:.3f}"
    )
    # The split actually happened and healed.
    assert any(entry["chain_views"] > 1 for entry in net)
    assert net[-1]["chain_views"] == 1
    assert total_reorgs >= 1


@pytest.mark.smoke
def test_partition_consensus_smoke():
    """Structural subset: one short split, delays stretch, heal converges."""
    spec = _spec(num_rounds=5, partition="1-2:0,1")
    engine = ExperimentEngine()
    trainer, history = run_fairbfl(engine.dataset_for(spec), config=spec.fairbfl_config())
    trainer.close()
    net = [record.extras["net"] for record in history.rounds]
    assert net[1]["chain_views"] == 2 and net[1]["partition_active"]
    assert net[3]["reorged"] and net[3]["chain_views"] == 1
    resolved = {
        int(r): float(d)
        for entry in net
        for r, d in entry["consensus_resolved"].items()
    }
    # The split rounds' blocks waited for the heal; round 0 resolved in-round.
    assert resolved[1] > 10 * resolved[0]
    assert trainer.net.chain_views() == 1
