"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so the
PEP 517 editable-install path (which builds a wheel) is unavailable.  Keeping
this ``setup.py`` and omitting the ``[build-system]`` table from
``pyproject.toml`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` route, which works with the stdlib-only toolchain.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
