"""Tests for the content-addressed run store (`repro.store`).

The central claims under test:

* **key stability** — the same scenario hashes to the same key across
  construction styles, mapping key orders, and *processes*; any field change
  (seed included) or a capability change of the registered system produces a
  new key; the presentation-only ``name`` deliberately does not;
* **record fidelity** — a stored run reloads with every round field
  (extras included) exactly equal to the freshly-computed serialised form;
* **resume semantics** — an interrupted sweep re-run against the store
  computes only the missing scenarios (counted via the engine's
  ``runs_computed``/``cache_hits``) and yields bit-identical histories to an
  uncached sweep;
* **CLI surface** — ``sweep`` is write-through by default, ``--resume``
  reuses records, ``--no-cache`` opts out, and ``repro report`` renders the
  store as text/CSV/Markdown;
* **shared serialiser** — ``benchmarks/conftest.py``'s ``emit_json`` writes
  versioned records carrying the spec content keys.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.fl.history import RoundRecord, TrainingHistory
from repro.runner.engine import ExperimentEngine
from repro.runner.scenario import ScenarioMatrix, ScenarioSpec
from repro.store import (
    RunStore,
    RunStoreError,
    history_from_payload,
    history_to_payload,
    json_sanitize,
    spec_key,
    to_markdown,
    write_json_record,
)
from repro.store.records import STORE_SCHEMA_VERSION
from repro.systems import (
    RunResult,
    System,
    SystemCapabilities,
    capability_fingerprint,
    register_system,
    unregister_system,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

BLOCKCHAIN_FIELDS = dict(system="blockchain", num_clients=5, num_rounds=2)


def _blockchain_spec(**overrides) -> ScenarioSpec:
    return ScenarioSpec(**{**BLOCKCHAIN_FIELDS, "name": "store-test", **overrides})


class StoreToyRun:
    """Deterministic two-round run used where real training is overkill."""

    def __init__(self, name: str, num_rounds: int) -> None:
        self.name = name
        self.num_rounds = num_rounds

    def run(self) -> RunResult:
        history = TrainingHistory(label=self.name)
        for r in range(self.num_rounds):
            history.append(
                RoundRecord(round_index=r, delay=1.0, accuracy=0.5, elapsed_time=float(r + 1))
            )
        return RunResult(system=self.name, history=history, extras={"toy": True})


class StoreToySystem(System):
    name = "toy-store"
    description = "fixed-history system for store tests"
    capabilities = SystemCapabilities(needs_dataset=False)

    def build(self, spec, dataset):
        return StoreToyRun(self.name, spec.num_rounds)


@pytest.fixture()
def toy_store_system():
    system = register_system(StoreToySystem())
    try:
        yield system
    finally:
        unregister_system("toy-store")


class TestSpecKey:
    def test_key_is_sha256_hex(self):
        key = spec_key(_blockchain_spec())
        assert len(key) == 64 and set(key) <= set("0123456789abcdef")

    def test_same_spec_same_key_across_construction_styles(self):
        direct = _blockchain_spec()
        mapping = direct.to_mapping()
        shuffled = dict(sorted(mapping.items(), reverse=True))
        assert spec_key(direct) == spec_key(ScenarioSpec.from_mapping(shuffled))

    def test_numeric_coercion_does_not_change_key(self):
        # TOML/JSON loaders coerce 1 -> 1.0 for float fields; direct
        # construction must hash identically.
        a = _blockchain_spec(participation=1)
        b = _blockchain_spec(participation=1.0)
        assert spec_key(a) == spec_key(b)

    def test_name_is_presentation_only(self):
        assert spec_key(_blockchain_spec(name="a")) == spec_key(_blockchain_spec(name="b"))

    def test_execution_fields_do_not_change_key(self):
        # Backends produce bit-identical histories (the repo's determinism
        # invariant), so a sweep run with --backend process must resume
        # cleanly under --backend serial.
        base = spec_key(_blockchain_spec())
        assert spec_key(_blockchain_spec(backend="thread")) == base
        assert spec_key(_blockchain_spec(backend="process", max_workers=4)) == base

    @pytest.mark.parametrize(
        "override",
        [
            dict(seed=1),
            dict(num_clients=6),
            dict(num_rounds=3),
            dict(miners=3),
            dict(system="fairbfl"),
            dict(learning_rate=0.01),
        ],
    )
    def test_any_semantic_field_change_changes_key(self, override):
        assert spec_key(_blockchain_spec(**override)) != spec_key(_blockchain_spec())

    def test_key_stable_across_processes(self):
        spec = _blockchain_spec()
        script = (
            "from repro.runner.scenario import ScenarioSpec\n"
            "from repro.store import spec_key\n"
            f"print(spec_key(ScenarioSpec.from_mapping({spec.to_mapping()!r})))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env, check=True
        )
        assert out.stdout.strip() == spec_key(spec)

    def test_capability_change_changes_key(self, toy_store_system):
        spec = ScenarioSpec(system="toy-store", num_rounds=2)
        before = spec_key(spec)
        replacement = StoreToySystem()
        replacement.capabilities = SystemCapabilities(needs_dataset=False, defenses=True)
        register_system(replacement, replace=True)
        assert spec_key(spec) != before

    def test_fingerprint_covers_name_class_and_capabilities(self, toy_store_system):
        assert capability_fingerprint("toy-store") == capability_fingerprint(toy_store_system)
        assert capability_fingerprint("fairbfl") != capability_fingerprint("fedavg")
        # fairbfl and fairbfl-discard share capabilities but differ in name/class.
        assert capability_fingerprint("fairbfl") != capability_fingerprint("fairbfl-discard")


class TestRecords:
    def test_json_sanitize_flattens_rich_values(self):
        @dataclasses.dataclass
        class Part:
            x: float
            label: str

        value = {
            "np_int": np.int64(3),
            "np_float": np.float64(0.5),
            "np_bool": np.bool_(True),
            "array": np.arange(3, dtype=np.float64),
            "dataclass": Part(1.5, "p"),
            "tuple": (1, 2),
            "rewards": {3: 0.25},
            "opaque": object(),
        }
        out = json_sanitize(value)
        assert out["np_int"] == 3 and isinstance(out["np_int"], int)
        assert out["np_float"] == 0.5 and isinstance(out["np_float"], float)
        assert out["np_bool"] is True
        assert out["array"] == [0.0, 1.0, 2.0]
        assert out["dataclass"] == {"x": 1.5, "label": "p"}
        assert out["tuple"] == [1, 2]
        assert out["rewards"] == {"3": 0.25}
        assert isinstance(out["opaque"], str)
        json.dumps(out)  # fully serialisable

    def test_write_json_record_stamps_schema(self, tmp_path):
        path = write_json_record(tmp_path / "r.json", {"payload": 1}, kind="run")
        record = json.loads(path.read_text())
        assert record["schema_version"] == STORE_SCHEMA_VERSION
        assert record["record_kind"] == "run"
        assert record["payload"] == 1
        assert not list(tmp_path.glob("*.tmp"))

    def test_history_payload_round_trip_keeps_extras(self):
        history = TrainingHistory(label="h")
        history.append(
            RoundRecord(
                round_index=0,
                delay=1.25,
                accuracy=0.75,
                train_loss=0.5,
                elapsed_time=1.25,
                participants=[1, 2],
                discarded=[2],
                attackers=[1],
                rewards={1: 0.5, 2: 0.25},
                extras={"defense": "krum", "sim_events": 7},
            )
        )
        reloaded = history_from_payload(history_to_payload(history))
        assert history_to_payload(reloaded) == history_to_payload(history)
        assert reloaded.rounds[0].rewards == {1: 0.5, 2: 0.25}
        assert reloaded.rounds[0].extras["defense"] == "krum"


class TestRunStore:
    def test_put_get_round_trip_blockchain(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _blockchain_spec()
        computed = ExperimentEngine().run_result(spec)
        store.put(spec, computed)
        cached = store.get(spec)
        assert cached is not None
        assert cached.system == computed.system
        assert history_to_payload(cached.history) == history_to_payload(computed.history)

    def test_put_get_round_trip_fairbfl_extras(self, tmp_path):
        # FAIR-BFL rounds carry rich extras (delay breakdown dataclass, trace
        # digests); the stored form must round-trip to the same payload.
        store = RunStore(tmp_path)
        spec = ScenarioSpec(
            name="fair-tiny", system="fairbfl", num_clients=5, num_samples=250, num_rounds=2
        )
        computed = ExperimentEngine().run_result(spec)
        store.put(spec, computed)
        cached = store.get(spec)
        assert history_to_payload(cached.history) == history_to_payload(computed.history)
        assert cached.history.rounds[0].extras["event_trace_digest"] == (
            computed.history.rounds[0].extras["event_trace_digest"]
        )

    def test_get_relabels_history_with_requesting_name(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _blockchain_spec(name="original")
        store.put(spec, ExperimentEngine().run_result(spec))
        cached = store.get(_blockchain_spec(name="renamed"))
        assert cached is not None and cached.history.label == "renamed"

    def test_contains_keys_and_load(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _blockchain_spec()
        assert not store.contains(spec)
        stored = store.put(spec, ExperimentEngine().run_result(spec))
        assert store.contains(spec)
        assert store.keys() == (stored.key,)
        assert store.load(stored.key).spec == spec
        with pytest.raises(RunStoreError, match="no stored run"):
            store.load("0" * 64)

    def test_query_filters_and_rejects_unknown_fields(self, tmp_path):
        store = RunStore(tmp_path)
        engine = ExperimentEngine(store=store)
        engine.run_result(_blockchain_spec(name="m2", miners=2))
        engine.run_result(_blockchain_spec(name="m3", miners=3))
        assert len(store.query(system="blockchain")) == 2
        assert [r.spec.miners for r in store.query(miners=3)] == [3]
        assert store.query(system="fairbfl") == []
        assert store.query(predicate=lambda r: r.spec.miners == 2)[0].spec.name == "m2"
        with pytest.raises(RunStoreError, match="unknown scenario field"):
            store.query(minerz=3)

    def test_compress_writes_npz_sibling(self, tmp_path):
        store = RunStore(tmp_path, compress=True)
        spec = _blockchain_spec()
        stored = store.put(spec, ExperimentEngine().run_result(spec))
        arrays = np.load(stored.path.with_suffix(".npz"))
        np.testing.assert_allclose(arrays["delays"], stored.result.history.delays)
        record = json.loads(stored.path.read_text())
        assert record["arrays"] == stored.path.with_suffix(".npz").name

    def test_gc_collects_corrupt_and_mismatched_records(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _blockchain_spec()
        stored = store.put(spec, ExperimentEngine().run_result(spec))
        # A record filed under a key its spec no longer hashes to (the
        # signature of a code-relevant change) and an unreadable record.
        stale = tmp_path / "ab" / ("ab" + "0" * 62 + ".json")
        stale.parent.mkdir(parents=True)
        stale.write_text(stored.path.read_text())
        corrupt = tmp_path / "cd" / ("cd" + "1" * 62 + ".json")
        corrupt.parent.mkdir(parents=True)
        corrupt.write_text("{not json")
        removable = store.gc(dry_run=True)
        assert set(removable) == {stale.stem, corrupt.stem} and stored.path.exists()
        removed = store.gc()
        assert set(removed) == {stale.stem, corrupt.stem}
        assert not stale.exists() and not corrupt.exists() and stored.path.exists()
        assert store.gc() == ()

    def test_gc_reclaims_orphan_npz_sidecars(self, tmp_path):
        store = RunStore(tmp_path, compress=True)
        spec = _blockchain_spec()
        stored = store.put(spec, ExperimentEngine().run_result(spec))
        orphan = tmp_path / "ef" / ("ef" + "2" * 62 + ".npz")
        orphan.parent.mkdir(parents=True)
        orphan.write_bytes(b"not-an-npz")
        assert store.gc(dry_run=True) == (orphan.stem,)
        assert store.gc() == (orphan.stem,)
        assert not orphan.exists()
        assert stored.path.with_suffix(".npz").exists()  # paired sidecar survives

    def test_rewrite_without_compress_drops_stale_sidecar(self, tmp_path):
        spec = _blockchain_spec()
        result = ExperimentEngine().run_result(spec)
        stored = RunStore(tmp_path, compress=True).put(spec, result)
        assert stored.path.with_suffix(".npz").exists()
        RunStore(tmp_path).put(spec, result)
        assert not stored.path.with_suffix(".npz").exists()

    def test_gc_predicate_drops_valid_records(self, tmp_path):
        store = RunStore(tmp_path)
        engine = ExperimentEngine(store=store)
        engine.run_result(_blockchain_spec(name="keep", miners=2))
        engine.run_result(_blockchain_spec(name="drop", miners=3))
        removed = store.gc(predicate=lambda r: r.spec.miners == 3)
        assert len(removed) == 1
        assert [r.spec.miners for r in store.runs()] == [2]

    def test_index_sees_records_written_by_another_process(self, tmp_path):
        """The in-memory key index re-validates against the on-disk shards.

        The serve daemon's process-isolation workers (and any concurrent
        sweep) write records through *separate* RunStore instances; a store
        whose index was already built must still answer ``contains``/
        ``query``/``keys`` for them without an explicit refresh.
        """
        store = RunStore(tmp_path)
        local = _blockchain_spec(name="local", miners=2)
        store.put(local, ExperimentEngine().run_result(local))
        other = _blockchain_spec(name="other", miners=3)
        assert not store.contains(other)  # the index is now built and warm

        script = (
            "from repro.runner.engine import ExperimentEngine\n"
            "from repro.runner.scenario import ScenarioSpec\n"
            "from repro.store import RunStore\n"
            f"spec = ScenarioSpec.from_mapping({other.to_mapping()!r})\n"
            f"RunStore({str(tmp_path)!r}).put(spec, ExperimentEngine().run_result(spec))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env, check=True
        )

        assert store.contains(other)
        assert spec_key(other) in store.keys()
        assert [r.spec.miners for r in store.query(miners=3)] == [3]
        cached = store.get(other)
        assert cached is not None and cached.history.label == "other"

    def test_old_schema_records_miss_and_collect(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _blockchain_spec()
        stored = store.put(spec, ExperimentEngine().run_result(spec))
        record = json.loads(stored.path.read_text())
        record["schema_version"] = STORE_SCHEMA_VERSION + 1
        stored.path.write_text(json.dumps(record))
        assert store.get(spec) is None
        assert store.gc() == (stored.key,)


class TestEngineResume:
    """The acceptance criterion: a killed sweep resumes computing only what is missing."""

    def _matrix(self) -> list[ScenarioSpec]:
        return ScenarioMatrix(
            _blockchain_spec(name="grid"), {"miners": [2, 3], "seed": [0, 1]}
        ).expand()

    def test_interrupted_sweep_resumes_only_missing_cells(self, tmp_path):
        specs = self._matrix()
        assert len(specs) == 4

        # Reference: a plain uncached sweep.
        uncached = ExperimentEngine()
        reference = [uncached.run_result(spec) for spec in specs]
        assert uncached.runs_computed == 4

        # "Killed" sweep: only the first two cells completed before the kill.
        killed = ExperimentEngine(store=RunStore(tmp_path))
        for spec in specs[:2]:
            killed.run_result(spec)
        assert killed.runs_computed == 2

        # Resume: a fresh engine over the same store computes exactly the
        # two missing cells and loads the two finished ones.
        resumed = ExperimentEngine(store=RunStore(tmp_path))
        results = [resumed.run_result(spec) for spec in specs]
        assert resumed.runs_computed == 2
        assert resumed.cache_hits == 2

        # Bit-identical histories: the full serialised form (every round
        # field, extras included) matches the uncached reference cell by cell.
        for got, want in zip(results, reference):
            assert history_to_payload(got.history) == history_to_payload(want.history)

    def test_second_pass_is_fully_cached(self, tmp_path):
        specs = self._matrix()
        store = RunStore(tmp_path)
        first = ExperimentEngine(store=store)
        for spec in specs:
            first.run_result(spec)
        second = ExperimentEngine(store=store)
        for spec in specs:
            second.run_result(spec)
        assert second.runs_computed == 0 and second.cache_hits == 4

    def test_write_through_mode_recomputes_but_persists(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _blockchain_spec()
        ExperimentEngine(store=store).run_result(spec)
        engine = ExperimentEngine(store=store, reuse_cached=False)
        engine.run_result(spec)
        assert engine.runs_computed == 1 and engine.cache_hits == 0
        assert store.contains(spec)


class TestApiCache:
    def test_run_with_cache_path(self, tmp_path):
        first = api.run(_blockchain_spec(), cache=tmp_path)
        second = api.run(_blockchain_spec(), cache=tmp_path)
        assert history_to_payload(first) == history_to_payload(second)
        assert RunStore(tmp_path).keys()

    def test_sweep_with_cache_reuses_cells(self, tmp_path):
        doc = {
            "base": dict(BLOCKCHAIN_FIELDS),
            "matrix": {"miners": [2, 3]},
        }
        store = RunStore(tmp_path)
        api.sweep(doc, cache=store)
        engine = ExperimentEngine(store=store)
        table, _ = api.sweep(doc, engine=engine)
        assert engine.cache_hits == 2 and engine.runs_computed == 0
        assert len(table.rows) == 2

    def test_engine_and_cache_are_mutually_exclusive(self):
        with pytest.raises(api.ScenarioError, match="not both"):
            api.run(_blockchain_spec(), engine=ExperimentEngine(), cache="store")

    def test_bad_cache_value_is_rejected(self):
        with pytest.raises(api.ScenarioError, match="cache must be"):
            api.run(_blockchain_spec(), cache=42)

    def test_report_over_store(self, tmp_path):
        store = RunStore(tmp_path)
        ExperimentEngine(store=store).run_result(_blockchain_spec())
        table = api.report(store)
        assert table.column("system") == ["blockchain"]
        assert api.report(tmp_path, systems=["fairbfl"]).rows == []
        markdown = to_markdown(table)
        assert markdown.splitlines()[2].startswith("| scenario | system |")

    def test_markdown_escapes_pipes_in_cells(self, tmp_path):
        # Bench-style names ("matrix[sign_flip|krum]") must not split cells.
        store = RunStore(tmp_path)
        spec = _blockchain_spec(name="matrix[a|b]")
        ExperimentEngine(store=store).run_result(spec)
        row_line = to_markdown(api.report(store)).splitlines()[4]
        assert "matrix[a\\|b]" in row_line
        assert row_line.count(" | ") == 6  # 7 columns despite the pipe in the name


class TestCliStoreFlow:
    @pytest.fixture()
    def scenario_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps({"base": dict(BLOCKCHAIN_FIELDS), "matrix": {"miners": [2, 3]}})
        )
        return path

    def test_sweep_is_write_through_and_resumable(self, scenario_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        argv = ["sweep", "--scenario", str(scenario_file), "--store", str(store_dir)]
        assert main(argv) == 0
        first_out = capsys.readouterr().out
        assert "0 loaded, 2 computed" in first_out and "--resume" in first_out
        keys = RunStore(store_dir).keys()
        assert len(keys) == 2

        # Simulate the kill: one cell's record vanishes; --resume recomputes
        # exactly that cell and reproduces the same table.
        removed = RunStore(store_dir).path_for(keys[0])
        removed.unlink()
        assert main(argv + ["--resume"]) == 0
        resumed_out = capsys.readouterr().out
        assert "1 loaded, 1 computed" in resumed_out
        assert removed.exists()
        table = lambda text: [l for l in text.splitlines() if l.startswith("grid[")]  # noqa: E731
        assert table(resumed_out) == table(first_out)

    def test_sweep_no_cache_touches_nothing(self, scenario_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        code = main(
            ["sweep", "--scenario", str(scenario_file), "--store", str(store_dir), "--no-cache"]
        )
        assert code == 0
        assert "run store" not in capsys.readouterr().out
        assert not store_dir.exists()

    def test_resume_and_no_cache_conflict(self, scenario_file, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["sweep", "--scenario", str(scenario_file), "--resume", "--no-cache"]
            )

    def test_report_renders_text_csv_markdown(self, scenario_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(["sweep", "--scenario", str(scenario_file), "--store", str(store_dir)])
        capsys.readouterr()
        csv_path = tmp_path / "report.csv"
        md_path = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--store",
                str(store_dir),
                "--export",
                str(csv_path),
                "--markdown",
                str(md_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Stored runs (2 records)" in out
        assert csv_path.read_text().splitlines()[0] == (
            "scenario,system,rounds,avg_delay_s,avg_accuracy,final_accuracy,key"
        )
        assert md_path.read_text().startswith("# Stored runs (2 records)")

    def test_report_empty_store_fails_cleanly(self, tmp_path, capsys):
        code = main(["report", "--store", str(tmp_path / "nowhere")])
        assert code == 1
        assert "no stored runs" in capsys.readouterr().err

    def test_report_system_filter(self, scenario_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(["sweep", "--scenario", str(scenario_file), "--store", str(store_dir)])
        capsys.readouterr()
        assert main(["report", "--store", str(store_dir), "--system", "fairbfl"]) == 1
        assert "fairbfl" in capsys.readouterr().err


class TestEmitJsonSharedSerialiser:
    def test_bench_records_carry_schema_and_spec_keys(self, tmp_path, monkeypatch):
        if str(REPO_ROOT) not in sys.path:
            sys.path.insert(0, str(REPO_ROOT))
        conftest = pytest.importorskip("benchmarks.conftest")
        monkeypatch.setattr(conftest, "RESULTS_DIR", tmp_path)
        spec = _blockchain_spec(name="bench-cell")
        path = conftest.emit_json(
            "store_smoke",
            config={"cells": 1},
            measurements=[{"label": "bench-cell", "wall_time_s": 0.1}],
            notes=["test"],
            specs=[spec],
        )
        record = json.loads(path.read_text())
        assert path.name == "BENCH_store_smoke.json"
        assert record["schema_version"] == STORE_SCHEMA_VERSION
        assert record["record_kind"] == "benchmark"
        assert record["spec_keys"] == {"bench-cell": spec_key(spec)}
        assert record["environment"]["cpus"] >= 1
