"""Fork choice, reorg validation edges, and mempool eviction.

Satellite coverage for the gossip-substrate PR: the seeded hash tie-break
that resolves equal-length forks identically on every node, the
``Blockchain.reorg_to`` validation edges (duplicate insertion, orphan
ordering, Merkle tampering on a reorged candidate), and the mempool's two
eviction paths (chain-included and round-expired transactions).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain, BlockValidationError, ForkChoice
from repro.blockchain.mempool import Mempool
from repro.blockchain.transaction import make_gradient_transaction
from repro.net import Node

pytestmark = pytest.mark.net


def _chain(rounds=0, miner_id="m", transactions_for=None):
    chain = Blockchain(enforce_pow=False)
    chain.add_genesis(Block.genesis())
    for r in range(rounds):
        txs = transactions_for(r) if transactions_for else []
        chain.add_block(
            Block.create(
                index=r + 1,
                previous_hash=chain.last_block.block_hash,
                round_index=r,
                miner_id=miner_id,
                transactions=txs,
            )
        )
    return chain


def _tx(client=0, round_index=0, value=1.0):
    return make_gradient_transaction(
        f"client-{client}", round_index, np.full(3, value)
    )


class TestForkChoice:
    def test_tie_break_deterministic_and_salt_sensitive(self):
        rule = ForkChoice(salt=7)
        digest = rule.tie_break("ab" * 32)
        assert digest == ForkChoice(salt=7).tie_break("ab" * 32)
        assert digest != ForkChoice(salt=8).tie_break("ab" * 32)
        assert digest != rule.tie_break("cd" * 32)

    def test_longer_chain_always_wins(self):
        rule = ForkChoice(salt=0)
        short, long = _chain(1, "a"), _chain(3, "b")
        assert rule.prefer(short, long)
        assert not rule.prefer(long, short)

    def test_equal_length_resolved_by_salted_digest(self):
        rule = ForkChoice(salt=0)
        a, b = _chain(2, "a"), _chain(2, "b")
        assert a.last_block.block_hash != b.last_block.block_hash
        forward = rule.prefer(a, b)
        backward = rule.prefer(b, a)
        # Exactly one direction prefers: the rule is a strict order on tips.
        assert forward != backward
        winner, loser = (b, a) if forward else (a, b)
        assert rule.tie_break(winner.last_block.block_hash) < rule.tie_break(
            loser.last_block.block_hash
        )

    def test_identical_tips_never_prefer(self):
        rule = ForkChoice(salt=0)
        a = _chain(2, "a")
        b = Blockchain(enforce_pow=False)
        b.blocks = list(a.blocks)
        assert not rule.prefer(a, b)

    def test_empty_chains(self):
        rule = ForkChoice(salt=0)
        empty, real = Blockchain(enforce_pow=False), _chain(1)
        assert rule.prefer(empty, real)
        assert not rule.prefer(real, empty)
        assert not rule.prefer(empty, Blockchain(enforce_pow=False))

    def test_best_picks_same_winner_in_any_order(self):
        rule = ForkChoice(salt=3)
        chains = [_chain(2, mid) for mid in ("a", "b", "c", "d")]
        winner = rule.best(chains)
        assert rule.best(reversed(chains)) is winner
        for chain in chains:
            if chain is not winner:
                assert rule.prefer(chain, winner)

    def test_best_requires_candidates(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            ForkChoice(salt=0).best([])

    def test_every_node_picks_the_same_equal_length_winner(self):
        # The substrate-level guarantee in miniature: nodes starting from
        # different views of an equal-length fork all adopt one tip.
        rule = ForkChoice(salt=11)
        fork_a, fork_b = _chain(2, "a"), _chain(2, "b")
        heads = set()
        for view in (fork_a, fork_b):
            best = rule.best([fork_a, fork_b])
            node = Node(node_id="n", chain=view.copy())
            node.sync_with(Node(node_id="peer", chain=best), rule)
            heads.add(node.head_hash)
        assert len(heads) == 1


class TestReorgEdges:
    def test_reorg_counts_rolled_back_and_applied(self):
        ours = _chain(2, "a")
        theirs = _chain(3, "b")
        rolled_back, applied = ours.reorg_to(list(theirs.blocks))
        assert (rolled_back, applied) == (2, 3)
        assert ours.fork_events == 1
        assert ours.last_block.block_hash == theirs.last_block.block_hash

    def test_reorg_pure_extension_is_not_a_fork_event(self):
        ours = _chain(1, "a")
        extended = Blockchain(enforce_pow=False)
        extended.blocks = list(ours.blocks)
        extended.add_block(
            Block.create(
                index=2,
                previous_hash=extended.last_block.block_hash,
                round_index=1,
                miner_id="a",
                transactions=[],
            )
        )
        rolled_back, applied = ours.reorg_to(list(extended.blocks))
        assert (rolled_back, applied) == (0, 1)
        assert ours.fork_events == 0

    def test_reorg_rejects_empty_candidate(self):
        with pytest.raises(BlockValidationError, match="empty chain"):
            _chain(1).reorg_to([])

    def test_reorg_rejects_different_genesis(self):
        ours = _chain(1, "a")
        other = Blockchain(enforce_pow=False)
        other.add_genesis(Block.genesis(initial_global_update=_tx()))
        with pytest.raises(BlockValidationError, match="different genesis"):
            ours.reorg_to(list(other.blocks))

    def test_reorg_rejects_merkle_tampered_candidate(self):
        # The candidate fork carries a block whose transactions were swapped
        # after mining: full validation must catch the Merkle mismatch
        # *before* the local view is discarded.
        ours = _chain(1, "a")
        theirs = _chain(3, "b", transactions_for=lambda r: [_tx(client=r, round_index=r)])
        theirs.blocks[2].transactions[0] = _tx(client=9, round_index=1, value=99.0)
        height_before = ours.height
        with pytest.raises(BlockValidationError, match="Merkle"):
            ours.reorg_to(list(theirs.blocks))
        assert ours.height == height_before  # nothing was discarded

    def test_reorg_rejects_broken_link(self):
        ours = _chain(1, "a")
        theirs = _chain(3, "b")
        tampered = list(theirs.blocks)
        del tampered[2]  # hole in the chain
        with pytest.raises(BlockValidationError):
            ours.reorg_to(tampered)

    def test_duplicate_block_insertion_rejected(self):
        chain = _chain(2, "a")
        with pytest.raises(BlockValidationError, match="index"):
            chain.add_block(chain.blocks[-1])
        assert Node(node_id="n", chain=chain).receive_block(chain.blocks[-1]) == "duplicate"

    def test_orphan_block_before_parent(self):
        donor = _chain(3, "b")
        node = Node(node_id="n", chain=_chain(0))
        grandchild, child, parent = donor.blocks[3], donor.blocks[2], donor.blocks[1]
        assert node.receive_block(grandchild) == "orphaned"
        assert node.receive_block(child) == "orphaned"
        assert node.chain.height == 1
        # The missing parent arrives: both orphans cascade in order.
        assert node.receive_block(parent) == "appended"
        assert node.chain.height == 4
        assert node.orphans == {}
        assert node.chain.is_valid()


class TestMempoolEviction:
    def _pool(self):
        return Mempool(block_size_bytes=1 << 20)

    def test_evict_included_from_chain(self):
        pool = self._pool()
        settled, pending = _tx(client=0), _tx(client=1)
        pool.submit(settled)
        pool.submit(pending)
        chain = _chain(1, transactions_for=lambda r: [settled])
        assert pool.evict_included(chain) == 1
        assert pool.pending_count == 1
        assert [tx.tx_id for tx in pool.take_block()] == [pending.tx_id]

    def test_evict_included_from_id_iterable(self):
        pool = self._pool()
        a, b = _tx(client=0), _tx(client=1)
        pool.submit(a)
        pool.submit(b)
        assert pool.evict_included([a.tx_id]) == 1
        assert pool.pending_count == 1

    def test_evict_older_than_expires_stale_rounds(self):
        pool = self._pool()
        old = _tx(client=0, round_index=0)
        fresh = _tx(client=1, round_index=2)
        pool.submit(old)
        pool.submit(fresh)
        assert pool.evict_older_than(2) == 1
        assert pool.pending_count == 1
        assert pool.evict_older_than(2) == 0  # round-2 tx survives its own round

    def test_eviction_restores_bookkeeping(self):
        pool = self._pool()
        tx = _tx(client=0)
        pool.submit(tx)
        bytes_before = pool.pending_bytes
        assert bytes_before > 0
        assert pool.evict_included([tx.tx_id]) == 1
        assert pool.pending_bytes == 0
        # The id was released: the same tx may be resubmitted (a reorg can
        # return a discarded fork's transactions to circulation).
        assert pool.submit(tx)
        assert pool.pending_bytes == bytes_before

    def test_evict_on_empty_pool(self):
        pool = self._pool()
        assert pool.evict_included([]) == 0
        assert pool.evict_older_than(5) == 0
