"""Tests for the attack models, the attack scheduler, and the timing simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.base import NoAttack
from repro.attacks.gradient_attacks import (
    GaussianNoiseAttack,
    ScalingAttack,
    SignFlipAttack,
    ZeroGradientAttack,
    make_attack,
)
from repro.attacks.label_flip import LabelFlipAttack
from repro.attacks.scheduler import AttackRoundLog, AttackScheduler, detection_rate
from repro.blockchain.consensus import ForkModel
from repro.fl.client import ClientUpdate
from repro.sim.delay import DelayModel, DelayParameters, RoundDelayBreakdown
from repro.sim.vanilla_blockchain import VanillaBlockchainConfig, VanillaBlockchainSimulator
from repro.utils.rng import new_rng


def _update(direction=None, dim=8):
    params = np.ones(dim) if direction is None else np.asarray(direction, dtype=float)
    return ClientUpdate(
        client_id=0, parameters=params, num_samples=10, train_loss=0.1, val_accuracy=0.9
    )


GLOBAL = np.zeros(8)


class TestGradientAttacks:
    def test_sign_flip_reverses_direction(self):
        forged = SignFlipAttack().apply(_update(), new_rng(0, "a"), global_parameters=GLOBAL)
        np.testing.assert_allclose(forged.parameters, -np.ones(8))
        assert forged.is_malicious
        assert forged.metadata["attack"] == "sign_flip"

    def test_sign_flip_with_scale(self):
        forged = SignFlipAttack(scale=2.0).apply(_update(), new_rng(0, "a"), global_parameters=GLOBAL)
        np.testing.assert_allclose(forged.parameters, -2 * np.ones(8))

    def test_sign_flip_without_global(self):
        forged = SignFlipAttack().apply(_update(), new_rng(0, "a"))
        np.testing.assert_allclose(forged.parameters, -np.ones(8))

    def test_scaling_attack_amplifies(self):
        forged = ScalingAttack(factor=5.0).apply(_update(), new_rng(0, "a"), global_parameters=GLOBAL)
        np.testing.assert_allclose(forged.parameters, 5 * np.ones(8))

    def test_gaussian_noise_preserves_norm(self):
        honest = _update()
        forged = GaussianNoiseAttack(std=1.0).apply(honest, new_rng(0, "a"), global_parameters=GLOBAL)
        assert np.linalg.norm(forged.parameters) == pytest.approx(
            np.linalg.norm(honest.parameters), rel=1e-6
        )
        assert not np.allclose(forged.parameters, honest.parameters)

    def test_zero_gradient_returns_global(self):
        forged = ZeroGradientAttack().apply(_update(), new_rng(0, "a"), global_parameters=np.full(8, 3.0))
        np.testing.assert_allclose(forged.parameters, np.full(8, 3.0))

    def test_zero_gradient_without_global(self):
        forged = ZeroGradientAttack().apply(_update(), new_rng(0, "a"))
        np.testing.assert_allclose(forged.parameters, np.zeros(8))

    def test_attacks_do_not_mutate_original(self):
        honest = _update()
        SignFlipAttack().apply(honest, new_rng(0, "a"), global_parameters=GLOBAL)
        np.testing.assert_allclose(honest.parameters, np.ones(8))
        assert not honest.is_malicious

    def test_no_attack_is_identity(self):
        honest = _update()
        assert NoAttack().apply(honest, new_rng(0, "a")) is honest

    def test_factory(self):
        assert isinstance(make_attack("sign_flip"), SignFlipAttack)
        assert isinstance(make_attack("scaling"), ScalingAttack)
        assert isinstance(make_attack("gaussian_noise"), GaussianNoiseAttack)
        assert isinstance(make_attack("zero_gradient"), ZeroGradientAttack)
        assert isinstance(make_attack("none"), NoAttack)
        with pytest.raises(ValueError):
            make_attack("backdoor")

    def test_validation(self):
        with pytest.raises(ValueError):
            SignFlipAttack(scale=0.0)
        with pytest.raises(ValueError):
            ScalingAttack(factor=-1.0)
        with pytest.raises(ValueError):
            GaussianNoiseAttack(std=-0.1)


class TestLabelFlip:
    def test_poison_labels_rotates(self):
        attack = LabelFlipAttack(flip_fraction=1.0, num_classes=10)
        labels = np.arange(10)
        poisoned = attack.poison_labels(labels, new_rng(0, "lf"))
        np.testing.assert_array_equal(poisoned, (labels + 1) % 10)

    def test_poison_labels_fraction(self):
        attack = LabelFlipAttack(flip_fraction=0.5, num_classes=10)
        labels = np.zeros(100, dtype=int)
        poisoned = attack.poison_labels(labels, new_rng(0, "lf"))
        assert np.sum(poisoned != labels) == 50

    def test_direction_space_approximation(self):
        forged = LabelFlipAttack().apply(_update(), new_rng(0, "lf"), global_parameters=GLOBAL)
        assert forged.is_malicious
        assert forged.parameters.shape == (8,)

    def test_retraining_variant(self, tiny_federated):
        from repro.fl.client import FLClient, LocalTrainingConfig
        from repro.nn.models import LogisticRegressionModel
        from repro.nn.parameters import get_flat_parameters

        shard = tiny_federated.client(0)
        client = FLClient(
            shard, lambda: LogisticRegressionModel(784, 10, new_rng(0, "m")), new_rng(0, "c")
        )
        attack = LabelFlipAttack(flip_fraction=1.0)
        global_params = get_flat_parameters(client.model)
        forged = attack.apply_with_retraining(
            client, global_params, LocalTrainingConfig(epochs=1), new_rng(0, "lf")
        )
        assert forged.is_malicious
        assert forged.client_id == shard.client_id
        # The poisoning must not modify the client's real shard.
        assert shard.labels.max() <= 9

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelFlipAttack(flip_fraction=1.5)
        with pytest.raises(ValueError):
            LabelFlipAttack(num_classes=1)


class TestAttackScheduler:
    def test_designate_within_bounds(self):
        sched = AttackScheduler(min_attackers=1, max_attackers=3)
        rng = new_rng(0, "sched")
        for _ in range(20):
            attackers = sched.designate(list(range(10)), rng)
            assert 1 <= len(attackers) <= 3
            assert all(a in range(10) for a in attackers)

    def test_designate_respects_probability_zero(self):
        sched = AttackScheduler(probability=0.0)
        assert sched.designate(list(range(10)), new_rng(0, "s")) == []

    def test_designate_empty_pool(self):
        sched = AttackScheduler()
        assert sched.designate([], new_rng(0, "s")) == []

    def test_designate_caps_at_pool_size(self):
        sched = AttackScheduler(min_attackers=3, max_attackers=3)
        attackers = sched.designate([5, 9], new_rng(0, "s"))
        assert len(attackers) == 2

    def test_record_and_average(self):
        sched = AttackScheduler()
        sched.record_round(0, [1, 2], [2])
        sched.record_round(1, [3], [3])
        sched.record_round(2, [], [])
        assert sched.average_detection_rate() == pytest.approx((0.5 + 1.0) / 2)

    def test_round_log_properties(self):
        log = AttackRoundLog(round_index=0, attacker_ids=[1, 2, 3], dropped_ids=[2, 3, 7])
        assert log.detected == [2, 3]
        assert log.detection_rate == pytest.approx(2 / 3)
        assert log.false_positives == [7]

    def test_detection_rate_no_attacks(self):
        assert detection_rate([]) == 1.0
        assert AttackRoundLog(0, [], []).detection_rate == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackScheduler(min_attackers=-1)
        with pytest.raises(ValueError):
            AttackScheduler(min_attackers=3, max_attackers=1)
        with pytest.raises(ValueError):
            AttackScheduler(probability=1.5)
        with pytest.raises(ValueError):
            AttackScheduler(active_from=-1.0)
        with pytest.raises(ValueError):
            AttackScheduler(active_from=5.0, active_until=5.0)

    def test_activation_window_keys_off_simulated_time(self):
        sched = AttackScheduler(active_from=10.0, active_until=30.0)
        rng = new_rng(0, "window")
        assert sched.designate(list(range(10)), rng, sim_time=0.0) == []
        assert sched.designate(list(range(10)), rng, sim_time=10.0) != []
        assert sched.designate(list(range(10)), rng, sim_time=29.9) != []
        assert sched.designate(list(range(10)), rng, sim_time=30.0) == []
        # No simulated clock (legacy callers): always active.
        assert sched.designate(list(range(10)), rng) != []
        assert sched.is_active(None) and sched.is_active(10.0)
        assert not sched.is_active(9.99)

    def test_inactive_rounds_consume_no_rng_draws(self):
        """Designation outside the window must not perturb later rounds' draws."""
        windowed = AttackScheduler(active_from=100.0)
        always = AttackScheduler()
        rng_a, rng_b = new_rng(3, "w"), new_rng(3, "w")
        for _ in range(5):
            assert windowed.designate(list(range(10)), rng_a, sim_time=0.0) == []
        first_active = windowed.designate(list(range(10)), rng_a, sim_time=200.0)
        assert first_active == always.designate(list(range(10)), rng_b, sim_time=None)

    def test_trainer_clock_drives_activation(self, tiny_federated):
        """Attack activation keys off the kernel-simulated clock the trainer advances."""
        from repro.core.config import FairBFLConfig
        from repro.core.fairbfl import FairBFLTrainer
        from repro.fl.client import LocalTrainingConfig

        cfg = FairBFLConfig(
            num_rounds=4,
            participation_fraction=1.0,
            local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
            model_name="logreg",
            enable_attacks=True,
            seed=7,
        )
        with FairBFLTrainer(tiny_federated, cfg) as trainer:
            # Round 0 starts at simulated time 0; later rounds start after the
            # kernel has advanced the clock by each round's simulated total.
            first_round_total = trainer.run(num_rounds=1).rounds[0].delay
            trainer.attack_scheduler.active_from = first_round_total + 1e-9
            trainer.run(num_rounds=3)
            history = trainer.history
        assert history.rounds[0].attackers  # window [0, ...) was irrelevant yet
        assert history.rounds[1].attackers == []  # clock at exactly one round total
        assert history.rounds[2].attackers  # clock has passed the threshold
        assert history.rounds[3].attackers


class TestDelayModel:
    @pytest.fixture()
    def model(self):
        return DelayModel(DelayParameters(), new_rng(0, "delay"))

    def test_breakdown_total(self):
        b = RoundDelayBreakdown(t_local=1.0, t_up=2.0, t_ex=0.5, t_gl=0.25, t_bl=3.0)
        assert b.total == pytest.approx(6.75)
        assert b.as_dict()["total"] == pytest.approx(6.75)

    def test_local_training_scales_with_batches(self, model):
        short = np.mean([model.local_training_delay(5, 2, 1) for _ in range(200)])
        long = np.mean([model.local_training_delay(5, 20, 5) for _ in range(200)])
        assert long > short

    def test_zero_participants_zero_delay(self, model):
        assert model.local_training_delay(0, 10, 5) == 0.0
        assert model.upload_delay(0) == 0.0

    def test_upload_delay_grows_with_participants(self, model):
        few = np.mean([model.upload_delay(2) for _ in range(300)])
        many = np.mean([model.upload_delay(60) for _ in range(300)])
        assert many > few

    def test_exchange_delay(self, model):
        assert model.exchange_delay(1) == 0.0
        assert model.exchange_delay(5) > model.exchange_delay(2)

    def test_mining_delay_positive(self, model):
        assert model.mining_delay(2) > 0.0

    def test_fairbfl_round_has_all_components(self, model):
        b = model.fairbfl_round(
            num_participants=10, num_miners=2, batches_per_epoch=5, epochs=5
        )
        assert b.t_local > 0 and b.t_up > 0 and b.t_ex > 0 and b.t_gl > 0 and b.t_bl > 0

    def test_fl_round_has_no_chain_components(self, model):
        b = model.fl_round(num_participants=10, batches_per_epoch=5, epochs=5)
        assert b.t_ex == 0.0 and b.t_bl == 0.0
        assert b.t_local > 0 and b.t_up > 0

    def test_vanilla_round_queueing_adds_blocks(self):
        params = DelayParameters(transactions_per_block=10)
        model = DelayModel(params, new_rng(1, "delay"))
        few = np.mean(
            [model.vanilla_blockchain_round(num_transactions=5, num_miners=2).t_bl for _ in range(200)]
        )
        many = np.mean(
            [model.vanilla_blockchain_round(num_transactions=50, num_miners=2).t_bl for _ in range(200)]
        )
        assert many > 3 * few

    def test_vanilla_round_validation(self, model):
        with pytest.raises(ValueError):
            model.vanilla_blockchain_round(num_transactions=-1, num_miners=2)

    def test_ordering_fedavg_fair_blockchain(self):
        """The headline ordering of Fig. 4a: FedAvg < FAIR-BFL < vanilla blockchain."""
        params = DelayParameters()
        model = DelayModel(params, new_rng(2, "delay"))
        fl = np.mean(
            [model.fl_round(num_participants=10, batches_per_epoch=5, epochs=5).total for _ in range(300)]
        )
        fair = np.mean(
            [
                model.fairbfl_round(
                    num_participants=10, num_miners=2, batches_per_epoch=5, epochs=5
                ).total
                for _ in range(300)
            ]
        )
        chain = np.mean(
            [
                model.vanilla_blockchain_round(num_transactions=100, num_miners=2).total
                for _ in range(300)
            ]
        )
        assert fl < fair < chain

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DelayParameters(compute_time_per_batch=0.0)
        with pytest.raises(ValueError):
            DelayParameters(block_interval=0.0)
        with pytest.raises(ValueError):
            DelayParameters(transactions_per_block=0)


class TestForkModel:
    def test_probability_increases_with_miners(self):
        fm = ForkModel(base_fork_probability=0.1)
        probs = [fm.fork_probability(m) for m in (1, 2, 5, 10)]
        assert probs[0] == 0.0
        assert all(a < b for a, b in zip(probs, probs[1:]))

    def test_sample_fork_delay(self):
        fm = ForkModel(base_fork_probability=0.5, merge_cost=2.0)
        rng = new_rng(0, "fork")
        forks, delay = fm.sample_fork_delay(rng, 10)
        assert forks >= 0
        assert delay >= 0.0
        assert fm.sample_fork_delay(rng, 1) == (0, 0.0)

    def test_mean_fork_delay_grows_with_miners(self):
        fm = ForkModel(base_fork_probability=0.1, merge_cost=3.0)
        rng = new_rng(1, "fork")
        small = np.mean([fm.sample_fork_delay(rng, 2)[1] for _ in range(2000)])
        large = np.mean([fm.sample_fork_delay(rng, 10)[1] for _ in range(2000)])
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            ForkModel(base_fork_probability=1.5)
        with pytest.raises(ValueError):
            ForkModel(merge_cost=-1.0)


class TestVanillaBlockchainSimulator:
    def test_run_produces_history_and_blocks(self):
        cfg = VanillaBlockchainConfig(num_workers=12, num_miners=2, num_rounds=3, seed=0)
        sim = VanillaBlockchainSimulator(cfg)
        history = sim.run()
        assert len(history) == 3
        assert all(r.delay > 0 for r in history.rounds)
        # Genesis + at least one block per round.
        assert sim.chain_height >= 4
        # All miner replicas agree.
        tips = {m.chain.last_block.block_hash for m in sim.miners}
        assert len(tips) == 1

    def test_block_size_limit_forces_multiple_blocks(self):
        params = DelayParameters(transactions_per_block=5)
        cfg = VanillaBlockchainConfig(
            num_workers=12, num_miners=2, num_rounds=1, delay_params=params, seed=0
        )
        sim = VanillaBlockchainSimulator(cfg)
        history = sim.run()
        assert history.rounds[0].extras["blocks_mined"] >= 3

    def test_signature_verification_path(self):
        cfg = VanillaBlockchainConfig(
            num_workers=3, num_miners=2, num_rounds=1, verify_signatures=True, seed=0
        )
        sim = VanillaBlockchainSimulator(cfg)
        sim.run()
        assert all(m.rejected_transactions == 0 for m in sim.miners)

    def test_delay_grows_with_workers(self):
        def avg_delay(n):
            cfg = VanillaBlockchainConfig(num_workers=n, num_miners=2, num_rounds=5, seed=1)
            return VanillaBlockchainSimulator(cfg).run().average_delay()

        assert avg_delay(150) > avg_delay(10)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VanillaBlockchainConfig(num_workers=0)
        with pytest.raises(ValueError):
            VanillaBlockchainConfig(num_rounds=0)
        with pytest.raises(ValueError):
            VanillaBlockchainConfig(payload_elements=0)


@given(st.integers(1, 40), st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_delay_breakdown_nonnegative_property(participants, miners):
    """Property: every sampled delay component is non-negative and the total adds up."""
    model = DelayModel(DelayParameters(), new_rng(participants * 10 + miners, "prop"))
    b = model.fairbfl_round(
        num_participants=participants, num_miners=miners, batches_per_epoch=3, epochs=2
    )
    parts = [b.t_local, b.t_up, b.t_ex, b.t_gl, b.t_bl]
    assert all(p >= 0 for p in parts)
    assert b.total == pytest.approx(sum(parts))
