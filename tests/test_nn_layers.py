"""Tests for repro.nn layers, modules, and numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Dropout, Flatten, Linear, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.parameters import get_flat_parameters, set_flat_parameters
from repro.utils.rng import new_rng


@pytest.fixture()
def rng():
    return new_rng(0, "nn-tests")


class TestParameter:
    def test_grad_initialised_to_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert np.all(p.grad == 0.0)

    def test_zero_grad_in_place(self):
        p = Parameter(np.ones(4))
        grad_ref = p.grad
        p.grad += 5.0
        p.zero_grad()
        assert p.grad is grad_ref
        assert np.all(p.grad == 0.0)

    def test_size_and_shape(self):
        p = Parameter(np.zeros((3, 5)))
        assert p.size == 15
        assert p.shape == (3, 5)


class TestModuleTraversal:
    def test_parameters_recursive(self, rng):
        model = Sequential(Linear(4, 3, rng), ReLU(), Linear(3, 2, rng))
        names = [n for n, _ in model.named_parameters()]
        assert names == ["layer0.weight", "layer0.bias", "layer2.weight", "layer2.bias"]

    def test_num_parameters(self, rng):
        model = Sequential(Linear(4, 3, rng), Linear(3, 2, rng))
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_resets_all(self, rng):
        model = Sequential(Linear(3, 2, rng))
        for p in model.parameters():
            p.grad += 1.0
        model.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in model.parameters())

    def test_register_wrong_types(self, rng):
        m = Module()
        with pytest.raises(TypeError):
            m.register_parameter("p", np.zeros(3))
        with pytest.raises(TypeError):
            m.register_module("c", "not a module")

    def test_sequential_indexing_and_append(self, rng):
        model = Sequential(Linear(2, 2, rng))
        model.append(ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng)
        out = layer.forward(np.zeros((7, 5)))
        assert out.shape == (7, 3)

    def test_forward_wrong_dim_raises(self, rng):
        with pytest.raises(ValueError):
            Linear(5, 3, rng).forward(np.zeros((7, 4)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng).backward(np.zeros((1, 2)))

    def test_no_bias_option(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None
        assert sum(1 for _ in layer.parameters()) == 1

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng)

    def test_invalid_init_name(self, rng):
        with pytest.raises(ValueError):
            Linear(2, 2, rng, init="bogus")

    def test_gradient_accumulates_across_backwards(self, rng):
        layer = Linear(3, 2, rng)
        x = np.ones((4, 3))
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(grad, [[0.0, 5.0]])

    def test_tanh_range(self):
        out = Tanh().forward(np.array([[-10.0, 0.0, 10.0]]))
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_extremes_stable(self):
        out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-12)

    def test_softmax_rows_sum_to_one(self):
        out = Softmax().forward(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_softmax_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        a = Softmax().forward(x)
        b = Softmax().forward(x + 100.0)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_backward_before_forward_raises(self):
        for layer in (ReLU(), Tanh(), Sigmoid(), Softmax(), Flatten()):
            with pytest.raises(RuntimeError):
                layer.backward(np.zeros((1, 2)))


class TestDropoutFlatten:
    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.training = False
        x = np.ones((4, 6))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_dropout_train_scales_kept_units(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((2000, 1))
        out = layer.forward(x)
        # Inverted dropout keeps the expectation approximately unchanged.
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_dropout_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == (2, 3, 4)


def _numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        f_plus = f()
        x[idx] = old - eps
        f_minus = f()
        x[idx] = old
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestGradientCheck:
    """Finite-difference checks that backprop matches the analytic gradient."""

    def test_linear_softmax_ce_gradients(self, rng):
        model = Sequential(Linear(6, 4, rng), Tanh(), Linear(4, 3, rng))
        loss_fn = SoftmaxCrossEntropyLoss()
        x = new_rng(1, "x").normal(size=(5, 6))
        y = new_rng(2, "y").integers(0, 3, size=5)

        def loss_value():
            return loss_fn.forward(model.forward(x), y)

        model.zero_grad()
        loss_fn.forward(model.forward(x), y)
        model.backward(loss_fn.backward())

        for param in model.parameters():
            numeric = _numerical_gradient(loss_value, param.value)
            np.testing.assert_allclose(param.grad, numeric, atol=1e-5, rtol=1e-4)

    def test_relu_network_gradients(self, rng):
        model = Sequential(Linear(4, 5, rng, init="he"), ReLU(), Linear(5, 2, rng))
        loss_fn = SoftmaxCrossEntropyLoss()
        x = new_rng(3, "x").normal(size=(6, 4)) + 0.1
        y = new_rng(4, "y").integers(0, 2, size=6)

        def loss_value():
            return loss_fn.forward(model.forward(x), y)

        model.zero_grad()
        loss_fn.forward(model.forward(x), y)
        model.backward(loss_fn.backward())
        flat_analytic = np.concatenate([p.grad.ravel() for p in model.parameters()])
        flat_numeric = np.concatenate(
            [_numerical_gradient(loss_value, p.value).ravel() for p in model.parameters()]
        )
        np.testing.assert_allclose(flat_analytic, flat_numeric, atol=1e-5, rtol=1e-3)


class TestFlatParameters:
    def test_roundtrip(self, rng):
        model = Sequential(Linear(4, 3, rng), ReLU(), Linear(3, 2, rng))
        flat = get_flat_parameters(model)
        assert flat.shape == (model.num_parameters(),)
        set_flat_parameters(model, flat * 2.0)
        np.testing.assert_allclose(get_flat_parameters(model), flat * 2.0)

    def test_wrong_length_raises(self, rng):
        model = Sequential(Linear(4, 3, rng))
        with pytest.raises(ValueError):
            set_flat_parameters(model, np.zeros(3))

    def test_set_does_not_rebind_arrays(self, rng):
        model = Sequential(Linear(2, 2, rng))
        refs = [p.value for p in model.parameters()]
        set_flat_parameters(model, np.zeros(model.num_parameters()))
        assert all(p.value is r for p, r in zip(model.parameters(), refs))
