"""Integration tests: the FAIR-BFL orchestrator end to end.

These exercise the whole stack (data -> local SGD -> RSA-signed uploads ->
miner exchange -> clustering/incentive -> fair aggregation -> PoW block ->
replicated ledgers) at a miniature scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.transaction import TransactionType
from repro.core.config import FairBFLConfig
from repro.core.experiment import (
    ExperimentSuite,
    build_federated_dataset,
    run_fairbfl,
    run_fedavg,
    run_fedprox,
    run_vanilla_blockchain,
)
from repro.core.fairbfl import FairBFLTrainer
from repro.core.flexibility import OperatingMode
from repro.fl.client import LocalTrainingConfig
from repro.incentive.contribution import ContributionConfig


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(
        num_clients=6,
        num_samples=400,
        num_rounds=2,
        participation_fraction=0.6,
        seed=11,
    )


@pytest.fixture(scope="module")
def dataset(suite):
    return suite.dataset()


def _small_config(suite, **overrides):
    return suite.fairbfl_config(**overrides)


class TestFairBFLTrainer:
    def test_run_appends_one_block_per_round(self, dataset, suite):
        trainer = FairBFLTrainer(dataset, _small_config(suite))
        trainer.run()
        # Genesis + one block per round (Assumption 2).
        assert trainer.chain.height == 1 + suite.num_rounds
        rounds_on_chain = [b.round_index for b in trainer.chain.blocks[1:]]
        assert rounds_on_chain == list(range(suite.num_rounds))

    def test_all_miner_replicas_identical(self, dataset, suite):
        trainer = FairBFLTrainer(dataset, _small_config(suite))
        trainer.run()
        tips = {m.chain.last_block.block_hash for m in trainer.miners}
        assert len(tips) == 1
        assert all(m.chain.is_valid() for m in trainer.miners)

    def test_blocks_contain_global_update_and_rewards(self, dataset, suite):
        trainer = FairBFLTrainer(dataset, _small_config(suite))
        trainer.run()
        block = trainer.chain.blocks[-1]
        types = {tx.tx_type for tx in block.transactions}
        assert TransactionType.GLOBAL_UPDATE in types
        assert TransactionType.REWARD in types
        assert block.global_update().shape == trainer.current_global_parameters().shape

    def test_proof_of_work_enforced_on_chain(self, dataset, suite):
        trainer = FairBFLTrainer(dataset, _small_config(suite))
        trainer.run()
        from repro.crypto.hashing import difficulty_to_target, meets_target

        for block in trainer.chain.blocks[1:]:
            target = difficulty_to_target(block.header.difficulty)
            assert meets_target(block.block_hash, target)

    def test_history_records_delays_and_accuracy(self, dataset, suite):
        _, history = run_fairbfl(dataset, config=_small_config(suite))
        assert len(history) == suite.num_rounds
        assert all(r.delay > 0 for r in history.rounds)
        assert all(0.0 <= r.accuracy <= 1.0 for r in history.rounds)
        assert all("delay_breakdown" in r.extras for r in history.rounds)
        assert np.all(np.diff(history.elapsed_times) > 0)

    def test_run_is_reproducible(self, dataset, suite):
        cfg = _small_config(suite)
        _, h1 = run_fairbfl(dataset, config=cfg)
        _, h2 = run_fairbfl(dataset, config=cfg)
        np.testing.assert_allclose(h1.accuracies, h2.accuracies)
        np.testing.assert_allclose(h1.delays, h2.delays)

    def test_rewards_recorded_and_credited(self, dataset, suite):
        trainer = FairBFLTrainer(dataset, _small_config(suite))
        trainer.run()
        ledger_total = trainer.reward_ledger.total_issued()
        assert ledger_total > 0.0
        # On-chain rewards match the ledger total.
        on_chain = sum(trainer.chain.total_rewards_by_client().values())
        assert on_chain == pytest.approx(ledger_total)
        # Clients received their credits.
        credited = sum(c.total_reward for c in trainer.clients.values())
        assert credited == pytest.approx(ledger_total)

    def test_global_test_accuracy_improves(self, dataset, suite):
        cfg = _small_config(
            suite,
            num_rounds=6,
            participation_fraction=1.0,
            local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        )
        trainer = FairBFLTrainer(dataset, cfg)
        initial = trainer.global_test_accuracy()
        trainer.run()
        assert trainer.global_test_accuracy() > initial

    def test_signature_verification_rejects_unregistered(self, dataset, suite):
        trainer = FairBFLTrainer(dataset, _small_config(suite))
        record = trainer.run_round(0)
        assert record.extras["rejected_uploads"] == 0

    def test_without_signatures_and_without_pow(self, dataset, suite):
        cfg = _small_config(suite, verify_signatures=False, use_real_pow=False)
        trainer, history = run_fairbfl(dataset, config=cfg)
        assert len(history) == suite.num_rounds
        assert trainer.chain.height == 1 + suite.num_rounds


class TestOperatingModes:
    def test_fl_only_mode_produces_no_new_blocks(self, dataset, suite):
        cfg = _small_config(suite, mode="fl_only")
        trainer, history = run_fairbfl(dataset, config=cfg)
        assert trainer.chain.height == 1  # genesis only
        assert all(r.extras["delay_breakdown"]["t_bl"] == 0.0 for r in history.rounds)
        assert all(r.accuracy > 0.0 for r in history.rounds)

    def test_fl_only_mode_still_learns(self, dataset, suite):
        cfg = _small_config(
            suite,
            mode="fl_only",
            num_rounds=5,
            participation_fraction=1.0,
            local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        )
        trainer, history = run_fairbfl(dataset, config=cfg)
        assert history.accuracies[-1] > history.accuracies[0]

    def test_chain_only_mode_mines_but_does_not_learn(self, dataset, suite):
        cfg = _small_config(suite, mode="chain_only")
        trainer, history = run_fairbfl(dataset, config=cfg)
        assert trainer.chain.height == 1 + suite.num_rounds
        assert all(r.extras["delay_breakdown"]["t_local"] == 0.0 for r in history.rounds)
        assert all(r.accuracy == 0.0 for r in history.rounds)

    def test_mode_delay_ordering(self, dataset, suite):
        """Flexibility claim: FL-only < full BFL in delay; chain-only has no learning delay."""
        num_rounds = 4
        _, h_bfl = run_fairbfl(dataset, config=_small_config(suite, num_rounds=num_rounds))
        _, h_fl = run_fairbfl(
            dataset, config=_small_config(suite, num_rounds=num_rounds, mode="fl_only")
        )
        assert h_fl.average_delay() < h_bfl.average_delay()


class TestDiscardStrategyAndAttacks:
    def test_discard_strategy_runs_and_logs(self, dataset, suite):
        cfg = _small_config(suite, strategy="discard", num_rounds=3)
        trainer, history = run_fairbfl(dataset, config=cfg)
        assert len(history) == 3
        # Discarded clients never appear among the same round's reward recipients.
        for record in history.rounds:
            assert not (set(record.discarded) & set(record.rewards.keys()))

    def test_attacks_designated_and_mostly_detected(self, suite):
        dataset = build_federated_dataset(
            num_clients=10, num_samples=600, scheme="dirichlet", seed=3, noise_std=0.3
        )
        cfg = FairBFLConfig(
            num_rounds=5,
            participation_fraction=1.0,
            local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
            model_name="logreg",
            strategy="discard",
            enable_attacks=True,
            contribution=ContributionConfig(eps=0.7),
            seed=5,
        )
        trainer, history = run_fairbfl(dataset, config=cfg)
        logs = trainer.detection_logs()
        assert len(logs) == 5
        assert all(1 <= len(log.attacker_ids) <= 3 for log in logs)
        # The clustering-based detector catches a majority of attackers overall.
        assert trainer.average_detection_rate() >= 0.5
        # Attackers recorded in history match the scheduler logs.
        for record, log in zip(history.rounds, logs):
            assert record.attackers == log.attacker_ids

    def test_attack_damages_accuracy_without_discard(self, suite):
        dataset = build_federated_dataset(
            num_clients=10, num_samples=600, scheme="dirichlet", seed=3, noise_std=0.3
        )
        base = dict(
            num_rounds=5,
            participation_fraction=1.0,
            local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
            model_name="logreg",
            seed=5,
        )
        _, clean = run_fairbfl(dataset, config=FairBFLConfig(**base))
        _, attacked = run_fairbfl(
            dataset,
            config=FairBFLConfig(
                **base, enable_attacks=True, attack_name="scaling", strategy="keep"
            ),
        )
        _, defended = run_fairbfl(
            dataset,
            config=FairBFLConfig(
                **base, enable_attacks=True, attack_name="scaling", strategy="discard"
            ),
        )
        # Undefended poisoning hurts; the discard strategy recovers most of the loss.
        assert attacked.final_accuracy() < clean.final_accuracy()
        assert defended.final_accuracy() >= attacked.final_accuracy()


class TestExperimentHelpers:
    def test_suite_dataset_memoised(self, suite):
        assert suite.dataset() is suite.dataset()
        assert suite.dataset(num_clients=4) is not suite.dataset()

    def test_suite_config_overrides(self, suite):
        cfg = suite.fairbfl_config(num_miners=5, strategy="discard")
        assert cfg.num_miners == 5
        assert cfg.strategy == "discard"
        assert cfg.num_rounds == suite.num_rounds

    def test_fedavg_and_fedprox_helpers(self, dataset, suite):
        _, ha = run_fedavg(dataset, config=suite.fedavg_config(), num_rounds=1)
        _, hp = run_fedprox(
            dataset, config=suite.fedprox_config(drop_percent=0.02), num_rounds=1
        )
        assert len(ha) == 1 and len(hp) == 1

    def test_vanilla_blockchain_helper(self, suite):
        _, hist = run_vanilla_blockchain(config=suite.blockchain_config(num_workers=10))
        assert len(hist) == suite.num_rounds

    def test_low_quality_fraction_corrupts_clients(self):
        clean = build_federated_dataset(num_clients=6, num_samples=400, seed=2)
        noisy = build_federated_dataset(
            num_clients=6, num_samples=400, seed=2, low_quality_fraction=0.5
        )
        differing = sum(
            int(not np.array_equal(a.labels, b.labels))
            for a, b in zip(clean.clients, noisy.clients)
        )
        assert differing == 3
