"""Unit tests for the gossip substrate's building blocks (`repro.net`).

Topologies, partition/churn schedules, flooding gossip, per-node chain
views, and the substrate's round protocol — each in isolation, with the
trainer-level convergence behaviour pinned separately in
``tests/test_reorg.py`` and the migration parity in
``tests/test_net_parity.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain, ForkChoice
from repro.blockchain.miner import Miner
from repro.blockchain.transaction import make_gradient_transaction
from repro.net import (
    TOPOLOGIES,
    ChurnEvent,
    GossipNetwork,
    GossipSubstrate,
    NetSchedule,
    Node,
    PartitionWindow,
    build_peer_sets,
    connected_components,
    is_connected,
    parse_churn,
    parse_partition,
)

pytestmark = pytest.mark.net

IDS = [f"miner-{i}" for i in range(6)]


def _chain_with_blocks(rounds=0, miner_id="m"):
    chain = Blockchain(enforce_pow=False)
    chain.add_genesis(Block.genesis())
    for r in range(rounds):
        chain.add_block(
            Block.create(
                index=r + 1,
                previous_hash=chain.last_block.block_hash,
                round_index=r,
                miner_id=miner_id,
                transactions=[],
            )
        )
    return chain


class TestTopology:
    def test_axis_values(self):
        assert TOPOLOGIES == ("global", "full", "ring", "random_k")

    @pytest.mark.parametrize("topology", ["global", "full"])
    def test_complete_graph(self, topology):
        peers = build_peer_sets(IDS, topology)
        for nid, ps in peers.items():
            assert set(ps) == set(IDS) - {nid}

    def test_ring_neighbours(self):
        peers = build_peer_sets(IDS, "ring")
        n = len(IDS)
        for i, nid in enumerate(IDS):
            expected = {IDS[(i - 1) % n], IDS[(i + 1) % n]}
            assert set(peers[nid]) == expected

    def test_ring_two_nodes(self):
        peers = build_peer_sets(IDS[:2], "ring")
        assert peers == {IDS[0]: (IDS[1],), IDS[1]: (IDS[0],)}

    def test_random_k_connected_and_deterministic(self):
        for seed in range(5):
            a = build_peer_sets(IDS, "random_k", peer_k=1, seed=seed)
            b = build_peer_sets(IDS, "random_k", peer_k=1, seed=seed)
            assert a == b
            assert is_connected(a)

    def test_random_k_seed_changes_graph(self):
        graphs = {
            tuple(sorted(build_peer_sets(IDS, "random_k", peer_k=2, seed=s).items()))
            for s in range(8)
        }
        assert len(graphs) > 1

    def test_random_k_undirected(self):
        peers = build_peer_sets(IDS, "random_k", peer_k=2, seed=3)
        for nid, ps in peers.items():
            for peer in ps:
                assert nid in peers[peer]

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_peer_sets(IDS, "mesh")
        with pytest.raises(ValueError, match="at least one node"):
            build_peer_sets([], "full")
        with pytest.raises(ValueError, match="unique"):
            build_peer_sets(["a", "a"], "full")
        with pytest.raises(ValueError, match="peer_k"):
            build_peer_sets(IDS, "random_k", peer_k=0)
        with pytest.raises(ValueError, match="peer_k"):
            build_peer_sets(IDS, "random_k", peer_k=len(IDS))

    def test_components_respect_induced_subgraph(self):
        peers = build_peer_sets(IDS[:4], "ring")
        # Remove one node from the induced set: the ring opens into a path.
        comps = connected_components(peers, IDS[:3])
        assert comps == ((IDS[0], IDS[1], IDS[2]),)
        # Removing an interior node splits the path.
        comps = connected_components(peers, [IDS[0], IDS[2]])
        assert comps == ((IDS[0],), (IDS[2],))

    def test_components_sorted_and_deterministic(self):
        peers = {"c": ("d",), "d": ("c",), "a": ("b",), "b": ("a",)}
        assert connected_components(peers, peers) == (("a", "b"), ("c", "d"))


class TestSchedule:
    def test_parse_partition_window_and_remainder(self):
        (window,) = parse_partition("2-4:0,1", 5)
        assert window == PartitionWindow(start=2, end=4, groups=((0, 1), (2, 3, 4)))

    def test_parse_partition_single_round_shorthand(self):
        (window,) = parse_partition("3:0|1", 3)
        assert window.start == window.end == 3
        assert window.groups == ((0,), (1,), (2,))

    def test_parse_partition_none(self):
        assert parse_partition("none", 4) == ()
        assert parse_partition("", 4) == ()

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("2-4", "expected"),
            ("x-4:0,1", "integers"),
            ("4-2:0,1", "start <= end"),
            ("1-2:0,9", "lie in"),
            ("1-2:0|0", "more than one group"),
            ("1-2:0,1,2,3", "at least two sides"),
            ("1-2:0;2-3:0", "overlap"),
            ("1-2:|", "empty group"),
        ],
    )
    def test_parse_partition_errors(self, spec, match):
        with pytest.raises(ValueError, match=match):
            parse_partition(spec, 4)

    def test_partition_needs_two_nodes(self):
        with pytest.raises(ValueError, match="at least two nodes"):
            parse_partition("0-1:0", 1)

    def test_parse_churn_events_sorted(self):
        events = parse_churn("3:+0;1:-0", 2)
        assert events == (
            ChurnEvent(round_index=1, node_index=0, online=False),
            ChurnEvent(round_index=3, node_index=0, online=True),
        )

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("1:0", "expected"),
            ("x:-0", "integers"),
            ("-1:-0", "round must be"),
            ("1:-9", "lie in"),
            ("0:-0;0:-1", "every node offline"),
        ],
    )
    def test_parse_churn_errors(self, spec, match):
        with pytest.raises(ValueError, match=match):
            parse_churn(spec, 2)

    def test_schedule_online_at(self):
        schedule = NetSchedule.parse(3, "none", "1:-0;3:+0")
        assert schedule.online_at(0) == (0, 1, 2)
        assert schedule.online_at(1) == (1, 2)
        assert schedule.online_at(2) == (1, 2)
        assert schedule.online_at(3) == (0, 1, 2)

    def test_schedule_groups_at(self):
        schedule = NetSchedule.parse(4, "1-2:0,1", "none")
        assert schedule.groups_at(0) == ((0, 1, 2, 3),)
        assert schedule.groups_at(1) == ((0, 1), (2, 3))
        assert schedule.partition_active(1)
        assert not schedule.partition_active(3)


class TestGossip:
    def _net(self, topology="full", n=6, **kwargs):
        peers = build_peer_sets(IDS[:n], topology)
        return GossipNetwork(peers, **kwargs)

    def test_flood_reaches_every_active_node(self):
        net = self._net("ring")
        outcome = net.propagate("miner-0", seed=1)
        assert outcome.delivered == frozenset(IDS)
        assert outcome.arrivals["miner-0"] == 0.0
        assert outcome.max_latency > 0.0
        assert net.floods == 1

    def test_flood_confined_to_active_set(self):
        net = self._net("full")
        active = {"miner-0", "miner-1", "miner-2"}
        outcome = net.propagate("miner-0", active=active, seed=1)
        assert outcome.delivered == frozenset(active)

    def test_flood_deterministic_for_seed(self):
        a = self._net("ring").propagate("miner-2", seed=77)
        b = self._net("ring").propagate("miner-2", seed=77)
        assert a.arrivals == b.arrivals
        assert (a.messages, a.duplicates) == (b.messages, b.duplicates)
        c = self._net("ring").propagate("miner-2", seed=78)
        assert c.arrivals != a.arrivals

    def test_fanout_limits_messages(self):
        full = self._net("full", base_latency=0.01, jitter=0.0)
        limited = self._net("full", base_latency=0.01, jitter=0.0, fanout=1)
        a = full.propagate("miner-0", seed=5)
        b = limited.propagate("miner-0", seed=5)
        assert b.messages < a.messages
        # Flooding with fanout=None delivers to the whole component.
        assert a.delivered == frozenset(IDS)

    def test_zero_latency_and_jitter(self):
        net = self._net("ring", base_latency=0.0, jitter=0.0)
        outcome = net.propagate("miner-0", seed=1)
        assert outcome.max_latency == 0.0

    def test_propagate_errors(self):
        net = self._net("full")
        with pytest.raises(ValueError, match="unknown gossip origin"):
            net.propagate("ghost")
        with pytest.raises(ValueError, match="not in the active set"):
            net.propagate("miner-0", active={"miner-1"})


class TestNode:
    def _node(self, rounds=0):
        return Node(node_id="n0", chain=_chain_with_blocks(rounds))

    def test_receive_appended_and_duplicate(self):
        node = self._node()
        block = Block.create(
            index=1,
            previous_hash=node.chain.last_block.block_hash,
            round_index=0,
            miner_id="m",
            transactions=[],
        )
        assert node.receive_block(block) == "appended"
        assert node.receive_block(block) == "duplicate"
        assert node.chain.height == 2

    def test_receive_orphan_then_parent_connects(self):
        node = self._node()
        donor = _chain_with_blocks(2)
        parent, child = donor.blocks[1], donor.blocks[2]
        assert node.receive_block(child) == "orphaned"
        assert child.block_hash in node.orphans
        assert node.chain.height == 1
        # The parent arrives: it appends and the orphan cascades on top.
        assert node.receive_block(parent) == "appended"
        assert node.chain.height == 3
        assert not node.orphans

    def test_receive_stale_competing_block(self):
        node = self._node(rounds=1)
        rival = Block.create(
            index=1,
            previous_hash=node.chain.blocks[0].block_hash,
            round_index=0,
            miner_id="rival",
            transactions=[],
        )
        assert node.receive_block(rival) == "stale"
        assert node.chain.height == 2

    def test_sync_with_adopts_longer_chain_and_counts_reorg(self):
        fork_choice = ForkChoice(salt=0)
        a = Node(node_id="a", chain=_chain_with_blocks(1, miner_id="a"))
        b = Node(node_id="b", chain=_chain_with_blocks(3, miner_id="b"))
        assert a.sync_with(b, fork_choice)
        assert a.head_hash == b.head_hash
        assert a.reorgs == 1  # it discarded its own round-0 block
        # Already in agreement: nothing changes.
        assert not a.sync_with(b, fork_choice)
        assert not b.sync_with(a, fork_choice)

    def test_sync_settles_mempool(self):
        fork_choice = ForkChoice(salt=0)
        tx = make_gradient_transaction("client-0", 0, np.ones(3))
        donor_chain = _chain_with_blocks(0, miner_id="b")
        donor_chain.add_block(
            Block.create(
                index=1,
                previous_hash=donor_chain.last_block.block_hash,
                round_index=0,
                miner_id="b",
                transactions=[tx],
            )
        )
        a = Node(node_id="a", chain=_chain_with_blocks(0))
        a.mempool.submit(tx)
        assert a.mempool.pending_count == 1
        assert a.sync_with(Node(node_id="b", chain=donor_chain), fork_choice)
        # The adopted chain already carries the tx: it left the mempool.
        assert a.mempool.pending_count == 0


class TestSubstrate:
    def _miners(self, n=4):
        miners = []
        for i in range(n):
            chain = Blockchain(enforce_pow=False)
            chain.add_genesis(Block.genesis())
            miners.append(Miner(miner_id=f"miner-{i}", chain=chain, verify_signatures=False))
        return miners

    def _substrate(self, n=4, **kwargs):
        kwargs.setdefault("topology", "full")
        kwargs.setdefault("jitter", 0.0)
        return GossipSubstrate(miners=self._miners(n), **kwargs)

    def test_global_topology_rejected(self):
        with pytest.raises(ValueError, match="global"):
            self._substrate(topology="global")

    def test_round_state_partition_and_churn(self):
        sub = self._substrate(partition="1-1:0,1", churn="1:-3")
        state = sub.round_state(0)
        assert state.components == (tuple(f"miner-{i}" for i in range(4)),)
        assert not state.partition_active
        state = sub.round_state(1)
        assert state.partition_active
        assert state.online == ("miner-0", "miner-1", "miner-2")
        assert state.components == (("miner-0", "miner-1"), ("miner-2",))
        assert not sub.nodes["miner-3"].online

    def test_begin_round_converges_components(self):
        sub = self._substrate()
        # Give miner-2 a longer private chain; begin_round pulls everyone onto it.
        sub.miners[2].chain.add_block(
            Block.create(
                index=1,
                previous_hash=sub.miners[2].chain.last_block.block_hash,
                round_index=0,
                miner_id="miner-2",
                transactions=[],
            )
        )
        assert sub.chain_views() == 2
        report = sub.begin_round(1, sim_time=0.0)
        assert sub.chain_views() == 1
        assert report.synced_nodes == 3
        assert report.heal_latency > 0.0
        assert sub.best_chain().height == 2

    def test_consensus_delay_resolution(self):
        sub = self._substrate(partition="1-1:0,1")
        # Round 0, no partition: the block resolves within the round.
        sub.begin_round(0, sim_time=0.0)
        sub.note_block(0, sim_time=10.0)
        resolved = sub.finish_round(0, sim_time=10.0, latency=0.5)
        assert resolved == {0: pytest.approx(0.5)}
        # Round 1, split: each side mines its own head -> no agreement yet.
        state = sub.round_state(1)
        for component in state.components:
            origin = component[0]
            for member in component:
                self._append(sub, member, round_index=1, miner_id=origin)
        sub.note_block(1, sim_time=20.0)
        assert sub.finish_round(1, sim_time=20.0) == {}
        # Round 2 heals: begin_round reorgs the losers and resolves round 1.
        report = sub.begin_round(2, sim_time=30.0)
        assert report.reorged
        assert set(report.resolved) == {1}
        assert report.resolved[1] >= 10.0
        assert [entry[0] for entry in sub.consensus_log] == [0, 1]

    def _append(self, sub, member, *, round_index, miner_id):
        chain = sub.nodes[member].chain
        chain.add_block(
            Block.create(
                index=chain.height,
                previous_hash=chain.last_block.block_hash,
                round_index=round_index,
                miner_id=miner_id,
                transactions=[],
            )
        )

    def test_absorb_uploads_drops_offline_receivers(self):
        sub = self._substrate(churn="0:-1")
        state = sub.round_state(0)
        txs = [
            make_gradient_transaction(f"client-{i}", 0, np.full(3, float(i)))
            for i in range(3)
        ]
        sub.miners[1].gradient_set["x"] = txs[1]
        mapping = {0: "miner-0", 1: "miner-1", 2: "miner-2"}
        lost = sub.absorb_uploads(txs, mapping, state)
        assert lost == 1
        assert sub.lost_uploads == 1
        # The offline miner's gradient set was voided; online mempools filled.
        assert not sub.miners[1].gradient_set
        assert sub.nodes["miner-0"].mempool.pending_count == 1
        assert sub.nodes["miner-2"].mempool.pending_count == 1
        assert sub.nodes["miner-1"].mempool.pending_count == 0

    def test_commit_block_settles_and_floods(self):
        sub = self._substrate()
        state = sub.round_state(0)
        tx = make_gradient_transaction("client-0", 0, np.ones(3))
        component = state.components[0]
        for member in component:
            sub.nodes[member].mempool.submit(tx)
            chain = sub.nodes[member].chain
            chain.add_block(
                Block.create(
                    index=chain.height,
                    previous_hash=chain.last_block.block_hash,
                    round_index=0,
                    miner_id="miner-0",
                    transactions=[tx],
                )
            )
        latency = sub.commit_block(0, "miner-0", component, sim_time=1.0)
        assert latency > 0.0
        assert sub.mempool_pending() == 0

    def test_broadcast_block_singleton_component(self):
        sub = self._substrate()
        assert sub.broadcast_block("miner-0", ("miner-0",)) == 0.0

    def test_substrate_runs_deterministically(self):
        def trace():
            sub = self._substrate(partition="1-1:0,1", jitter=0.25, seed=9)
            log = []
            for r in range(3):
                report = sub.begin_round(r, sim_time=float(r))
                state = report.state
                for component in state.components:
                    origin = component[0]
                    for member in component:
                        self._append(sub, member, round_index=r, miner_id=origin)
                    log.append(sub.commit_block(r, origin, component, sim_time=float(r)))
                log.append(dict(sub.finish_round(r, sim_time=float(r))))
            return log, sub.best_chain().last_block.block_hash

        assert trace() == trace()
