"""Tests for the cryptography substrate: primes, RSA, hashing, key store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import (
    MAX_TARGET,
    difficulty_to_target,
    hash_to_int,
    meets_target,
    sha256_hex,
)
from repro.crypto.keystore import KeyStore
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RSAKeyPair, rsa_decrypt, rsa_encrypt, rsa_sign, rsa_verify
from repro.utils.rng import new_rng


class TestPrimes:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 11, 13, 97, 101, 7919, 104729])
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", [0, 1, 4, 9, 15, 100, 561, 1105, 7917, 104730])
    def test_known_composites(self, c):
        assert not is_probable_prime(c)

    def test_carmichael_numbers_detected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        # 2^61 - 1 is a Mersenne prime.
        assert is_probable_prime((1 << 61) - 1)

    def test_generate_prime_bit_length(self):
        rng = new_rng(0, "prime")
        for bits in (16, 32, 64):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_generate_prime_rejects_small_bits(self):
        with pytest.raises(ValueError):
            generate_prime(4, new_rng(0, "prime"))

    def test_generate_prime_is_odd(self):
        p = generate_prime(32, new_rng(1, "prime"))
        assert p % 2 == 1


class TestRSA:
    @pytest.fixture(scope="class")
    def keypair(self):
        return RSAKeyPair.generate(new_rng(0, "rsa"), bits=128)

    def test_keypair_reproducible(self):
        a = RSAKeyPair.generate(new_rng(5, "rsa"), bits=64)
        b = RSAKeyPair.generate(new_rng(5, "rsa"), bits=64)
        assert a.modulus == b.modulus

    def test_sign_verify_roundtrip(self, keypair):
        msg = b"gradient upload for round 3"
        sig = rsa_sign(msg, keypair.private_key)
        assert rsa_verify(msg, sig, keypair.public_key)

    def test_verify_rejects_tampered_message(self, keypair):
        sig = rsa_sign(b"honest", keypair.private_key)
        assert not rsa_verify(b"forged", sig, keypair.public_key)

    def test_verify_rejects_tampered_signature(self, keypair):
        sig = rsa_sign(b"honest", keypair.private_key)
        assert not rsa_verify(b"honest", sig + 1, keypair.public_key)

    def test_verify_rejects_wrong_key(self, keypair):
        other = RSAKeyPair.generate(new_rng(1, "rsa"), bits=128)
        sig = rsa_sign(b"msg", keypair.private_key)
        assert not rsa_verify(b"msg", sig, other.public_key)

    def test_encrypt_decrypt_roundtrip(self, keypair):
        plaintext = 123456789
        cipher = rsa_encrypt(plaintext, keypair.public_key)
        assert cipher != plaintext
        assert rsa_decrypt(cipher, keypair.private_key) == plaintext

    def test_encrypt_rejects_oversized_plaintext(self, keypair):
        with pytest.raises(ValueError):
            rsa_encrypt(keypair.modulus, keypair.public_key)

    def test_decrypt_rejects_oversized_ciphertext(self, keypair):
        with pytest.raises(ValueError):
            rsa_decrypt(keypair.modulus + 1, keypair.private_key)

    def test_generate_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            RSAKeyPair.generate(new_rng(0, "rsa"), bits=16)

    def test_key_exponent_relationship(self, keypair):
        # e*d == 1 mod phi is not directly checkable without p, q, but the
        # sign/verify roundtrip over several messages exercises it.
        for i in range(5):
            msg = f"message-{i}".encode()
            assert rsa_verify(msg, rsa_sign(msg, keypair.private_key), keypair.public_key)


class TestHashing:
    def test_sha256_known_vector(self):
        assert (
            sha256_hex(b"abc")
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_str_and_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")

    def test_hash_to_int(self):
        assert hash_to_int("ff") == 255

    def test_difficulty_one_is_max_target(self):
        assert difficulty_to_target(1.0) == MAX_TARGET

    def test_target_shrinks_with_difficulty(self):
        assert difficulty_to_target(4.0) == MAX_TARGET // 4

    def test_difficulty_below_one_rejected(self):
        with pytest.raises(ValueError):
            difficulty_to_target(0.5)

    def test_meets_target(self):
        assert meets_target("00" * 32, 1)  # zero hash below any positive target... except target must be > 0
        assert meets_target("0" * 63 + "1", MAX_TARGET)
        assert not meets_target("f" * 64, MAX_TARGET // 2)

    def test_meets_target_invalid(self):
        with pytest.raises(ValueError):
            meets_target("00", 0)


class TestKeyStore:
    def test_register_and_verify(self):
        store = KeyStore(seed=0, key_bits=128)
        store.register("client-1")
        sig = store.sign("client-1", b"payload")
        assert store.verify("client-1", b"payload", sig)

    def test_register_idempotent(self):
        store = KeyStore(seed=0, key_bits=128)
        a = store.register("c")
        b = store.register("c")
        assert a is b
        assert len(store) == 1

    def test_unknown_entity_verify_false(self):
        store = KeyStore(seed=0, key_bits=128)
        assert not store.verify("ghost", b"x", 123)

    def test_unknown_entity_keys_raise(self):
        store = KeyStore(seed=0, key_bits=128)
        with pytest.raises(KeyError):
            store.public_key("ghost")
        with pytest.raises(KeyError):
            store.private_key("ghost")

    def test_cross_entity_signature_rejected(self):
        store = KeyStore(seed=0, key_bits=128)
        store.register("a")
        store.register("b")
        sig = store.sign("a", b"msg")
        assert not store.verify("b", b"msg", sig)

    def test_keys_reproducible_across_stores(self):
        s1 = KeyStore(seed=9, key_bits=128)
        s2 = KeyStore(seed=9, key_bits=128)
        assert s1.register("x").modulus == s2.register("x").modulus

    def test_different_entities_different_keys(self):
        store = KeyStore(seed=0, key_bits=128)
        assert store.register("a").modulus != store.register("b").modulus

    def test_batch_register(self):
        store = KeyStore(seed=0, key_bits=128)
        ids = KeyStore.batch_register(store, 4, prefix="node")
        assert ids == ["node-0", "node-1", "node-2", "node-3"]
        assert len(store) == 4

    def test_invalid_key_bits(self):
        with pytest.raises(ValueError):
            KeyStore(key_bits=16)

    def test_has(self):
        store = KeyStore(seed=0, key_bits=128)
        assert not store.has("a")
        store.register("a")
        assert store.has("a")


@given(st.binary(min_size=0, max_size=200))
@settings(max_examples=25, deadline=None)
def test_rsa_sign_verify_property(message):
    """Property: every signed message verifies, and a flipped bit does not."""
    keypair = RSAKeyPair.generate(new_rng(42, "rsa-prop"), bits=96)
    sig = rsa_sign(message, keypair.private_key)
    assert rsa_verify(message, sig, keypair.public_key)
    assert not rsa_verify(message + b"x", sig, keypair.public_key)
