"""Round-mode behaviour: sync / semi_sync / async on the event kernel.

Three layers of coverage:

* :class:`~repro.sim.rounds.EventRoundSimulator` semantics — who makes the
  upload window under each discipline, the straggler-deadline edge cases, and
  the delay ordering under straggler-heavy parameters;
* the FAIR-BFL trainer integration — stragglers dropped from the gradient
  matrix in ``semi_sync``, staleness-weighted blending in ``async``, and the
  cross-backend determinism of the per-round event-trace digests;
* the configuration surface — scenario fields, config validation, the CLI
  ``--round-mode`` flag, and the staleness aggregation helpers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import FairBFLConfig
from repro.core.experiment import build_federated_dataset, run_fairbfl
from repro.fl.aggregation import AggregationError, merge_stale_updates, staleness_weights
from repro.fl.client import LocalTrainingConfig
from repro.runner.scenario import ScenarioError, ScenarioSpec
from repro.sim.delay import DelayParameters
from repro.sim.rounds import EventRoundSimulator
from repro.utils.rng import new_rng

HEAVY_JITTER = DelayParameters(compute_jitter=0.8, upload_jitter=1.0)


class TestSimulatorRoundModes:
    def _sim(self, mode, **kwargs):
        return EventRoundSimulator(
            HEAVY_JITTER, new_rng(0, "modes", mode), round_mode=mode, **kwargs
        )

    def test_sync_round_has_no_stragglers(self):
        timing = self._sim("sync").fairbfl_round(
            client_ids=list(range(12)), num_miners=2, batches_per_epoch=5, epochs=2
        )
        assert set(timing.on_time_ids) == set(range(12))
        assert timing.late_ids == ()
        assert all(a.on_time for a in timing.arrivals)

    def test_semi_sync_deadline_splits_arrivals(self):
        timing = self._sim("semi_sync", straggler_deadline=4.0).fairbfl_round(
            client_ids=list(range(30)), num_miners=2, batches_per_epoch=5, epochs=2
        )
        assert set(timing.on_time_ids) | set(timing.late_ids) == set(range(30))
        assert timing.late_ids  # heavy jitter guarantees stragglers at this deadline
        for arrival in timing.arrivals:
            if arrival.on_time:
                assert arrival.arrival <= 4.0 + 1e-9
            else:
                assert arrival.arrival > 4.0 - 1e-9

    def test_semi_sync_keeps_at_least_one_client(self):
        # A deadline far below any possible arrival: the window stays open
        # until the first upload lands instead of aggregating nothing.
        timing = self._sim("semi_sync", straggler_deadline=1e-6).fairbfl_round(
            client_ids=list(range(8)), num_miners=2, batches_per_epoch=5, epochs=2
        )
        assert len(timing.on_time_ids) == 1
        earliest = min(timing.arrivals, key=lambda a: a.arrival)
        assert timing.on_time_ids == (earliest.client_id,)

    def test_async_quorum_count(self):
        timing = self._sim("async", async_quorum=0.5).fairbfl_round(
            client_ids=list(range(12)), num_miners=2, batches_per_epoch=5, epochs=2
        )
        assert len(timing.on_time_ids) == 6  # ceil(0.5 * 12)
        assert len(timing.late_ids) == 6
        # The on-time set is exactly the earliest arrivals.
        cutoff = max(a.arrival for a in timing.arrivals if a.on_time)
        assert all(a.arrival >= cutoff - 1e-9 for a in timing.arrivals if not a.on_time)

    def test_async_quorum_clamps_to_one(self):
        timing = self._sim("async", async_quorum=0.01).fairbfl_round(
            client_ids=list(range(5)), num_miners=2, batches_per_epoch=5, epochs=2
        )
        assert len(timing.on_time_ids) == 1

    def test_relaxed_modes_beat_sync_under_stragglers(self):
        def mean_total(mode, **kwargs) -> float:
            sim = self._sim(mode, **kwargs)
            return float(
                np.mean(
                    [
                        sim.fairbfl_round(
                            client_ids=list(range(20)),
                            num_miners=2,
                            batches_per_epoch=5,
                            epochs=2,
                        ).total
                        for _ in range(40)
                    ]
                )
            )

        sync = mean_total("sync")
        semi = mean_total("semi_sync", straggler_deadline=4.0)
        async_ = mean_total("async", async_quorum=0.5)
        assert semi < sync
        assert async_ < semi

    def test_breakdown_sums_to_total(self):
        for mode in ("sync", "semi_sync", "async"):
            timing = self._sim(mode).fairbfl_round(
                client_ids=list(range(10)), num_miners=3, batches_per_epoch=4, epochs=2
            )
            b = timing.breakdown
            assert timing.total == pytest.approx(b.t_local + b.t_up + b.t_ex + b.t_gl + b.t_bl)
            assert all(part >= 0 for part in (b.t_local, b.t_up, b.t_ex, b.t_gl, b.t_bl))

    def test_simulator_validation(self):
        with pytest.raises(ValueError, match="round_mode"):
            EventRoundSimulator(HEAVY_JITTER, new_rng(0, "x"), round_mode="bogus")
        with pytest.raises(ValueError, match="straggler_deadline"):
            EventRoundSimulator(HEAVY_JITTER, new_rng(0, "x"), straggler_deadline=0.0)
        with pytest.raises(ValueError, match="async_quorum"):
            EventRoundSimulator(HEAVY_JITTER, new_rng(0, "x"), async_quorum=1.5)


@pytest.fixture(scope="module")
def small_dataset():
    return build_federated_dataset(num_clients=10, num_samples=500, scheme="dirichlet", seed=0)


def _config(mode, **overrides) -> FairBFLConfig:
    defaults = dict(
        num_miners=2,
        num_rounds=3,
        participation_fraction=0.5,
        local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
        model_name="logreg",
        round_mode=mode,
        delay_params=DelayParameters(compute_jitter=0.8, upload_jitter=1.0),
        straggler_deadline=3.0,
        seed=0,
    )
    defaults.update(overrides)
    return FairBFLConfig(**defaults)


class TestTrainerRoundModes:
    def test_semi_sync_drops_stragglers_from_aggregation(self, small_dataset):
        trainer, history = run_fairbfl(small_dataset, config=_config("semi_sync"))
        trainer.close()
        stragglers = [r.extras["stragglers"] for r in history.rounds]
        assert any(stragglers), "heavy jitter at a 3s deadline must produce stragglers"
        for record in history.rounds:
            assert record.extras["round_mode"] == "semi_sync"
            # Stragglers stay selected participants but earn no reward.
            for cid in record.extras["stragglers"]:
                assert cid in record.participants
                assert cid not in record.rewards

    def test_async_applies_stale_updates_next_round(self, small_dataset):
        trainer, history = run_fairbfl(small_dataset, config=_config("async", async_quorum=0.5))
        trainer.close()
        stale = [r.extras["stale_applied"] for r in history.rounds]
        stragglers = [r.extras["stragglers"] for r in history.rounds]
        assert any(stragglers)
        # A round that follows a straggler round folds those updates back in.
        for prev, applied in zip(stragglers, stale[1:]):
            if prev:
                assert applied == len(prev)

    def test_stale_screening_rejects_misaligned_updates(self, small_dataset):
        """A forgery that deliberately straggles past the quorum is not blended.

        Late updates bypass Procedure II's signature check and Algorithm 2, so
        ``_apply_stale_updates`` screens them by alignment with the round's
        consensus direction: an update pointing against it (e.g. a sign-flip
        forgery) is rejected, an aligned one is folded in.
        """
        from repro.core.procedures import RoundContext

        trainer, _history = run_fairbfl(small_dataset, config=_config("async", num_rounds=1))
        previous = np.zeros(4)
        fresh = np.array([1.0, 1.0, 0.0, 0.0])  # consensus direction (1,1,0,0)
        aligned = previous + np.array([2.0, 1.5, 0.0, 0.0])
        forged = previous - np.array([3.0, 3.0, 0.0, 0.0])  # sign-flipped
        trainer._stale_buffer = [(aligned, 0), (forged, 0)]
        ctx = RoundContext(round_index=1, global_parameters=previous)
        ctx.new_global_parameters = fresh.copy()
        ctx.gradient_client_ids = [0, 1, 2]
        trainer._apply_stale_updates(ctx, 1)
        trainer.close()
        assert ctx.stale_applied == 1
        assert ctx.stale_rejected == 1
        # Only the aligned vector moved the global; the forgery left no trace:
        # result = (3 * fresh + 2**-0.5 * aligned) / (3 + 2**-0.5).
        w = 2.0**-0.5
        expected = (3.0 * fresh + w * aligned) / (3.0 + w)
        np.testing.assert_allclose(ctx.new_global_parameters, expected)

    def test_sync_round_mode_matches_default_history(self, small_dataset):
        _t1, h_default = run_fairbfl(small_dataset, config=_config("sync"))
        _t1.close()
        _t2, h_explicit = run_fairbfl(small_dataset, config=_config("sync"))
        _t2.close()
        np.testing.assert_allclose(h_default.delays, h_explicit.delays)
        np.testing.assert_allclose(h_default.accuracies, h_explicit.accuracies)

    def test_event_trace_identical_across_executor_backends(self, small_dataset):
        digests = {}
        delays = {}
        for backend in ("serial", "thread"):
            trainer, history = run_fairbfl(
                small_dataset, config=_config("semi_sync", executor_backend=backend)
            )
            trainer.close()
            digests[backend] = [r.extras["event_trace_digest"] for r in history.rounds]
            delays[backend] = list(history.delays)
        assert digests["serial"] == digests["thread"]
        assert delays["serial"] == delays["thread"]
        assert all(d is not None for d in digests["serial"])

    def test_round_records_expose_simulation_extras(self, small_dataset):
        trainer, history = run_fairbfl(small_dataset, config=_config("sync"))
        trainer.close()
        for record in history.rounds:
            assert record.extras["sim_events"] > 0
            assert isinstance(record.extras["event_trace_digest"], str)
            assert record.extras["delay_breakdown"]["total"] == pytest.approx(record.delay)


class TestRoundModeConfiguration:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="round_mode"):
            FairBFLConfig(round_mode="bogus")
        with pytest.raises(ValueError, match="straggler_deadline"):
            FairBFLConfig(round_mode="semi_sync", straggler_deadline=0.0)
        with pytest.raises(ValueError, match="async_quorum"):
            FairBFLConfig(round_mode="async", async_quorum=0.0)
        with pytest.raises(ValueError, match="staleness_decay"):
            FairBFLConfig(round_mode="async", staleness_decay=-0.1)

    def test_scenario_threads_round_mode_into_config(self):
        spec = ScenarioSpec(
            system="fairbfl",
            round_mode="semi_sync",
            straggler_deadline=2.5,
            async_quorum=0.25,
            staleness_decay=1.0,
        )
        config = spec.fairbfl_config()
        assert config.round_mode == "semi_sync"
        assert config.straggler_deadline == 2.5
        assert config.async_quorum == 0.25
        assert config.staleness_decay == 1.0

    def test_scenario_rejects_unknown_round_mode(self):
        with pytest.raises(ScenarioError, match="round_mode"):
            ScenarioSpec(system="fedavg", round_mode="bogus").validate()

    @pytest.mark.parametrize("system", ("fairbfl", "fedavg", "blockchain"))
    def test_scenario_bounds_checked_for_every_system(self, system):
        # A clean ScenarioError (not a deferred config crash) even when the
        # system would never consume the round-mode knobs.
        with pytest.raises(ScenarioError, match="straggler_deadline"):
            ScenarioSpec(system=system, straggler_deadline=-1.0).validate()
        with pytest.raises(ScenarioError, match="async_quorum"):
            ScenarioSpec(system=system, async_quorum=2.5).validate()
        with pytest.raises(ScenarioError, match="staleness_decay"):
            ScenarioSpec(system=system, staleness_decay=-0.5).validate()

    def test_sweep_accepts_round_mode_field_and_override(self, tmp_path, capsys):
        spec_file = tmp_path / "modes.json"
        spec_file.write_text(
            '{"system": "fairbfl", "num_clients": 6, "num_samples": 300, '
            '"num_rounds": 2, "round_mode": "semi_sync", "model_name": "logreg"}'
        )
        assert main(["sweep", "--scenario", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "modes" in out
        # The CLI flag overrides the file's round_mode for every scenario.
        assert main(["sweep", "--scenario", str(spec_file), "--round-mode", "async"]) == 0

    def test_run_cli_round_mode_flag(self, capsys):
        code = main(
            [
                "run",
                "fairbfl",
                "--clients",
                "6",
                "--samples",
                "300",
                "--rounds",
                "2",
                "--round-mode",
                "async",
            ]
        )
        assert code == 0
        assert "summary" in capsys.readouterr().out


class TestStalenessAggregation:
    def test_staleness_weights_formula(self):
        w = staleness_weights(np.array([0.0, 1.0, 3.0]), decay=0.5)
        np.testing.assert_allclose(w, [1.0, 2.0**-0.5, 4.0**-0.5])

    def test_zero_decay_treats_stale_as_fresh(self):
        np.testing.assert_allclose(staleness_weights(np.array([5.0, 9.0]), decay=0.0), [1.0, 1.0])

    def test_merge_stale_updates_math(self):
        fresh = np.array([1.0, 1.0])
        stale = np.array([[4.0, 4.0]])
        merged = merge_stale_updates(fresh, 2, stale, np.array([1.0]), decay=1.0)
        # (2 * [1,1] + 0.5 * [4,4]) / 2.5 == [1.6, 1.6]
        np.testing.assert_allclose(merged, [1.6, 1.6])

    def test_merge_with_no_stale_rows_is_identity(self):
        fresh = np.array([2.0, 3.0])
        merged = merge_stale_updates(fresh, 4, np.zeros((0, 2)), np.zeros(0))
        np.testing.assert_allclose(merged, fresh)

    def test_validation_errors(self):
        with pytest.raises(AggregationError):
            staleness_weights(np.array([-1.0]))
        with pytest.raises(AggregationError):
            staleness_weights(np.array([1.0]), decay=-1.0)
        with pytest.raises(AggregationError):
            merge_stale_updates(np.ones(2), 0, np.ones((1, 2)), np.array([1.0]))
        with pytest.raises(AggregationError):
            merge_stale_updates(np.ones(2), 1, np.ones((2, 2)), np.array([1.0]))
