"""Tests for the FL substrate: client, aggregation, selection, server, FedAvg, FedProx, history."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.aggregation import (
    contribution_weights,
    fair_aggregate,
    simple_average,
    weighted_average,
)
from repro.fl.client import ClientUpdate, FLClient, LocalTrainingConfig
from repro.fl.fedavg import FedAvgConfig, FedAvgTrainer
from repro.fl.fedprox import FedProxConfig, FedProxTrainer
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.selection import ContributionBasedSelector, RandomSelector
from repro.fl.server import CentralServer
from repro.nn.models import LogisticRegressionModel
from repro.nn.parameters import get_flat_parameters
from repro.utils.rng import new_rng


class TestLocalTrainingConfig:
    def test_defaults_match_paper(self):
        cfg = LocalTrainingConfig()
        assert cfg.epochs == 5
        assert cfg.batch_size == 10
        assert cfg.learning_rate == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
            {"proximal_mu": -1.0},
            {"weight_decay": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LocalTrainingConfig(**kwargs)


class TestFLClient:
    @pytest.fixture()
    def client(self, tiny_federated):
        shard = tiny_federated.client(0)
        factory = lambda: LogisticRegressionModel(784, 10, new_rng(0, "client-model"))
        return FLClient(shard, factory, new_rng(0, "client-rng"))

    def test_local_update_returns_new_parameters(self, client):
        global_params = get_flat_parameters(client.model)
        update = client.local_update(global_params, LocalTrainingConfig(epochs=1, learning_rate=0.05))
        assert update.parameters.shape == global_params.shape
        assert not np.allclose(update.parameters, global_params)
        assert update.client_id == 0
        assert update.num_samples == client.num_samples
        assert 0.0 <= update.val_accuracy <= 1.0
        assert update.train_loss > 0.0

    def test_local_update_reduces_loss(self, client):
        global_params = get_flat_parameters(client.model)
        cfg1 = LocalTrainingConfig(epochs=1, learning_rate=0.05)
        cfg5 = LocalTrainingConfig(epochs=5, learning_rate=0.05)
        loss_short = client.local_update(global_params, cfg1).train_loss
        loss_long = client.local_update(global_params, cfg5).train_loss
        assert loss_long < loss_short

    def test_proximal_term_keeps_update_closer(self, client):
        global_params = get_flat_parameters(client.model)
        plain = client.local_update(
            global_params, LocalTrainingConfig(epochs=3, learning_rate=0.1)
        )
        prox = client.local_update(
            global_params, LocalTrainingConfig(epochs=3, learning_rate=0.1, proximal_mu=1.0)
        )
        dist_plain = np.linalg.norm(plain.parameters - global_params)
        dist_prox = np.linalg.norm(prox.parameters - global_params)
        assert dist_prox < dist_plain

    def test_rounds_participated_counter(self, client):
        global_params = get_flat_parameters(client.model)
        client.local_update(global_params, LocalTrainingConfig(epochs=1))
        client.local_update(global_params, LocalTrainingConfig(epochs=1))
        assert client.rounds_participated == 2

    def test_grant_reward_accumulates(self, client):
        client.grant_reward(0.5)
        client.grant_reward(0.25)
        assert client.total_reward == pytest.approx(0.75)

    def test_evaluate_bounds(self, client):
        acc = client.evaluate(get_flat_parameters(client.model))
        assert 0.0 <= acc <= 1.0

    def test_copy_with_parameters(self):
        upd = ClientUpdate(
            client_id=3, parameters=np.zeros(4), num_samples=10, train_loss=0.5, val_accuracy=0.7
        )
        clone = upd.copy_with_parameters(np.ones(4))
        assert clone.client_id == 3
        np.testing.assert_array_equal(clone.parameters, np.ones(4))
        np.testing.assert_array_equal(upd.parameters, np.zeros(4))


class TestAggregation:
    def test_simple_average(self):
        m = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(simple_average(m), [2.0, 3.0])

    def test_simple_average_rejects_empty(self):
        with pytest.raises(ValueError):
            simple_average(np.zeros((0, 3)))

    def test_weighted_average(self):
        m = np.array([[0.0, 0.0], [10.0, 10.0]])
        np.testing.assert_allclose(weighted_average(m, np.array([1.0, 3.0])), [7.5, 7.5])

    def test_weighted_average_normalises(self):
        m = np.array([[2.0], [4.0]])
        np.testing.assert_allclose(
            weighted_average(m, np.array([2.0, 2.0])), weighted_average(m, np.array([0.5, 0.5]))
        )

    def test_weighted_average_validation(self):
        m = np.ones((2, 2))
        with pytest.raises(ValueError):
            weighted_average(m, np.array([1.0]))
        with pytest.raises(ValueError):
            weighted_average(m, np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            weighted_average(m, np.array([0.0, 0.0]))

    def test_contribution_weights_normalised(self):
        w = contribution_weights(np.array([1.0, 3.0]))
        np.testing.assert_allclose(w, [0.25, 0.75])

    def test_contribution_weights_zero_fallback_uniform(self):
        np.testing.assert_allclose(contribution_weights(np.zeros(4)), np.full(4, 0.25))

    def test_contribution_weights_rejects_negative(self):
        with pytest.raises(ValueError):
            contribution_weights(np.array([-1.0, 1.0]))

    def test_fair_aggregate_matches_manual(self):
        m = np.array([[1.0, 0.0], [0.0, 1.0]])
        thetas = np.array([0.2, 0.8])
        expected = 0.2 * m[0] + 0.8 * m[1]
        np.testing.assert_allclose(fair_aggregate(m, thetas), expected)

    def test_fair_aggregate_equal_thetas_is_simple_average(self):
        m = np.random.default_rng(0).normal(size=(5, 7))
        np.testing.assert_allclose(
            fair_aggregate(m, np.full(5, 0.3)), simple_average(m), atol=1e-12
        )


class TestSelection:
    def test_random_selector_count(self):
        sel = RandomSelector(0.1)
        assert sel.num_selected(100) == 10
        assert sel.num_selected(5) == 1

    def test_random_selector_bounds(self):
        sel = RandomSelector(0.3)
        chosen = sel.select(20, new_rng(0, "sel"))
        assert len(chosen) == 6
        assert len(set(chosen.tolist())) == 6
        assert chosen.min() >= 0 and chosen.max() < 20

    def test_random_selector_validation(self):
        with pytest.raises(ValueError):
            RandomSelector(0.0)
        with pytest.raises(ValueError):
            RandomSelector(1.5)
        with pytest.raises(ValueError):
            RandomSelector(0.5).num_selected(0)

    def test_contribution_selector_excludes_once(self):
        sel = ContributionBasedSelector(1.0)
        sel.exclude_for_next_round([0, 1, 2])
        assert sel.currently_excluded == {0, 1, 2}
        first = sel.select(10, new_rng(0, "sel"))
        assert not ({0, 1, 2} & set(first.tolist()))
        # Exclusion lasts exactly one round.
        second = sel.select(10, new_rng(1, "sel"))
        assert len(second) == 10

    def test_contribution_selector_shrinks_population(self):
        sel = ContributionBasedSelector(1.0)
        sel.exclude_for_next_round([4, 5, 6])
        chosen = sel.select(10, new_rng(2, "sel"))
        assert len(chosen) == 7

    def test_contribution_selector_all_excluded_falls_back(self):
        sel = ContributionBasedSelector(1.0)
        sel.exclude_for_next_round(list(range(5)))
        chosen = sel.select(5, new_rng(3, "sel"))
        assert len(chosen) >= 1


class TestCentralServer:
    def _factory(self):
        return lambda: LogisticRegressionModel(784, 10, new_rng(0, "server-model"))

    def test_aggregate_simple(self):
        server = CentralServer(self._factory(), aggregation="simple")
        dim = server.global_parameters.shape[0]
        updates = [
            ClientUpdate(0, np.zeros(dim), 10, 0.0, 0.0),
            ClientUpdate(1, np.ones(dim), 30, 0.0, 0.0),
        ]
        new = server.aggregate(updates)
        np.testing.assert_allclose(new, np.full(dim, 0.5))

    def test_aggregate_sample_weighted(self):
        server = CentralServer(self._factory(), aggregation="samples")
        dim = server.global_parameters.shape[0]
        updates = [
            ClientUpdate(0, np.zeros(dim), 10, 0.0, 0.0),
            ClientUpdate(1, np.ones(dim), 30, 0.0, 0.0),
        ]
        new = server.aggregate(updates)
        np.testing.assert_allclose(new, np.full(dim, 0.75))

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            CentralServer(self._factory()).aggregate([])

    def test_invalid_aggregation_name(self):
        with pytest.raises(ValueError):
            CentralServer(self._factory(), aggregation="median")

    def test_evaluate_returns_probability(self, tiny_federated):
        server = CentralServer(self._factory())
        acc = server.evaluate(tiny_federated.test_images, tiny_federated.test_labels)
        assert 0.0 <= acc <= 1.0


class TestHistory:
    def _record(self, i, delay=1.0, acc=0.5):
        return RoundRecord(round_index=i, delay=delay, accuracy=acc, elapsed_time=(i + 1) * delay)

    def test_append_and_series(self):
        hist = TrainingHistory(label="x")
        for i in range(3):
            hist.append(self._record(i, delay=2.0, acc=0.1 * i))
        assert len(hist) == 3
        np.testing.assert_allclose(hist.delays, [2.0, 2.0, 2.0])
        np.testing.assert_allclose(hist.accuracies, [0.0, 0.1, 0.2])
        assert hist.average_delay() == pytest.approx(2.0)
        assert hist.average_accuracy() == pytest.approx(0.1)

    def test_append_requires_increasing_rounds(self):
        hist = TrainingHistory()
        hist.append(self._record(0))
        with pytest.raises(ValueError):
            hist.append(self._record(0))

    def test_running_average_delay(self):
        hist = TrainingHistory()
        hist.append(self._record(0, delay=2.0))
        hist.append(self._record(1, delay=4.0))
        np.testing.assert_allclose(hist.running_average_delay(), [2.0, 3.0])

    def test_final_accuracy_window(self):
        hist = TrainingHistory()
        for i, acc in enumerate([0.1, 0.2, 0.9, 0.9, 0.9]):
            hist.append(self._record(i, acc=acc))
        assert hist.final_accuracy(window=3) == pytest.approx(0.9)

    def test_time_to_accuracy(self):
        hist = TrainingHistory()
        for i, acc in enumerate([0.1, 0.5, 0.8]):
            hist.append(self._record(i, delay=1.0, acc=acc))
        assert hist.time_to_accuracy(0.5) == pytest.approx(2.0)
        assert hist.time_to_accuracy(0.99) is None

    def test_total_rewards(self):
        hist = TrainingHistory()
        r = self._record(0)
        r.rewards = {1: 0.5, 2: 0.25}
        hist.append(r)
        r2 = self._record(1)
        r2.rewards = {1: 0.5}
        hist.append(r2)
        assert hist.total_rewards() == {1: 1.0, 2: 0.25}

    def test_empty_history_defaults(self):
        hist = TrainingHistory()
        assert hist.average_delay() == 0.0
        assert hist.average_accuracy() == 0.0
        assert hist.final_accuracy() == 0.0
        assert hist.running_average_delay().shape == (0,)


class TestFedAvgTrainer:
    @pytest.fixture(scope="class")
    def small_config(self):
        return FedAvgConfig(
            num_rounds=2,
            participation_fraction=0.5,
            local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
            model_name="logreg",
            seed=3,
        )

    def test_run_produces_history(self, tiny_federated, small_config):
        trainer = FedAvgTrainer(tiny_federated, small_config)
        history = trainer.run()
        assert len(history) == 2
        assert history.label == "fedavg"
        assert all(r.delay > 0 for r in history.rounds)
        assert all(0.0 <= r.accuracy <= 1.0 for r in history.rounds)
        assert all(len(r.participants) == 3 for r in history.rounds)

    def test_elapsed_time_monotonic(self, tiny_federated, small_config):
        history = FedAvgTrainer(tiny_federated, small_config).run()
        times = history.elapsed_times
        assert np.all(np.diff(times) > 0)

    def test_accuracy_improves_over_training(self, tiny_federated):
        cfg = FedAvgConfig(
            num_rounds=6,
            participation_fraction=1.0,
            local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
            model_name="logreg",
            seed=1,
        )
        history = FedAvgTrainer(tiny_federated, cfg).run()
        assert history.accuracies[-1] > history.accuracies[0]
        assert history.final_accuracy(window=2) > 0.5

    def test_run_reproducible(self, tiny_federated, small_config):
        h1 = FedAvgTrainer(tiny_federated, small_config).run()
        h2 = FedAvgTrainer(tiny_federated, small_config).run()
        np.testing.assert_allclose(h1.accuracies, h2.accuracies)
        np.testing.assert_allclose(h1.delays, h2.delays)

    def test_test_accuracy(self, tiny_federated, small_config):
        trainer = FedAvgTrainer(tiny_federated, small_config)
        trainer.run()
        assert 0.0 <= trainer.test_accuracy() <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FedAvgConfig(num_rounds=0)
        with pytest.raises(ValueError):
            FedAvgConfig(participation_fraction=1.5)


class TestFedProxTrainer:
    def test_requires_fedprox_config(self, tiny_federated):
        with pytest.raises(TypeError):
            FedProxTrainer(tiny_federated, FedAvgConfig(num_rounds=1))

    def test_from_fedavg_clones_fields(self):
        base = FedAvgConfig(num_rounds=7, participation_fraction=0.2, seed=5)
        prox = FedProxConfig.from_fedavg(base, proximal_mu=0.1, drop_percent=0.3)
        assert prox.num_rounds == 7
        assert prox.participation_fraction == 0.2
        assert prox.seed == 5
        assert prox.proximal_mu == 0.1
        assert prox.drop_percent == 0.3

    def test_run_with_dropping(self, tiny_federated):
        cfg = FedProxConfig(
            num_rounds=2,
            participation_fraction=1.0,
            local=LocalTrainingConfig(epochs=1, learning_rate=0.05),
            model_name="logreg",
            proximal_mu=0.01,
            drop_percent=0.5,
            seed=0,
        )
        history = FedProxTrainer(tiny_federated, cfg).run()
        assert len(history) == 2
        assert all(0.0 <= r.accuracy <= 1.0 for r in history.rounds)

    def test_validation(self):
        with pytest.raises(ValueError):
            FedProxConfig(proximal_mu=-1.0)
        with pytest.raises(ValueError):
            FedProxConfig(drop_percent=1.5)


@given(
    st.integers(2, 6),
    st.integers(3, 10),
    st.lists(st.floats(0.01, 10.0), min_size=2, max_size=6),
)
@settings(max_examples=30, deadline=None)
def test_weighted_average_convexity_property(rows, cols, raw_weights):
    """Property: any weighted average lies inside the per-coordinate envelope of the updates."""
    rows = min(rows, len(raw_weights))
    weights = np.array(raw_weights[:rows])
    m = np.random.default_rng(rows * 100 + cols).normal(size=(rows, cols))
    agg = weighted_average(m, weights)
    assert np.all(agg <= m.max(axis=0) + 1e-9)
    assert np.all(agg >= m.min(axis=0) - 1e-9)
