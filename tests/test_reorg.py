"""Acceptance test: partition -> divergent forks -> heal -> convergence.

Two miner groups, split by a timed partition window, each mine their own
fork of the ledger with their own reward history.  When the partition heals
the fork-choice rule (longest chain, seeded hash tie-break) must bring every
node onto one head, reward accounting must be rebuilt from the adopted
chain, and the whole trajectory must be bit-deterministic across repeats.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import FairBFLConfig
from repro.core.experiment import build_federated_dataset
from repro.core.fairbfl import FairBFLTrainer
from repro.store.records import history_to_payload

pytestmark = pytest.mark.net

NUM_ROUNDS = 4
PARTITION = "1-2:0,1"  # rounds 1-2: miners {0,1} vs {2,3}


@pytest.fixture(scope="module")
def dataset():
    return build_federated_dataset(
        num_clients=6, num_samples=300, scheme="dirichlet", seed=7, noise_std=0.3
    )


def _config(**overrides):
    params = dict(
        num_rounds=NUM_ROUNDS,
        participation_fraction=0.6,
        num_miners=4,
        topology="full",
        partition=PARTITION,
        seed=5,
    )
    params.update(overrides)
    return FairBFLConfig(**params)


def _run(dataset, **overrides):
    trainer = FairBFLTrainer(dataset, _config(**overrides))
    history = trainer.run()
    return trainer, history


@pytest.fixture(scope="module")
def healed(dataset):
    return _run(dataset)


class TestPartitionHeal:
    def test_partition_produces_divergent_views(self, healed):
        _trainer, history = healed
        net = [record.extras["net"] for record in history.rounds]
        assert not net[0]["partition_active"]
        for r in (1, 2):
            assert net[r]["partition_active"]
            assert len(net[r]["components"]) == 2
            assert net[r]["chain_views"] == 2  # each side holds its own head
            assert net[r]["consensus_resolved"] == {}  # no agreement mid-split

    def test_heal_reorgs_and_converges(self, healed):
        trainer, history = healed
        net = [record.extras["net"] for record in history.rounds]
        heal = net[3]
        assert heal["reorged"]  # the losing fork rolled back
        assert heal["total_reorgs"] >= 1
        assert heal["chain_views"] == 1
        # Every node ends on the same, fully valid head.
        assert trainer.net.chain_views() == 1
        tips = {node.head_hash for node in trainer.net.nodes.values()}
        assert len(tips) == 1
        assert trainer.chain.is_valid()

    def test_canonical_chain_has_one_block_per_round(self, healed):
        trainer, _history = healed
        chain = trainer.chain
        assert chain.height == 1 + NUM_ROUNDS
        assert [b.round_index for b in chain.blocks[1:]] == list(range(NUM_ROUNDS))

    def test_consensus_delay_stretches_across_the_partition(self, healed):
        _trainer, history = healed
        net = [record.extras["net"] for record in history.rounds]
        # Round 0 resolves within its own round, at gossip-hop latency.
        assert 0 in {int(k) for k in net[0]["consensus_resolved"]}
        baseline = float(net[0]["consensus_resolved"][0])
        # Rounds 1-2 only resolve at the heal, whole rounds later.
        resolved_at_heal = {int(k): float(v) for k, v in net[3]["consensus_resolved"].items()}
        assert {1, 2}.issubset(resolved_at_heal)
        assert resolved_at_heal[1] > resolved_at_heal[2] > baseline

    def test_reward_accounting_survives_the_reorg(self, healed):
        trainer, _history = healed
        on_chain: dict[int, float] = {}
        for label, amount in trainer.chain.total_rewards_by_client().items():
            cid = int(str(label).rpartition("-")[2])
            on_chain[cid] = on_chain.get(cid, 0.0) + float(amount)
        # Client balances and the ledger totals both equal the canonical
        # chain's record — the discarded fork's rewards are void.
        for cid, client in trainer.clients.items():
            assert client.total_reward == pytest.approx(on_chain.get(cid, 0.0))
        for cid, total in trainer.reward_ledger.totals.items():
            assert total == pytest.approx(on_chain.get(cid, 0.0))
        assert sum(on_chain.values()) > 0.0

    def test_deterministic_across_repeats(self, dataset, healed):
        _trainer, first_history = healed
        reference = json.dumps(history_to_payload(first_history), sort_keys=True)
        for _ in range(2):  # three runs total, counting the fixture's
            trainer, history = _run(dataset)
            assert json.dumps(history_to_payload(history), sort_keys=True) == reference
            assert trainer.chain.last_block.block_hash == _trainer.chain.last_block.block_hash


class TestChurnTrace:
    def test_departed_miner_rejoins_and_catches_up(self, dataset):
        trainer, history = _run(dataset, partition="none", churn="1:-3;3:+3")
        net = [record.extras["net"] for record in history.rounds]
        assert "miner-3" not in net[1]["online"]
        assert "miner-3" in net[3]["online"]
        # The rejoiner adopted the canonical chain at round 3's begin.
        assert trainer.net.chain_views() == 1
        assert trainer.net.nodes["miner-3"].chain.height == 1 + NUM_ROUNDS
        # Uploads addressed to the absent miner were lost, not silently kept.
        assert sum(r["lost_uploads"] for r in net) >= 0
        assert trainer.chain.is_valid()
