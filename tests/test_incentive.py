"""Tests for the incentive mechanism: clustering, distances, Algorithm 2, rewards, strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.aggregation import simple_average
from repro.incentive.clustering import DBSCAN, KMeans, NOISE_LABEL, make_clusterer
from repro.incentive.contribution import (
    ContributionConfig,
    identify_contributions,
)
from repro.incentive.distance import cosine_distance_to_reference
from repro.incentive.rewards import RewardLedger, apportion_rewards
from repro.incentive.strategies import DiscardStrategy, KeepAllStrategy, make_strategy
from repro.utils.rng import new_rng


def _two_cluster_data(n_per=6, dim=12, separation=5.0, seed=0):
    """Two well-separated direction clusters plus the combined matrix."""
    rng = new_rng(seed, "clusters")
    base_a = np.ones(dim)
    base_b = np.concatenate([np.ones(dim // 2), -np.ones(dim - dim // 2)]) * separation
    a = base_a + 0.05 * rng.normal(size=(n_per, dim))
    b = base_b + 0.05 * rng.normal(size=(n_per, dim))
    return a, b, np.vstack([a, b])


class TestCosineDistanceToReference:
    def test_identical_rows_zero_distance(self):
        m = np.tile(np.array([1.0, 2.0, 3.0]), (4, 1))
        d = cosine_distance_to_reference(m, np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_opposite_row_distance_two(self):
        ref = np.array([1.0, 0.0])
        m = np.array([[1.0, 0.0], [-1.0, 0.0]])
        d = cosine_distance_to_reference(m, ref)
        np.testing.assert_allclose(d, [0.0, 2.0], atol=1e-12)

    def test_zero_reference_gives_ones(self):
        d = cosine_distance_to_reference(np.ones((3, 4)), np.zeros(4))
        np.testing.assert_allclose(d, 1.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            cosine_distance_to_reference(np.ones((2, 3)), np.ones(4))


class TestDBSCAN:
    def test_separates_two_clusters(self):
        a, b, m = _two_cluster_data()
        result = DBSCAN(eps=0.3, min_samples=3, metric="cosine").fit(m)
        assert result.num_clusters == 2
        labels_a = set(result.labels[: len(a)].tolist())
        labels_b = set(result.labels[len(a) :].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_marks_isolated_point_as_noise(self):
        a, _, _ = _two_cluster_data()
        outlier = -10.0 * np.ones(a.shape[1])
        m = np.vstack([a, outlier])
        result = DBSCAN(eps=0.3, min_samples=3, metric="cosine").fit(m)
        assert result.labels[-1] == NOISE_LABEL

    def test_same_cluster_helper(self):
        a, _, m = _two_cluster_data()
        result = DBSCAN(eps=0.3, min_samples=3).fit(m)
        assert result.same_cluster(0, 1)
        assert not result.same_cluster(0, len(a))

    def test_members(self):
        a, b, m = _two_cluster_data(n_per=4)
        result = DBSCAN(eps=0.3, min_samples=2).fit(m)
        label0 = result.cluster_of(0)
        assert set(result.members(label0).tolist()) == set(range(4))

    def test_min_samples_one_every_point_core(self):
        m = np.eye(4)
        result = DBSCAN(eps=0.1, min_samples=1, metric="euclidean").fit(m)
        assert result.num_clusters == 4

    def test_euclidean_metric(self):
        m = np.vstack([np.zeros((3, 2)), 10.0 + np.zeros((3, 2))])
        result = DBSCAN(eps=1.0, min_samples=2, metric="euclidean").fit(m)
        assert result.num_clusters == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0)
        with pytest.raises(ValueError):
            DBSCAN(min_samples=0)
        with pytest.raises(ValueError):
            DBSCAN(metric="hamming").fit(np.ones((2, 2)))
        with pytest.raises(ValueError):
            DBSCAN().fit(np.ones(3))


class TestKMeans:
    def test_separates_two_clusters(self):
        a, b, m = _two_cluster_data()
        result = KMeans(num_clusters=2, seed=0).fit(m)
        assert result.num_clusters == 2
        assert len(set(result.labels[: len(a)].tolist())) == 1
        assert len(set(result.labels[len(a) :].tolist())) == 1

    def test_single_cluster(self):
        m = np.random.default_rng(0).normal(size=(5, 3))
        result = KMeans(num_clusters=1).fit(m)
        assert np.all(result.labels == 0)

    def test_more_clusters_than_points(self):
        m = np.random.default_rng(0).normal(size=(3, 2))
        result = KMeans(num_clusters=10).fit(m)
        assert result.labels.shape == (3,)

    def test_deterministic_given_seed(self):
        _, _, m = _two_cluster_data()
        a = KMeans(num_clusters=2, seed=7).fit(m).labels
        b = KMeans(num_clusters=2, seed=7).fit(m).labels
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(num_clusters=0)
        with pytest.raises(ValueError):
            KMeans(metric="hamming")
        with pytest.raises(ValueError):
            KMeans(max_iterations=0)


class TestMakeClusterer:
    def test_dispatch(self):
        assert isinstance(make_clusterer("dbscan"), DBSCAN)
        assert isinstance(make_clusterer("kmeans"), KMeans)
        with pytest.raises(ValueError):
            make_clusterer("agglomerative")


class TestRewards:
    def test_apportion_proportional_to_theta(self):
        entries = apportion_rewards([1, 2], np.array([0.25, 0.75]), base_reward=2.0)
        assert entries[0].reward == pytest.approx(0.5)
        assert entries[1].reward == pytest.approx(1.5)

    def test_apportion_total_equals_base(self):
        entries = apportion_rewards([0, 1, 2], np.array([0.3, 0.5, 0.2]), base_reward=5.0)
        assert sum(e.reward for e in entries) == pytest.approx(5.0)

    def test_apportion_zero_thetas_uniform(self):
        entries = apportion_rewards([0, 1], np.zeros(2), base_reward=1.0)
        assert entries[0].reward == pytest.approx(0.5)

    def test_apportion_empty(self):
        assert apportion_rewards([], np.zeros(0)) == []

    def test_apportion_validation(self):
        with pytest.raises(ValueError):
            apportion_rewards([0], np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            apportion_rewards([0], np.array([0.1]), base_reward=-1.0)

    def test_ledger_accumulates(self):
        ledger = RewardLedger()
        ledger.record_round(0, apportion_rewards([1, 2], np.array([0.5, 0.5]), base_reward=1.0))
        ledger.record_round(1, apportion_rewards([1], np.array([1.0]), base_reward=1.0))
        assert ledger.total_for(1) == pytest.approx(1.5)
        assert ledger.total_for(2) == pytest.approx(0.5)
        assert ledger.total_for(99) == 0.0
        assert ledger.total_issued() == pytest.approx(2.0)
        assert ledger.top_clients(1) == [(1, pytest.approx(1.5))]


class TestIdentifyContributions:
    def _setup(self, num_honest=8, num_malicious=2, dim=16, seed=0):
        rng = new_rng(seed, "contrib")
        honest = np.ones(dim) + 0.1 * rng.normal(size=(num_honest, dim))
        malicious = -np.ones(dim) + 0.1 * rng.normal(size=(num_malicious, dim))
        updates = np.vstack([honest, malicious])
        ids = list(range(num_honest + num_malicious))
        global_update = simple_average(updates)
        return updates, ids, global_update, list(range(num_honest, num_honest + num_malicious))

    def test_honest_majority_labelled_high(self):
        updates, ids, g, malicious_ids = self._setup()
        report = identify_contributions(updates, ids, g, ContributionConfig(eps=0.5))
        assert set(malicious_ids).issubset(set(report.low_contributors))
        assert set(range(8)).issubset(set(report.high_contributors))

    def test_reward_list_covers_high_only(self):
        updates, ids, g, _ = self._setup()
        report = identify_contributions(updates, ids, g, ContributionConfig(eps=0.5, base_reward=3.0))
        rewarded = {e.client_id for e in report.reward_list}
        assert rewarded == set(report.high_contributors)
        assert sum(e.reward for e in report.reward_list) == pytest.approx(3.0)

    def test_thetas_only_for_high(self):
        updates, ids, g, _ = self._setup()
        report = identify_contributions(updates, ids, g, ContributionConfig(eps=0.5))
        assert set(report.thetas.keys()) == set(report.high_contributors)
        assert all(0.0 <= t <= 2.0 for t in report.thetas.values())

    def test_all_identical_updates(self):
        updates = np.tile(np.ones(8), (5, 1))
        g = np.ones(8)
        report = identify_contributions(updates, list(range(5)), g, ContributionConfig(eps=0.5))
        assert set(report.high_contributors) == set(range(5))
        assert report.low_contributors == []

    def test_kmeans_variant(self):
        updates, ids, g, malicious_ids = self._setup()
        report = identify_contributions(
            updates, ids, g, ContributionConfig(algorithm="kmeans", num_clusters=2)
        )
        assert set(report.high_contributors) | set(report.low_contributors) == set(ids)

    def test_fallback_when_global_is_noise(self):
        # Global update orthogonal to two tight but opposite client groups can be noise;
        # force the situation with a tiny eps so nothing clusters with the global row.
        updates, ids, g, _ = self._setup()
        report = identify_contributions(updates, ids, g, ContributionConfig(eps=1e-6, min_samples=2))
        assert report.used_fallback
        assert set(report.high_contributors) | set(report.low_contributors) == set(ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            identify_contributions(np.zeros((0, 3)), [], np.zeros(3))
        with pytest.raises(ValueError):
            identify_contributions(np.zeros((2, 3)), [0], np.zeros(3))
        with pytest.raises(ValueError):
            identify_contributions(np.zeros((2, 3)), [0, 1], np.zeros(4))


class TestStrategies:
    def _report(self, updates, ids, g, eps=0.5):
        return identify_contributions(updates, ids, g, ContributionConfig(eps=eps))

    def test_keep_all_keeps_everyone(self):
        rng = new_rng(0, "strategy")
        updates = np.ones((4, 6)) + 0.01 * rng.normal(size=(4, 6))
        ids = [0, 1, 2, 3]
        g = simple_average(updates)
        outcome = KeepAllStrategy().apply(updates, ids, g, self._report(updates, ids, g))
        assert outcome.kept_client_ids == ids
        assert outcome.discarded_client_ids == []

    def test_discard_removes_low_contributors(self):
        rng = new_rng(1, "strategy")
        honest = np.ones((6, 8)) + 0.05 * rng.normal(size=(6, 8))
        outlier = -np.ones((1, 8))
        updates = np.vstack([honest, outlier])
        ids = list(range(7))
        g = simple_average(updates)
        report = self._report(updates, ids, g)
        outcome = DiscardStrategy().apply(updates, ids, g, report)
        assert 6 in outcome.discarded_client_ids
        assert 6 not in outcome.kept_client_ids
        # Recomputed global update should move toward the honest mean.
        assert np.linalg.norm(outcome.global_update - honest.mean(axis=0)) < np.linalg.norm(
            g - honest.mean(axis=0)
        )

    def test_discard_all_low_falls_back_to_keep(self):
        updates = np.vstack([np.ones((2, 4)), -np.ones((2, 4))])
        ids = [0, 1, 2, 3]
        g = np.array([1.0, 1.0, -1.0, -1.0])  # orthogonal-ish to both groups
        report = identify_contributions(updates, ids, g, ContributionConfig(eps=0.05, min_samples=2))
        outcome = DiscardStrategy().apply(updates, ids, g, report)
        assert set(outcome.kept_client_ids) | set(outcome.discarded_client_ids) == set(ids)
        assert outcome.global_update.shape == (4,)

    def test_simple_average_when_fair_aggregation_disabled(self):
        updates = np.array([[0.0, 0.0], [2.0, 2.0]])
        ids = [0, 1]
        g = simple_average(updates)
        report = self._report(updates, ids, g, eps=2.5)
        outcome = KeepAllStrategy().apply(updates, ids, g, report, use_fair_aggregation=False)
        np.testing.assert_allclose(outcome.global_update, [1.0, 1.0])

    def test_aggregation_thetas_override(self):
        updates = np.array([[0.0, 0.0], [2.0, 2.0]])
        ids = [0, 1]
        g = simple_average(updates)
        report = self._report(updates, ids, g, eps=2.5)
        outcome = KeepAllStrategy().apply(
            updates, ids, g, report, aggregation_thetas={0: 3.0, 1: 1.0}
        )
        np.testing.assert_allclose(outcome.global_update, [0.5, 0.5])

    def test_make_strategy(self):
        assert isinstance(make_strategy("keep"), KeepAllStrategy)
        assert isinstance(make_strategy("discard"), DiscardStrategy)
        with pytest.raises(ValueError):
            make_strategy("median")


@given(st.integers(3, 10), st.floats(0.1, 2.0))
@settings(max_examples=25, deadline=None)
def test_reward_conservation_property(num_clients, base_reward):
    """Property: the reward list always distributes exactly the base reward."""
    rng = np.random.default_rng(num_clients)
    thetas = rng.uniform(0.0, 1.0, size=num_clients)
    entries = apportion_rewards(list(range(num_clients)), thetas, base_reward=base_reward)
    assert sum(e.reward for e in entries) == pytest.approx(base_reward)
    assert all(e.reward >= 0 for e in entries)


@given(st.integers(4, 12))
@settings(max_examples=20, deadline=None)
def test_contribution_partition_property(num_clients):
    """Property: Algorithm 2 always partitions the clients into high ∪ low with no overlap."""
    rng = np.random.default_rng(num_clients * 13)
    updates = rng.normal(size=(num_clients, 10))
    ids = list(range(num_clients))
    g = simple_average(updates)
    report = identify_contributions(updates, ids, g, ContributionConfig(eps=0.6))
    high, low = set(report.high_contributors), set(report.low_contributors)
    assert high | low == set(ids)
    assert high & low == set()
