"""Differential tests pinning the vectorized cohort engine bit-exact.

The cohort backend's contract is not "numerically close" but **byte
identical**: for any capability-valid scenario, running with
``backend="cohort"`` must produce the same :class:`TrainingHistory` — every
round field, every ``extras`` diagnostic, every reward — as the serial
per-client path, because both consume the same per-client RNG streams in the
same order.  Three groups of tests enforce that:

* **fuzz parity** — :data:`FUZZ_COUNT` randomized small scenarios drawn from
  the registry's capability matrix (system x round_mode x attack x defense x
  seed; an axis is only drawn when the system's
  :class:`~repro.systems.registry.SystemCapabilities` supports it), each run
  serial *and* cohort and compared as canonical JSON bytes;
* **directed parity** — the corners the fuzzer covers only probabilistically:
  FedProx's proximal term with straggler dropping, and the fairbfl discard
  variant's detection accounting (discard/reward bookkeeping must survive
  vectorization, not just accuracies);
* **determinism regressions** — same spec + seed is identical across all four
  executor backends (and hashes to the same store key, since ``backend`` is a
  non-semantic field); a different seed diverges; and the trainer's
  large-population *streaming* fold (forced via a tiny ``STREAM_THRESHOLD``)
  stays deterministic and numerically equivalent to the materializing path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.attacks.gradient_attacks import ATTACKS
from repro.fl.fedavg import FedAvgTrainer
from repro.fl.robust import DEFENSES
from repro.runner.engine import ExperimentEngine
from repro.runner.executor import EXECUTOR_BACKENDS
from repro.runner.scenario import ScenarioSpec
from repro.sim.rounds import ROUND_MODES
from repro.store.keys import spec_key
from repro.store.records import history_to_payload, json_sanitize
from repro.systems.registry import get_system, systems_supporting

#: Number of randomized scenarios in the fuzz sweep (ISSUE floor: >= 25).
FUZZ_COUNT = 28

#: Systems whose registration declares the cohort execution capability.
COHORT_SYSTEMS = systems_supporting("cohort")


def canonical_result(result) -> str:
    """A byte-comparable rendering of a run: full history + trainer extras.

    The history label is excluded — it carries the spec *name* (presentation
    only); everything else, including per-round ``extras`` and reward maps,
    must match byte-for-byte between backends.
    """
    payload = history_to_payload(result.history)
    payload.pop("label", None)
    payload["run_extras"] = json_sanitize(dict(result.extras))
    return json.dumps(payload, sort_keys=True)


def fuzz_spec(index: int) -> ScenarioSpec:
    """Deterministically derive the ``index``-th randomized scenario.

    Systems rotate so every cohort-capable registration appears ~equally
    often; each optional axis (round mode, attack, defense, FedProx knobs) is
    drawn only when the system's capabilities declare it — the same validity
    rule `check_spec_axes` enforces — so every generated spec validates.
    """
    rng = np.random.default_rng(9000 + index)
    system = COHORT_SYSTEMS[index % len(COHORT_SYSTEMS)]
    caps = get_system(system).capabilities
    kwargs: dict = {
        "name": f"cohort-fuzz-{index}",
        "system": system,
        "seed": int(rng.integers(0, 2**16)),
        "num_clients": int(rng.integers(8, 13)),
        "num_samples": int(rng.integers(240, 361)),
        "num_rounds": int(rng.integers(2, 4)),
        "participation": float(rng.choice([0.5, 0.75, 1.0])),
        "scheme": str(rng.choice(["iid", "shard", "dirichlet"])),
        "model_name": "mlp" if rng.random() < 0.25 else "logreg",
        "hidden_sizes": (8,),
        "epochs": int(rng.integers(1, 3)),
        "batch_size": int(rng.choice([5, 8, 10])),
        "learning_rate": float(rng.choice([0.02, 0.05, 0.1])),
    }
    if rng.random() < 0.25:
        # Archetype-shard replication (the memory-bounding trick the scaling
        # bench relies on) must also preserve parity.
        kwargs["distinct_shards"] = int(rng.integers(2, kwargs["num_clients"]))
    if caps.round_modes:
        kwargs["round_mode"] = str(rng.choice(ROUND_MODES))
    if caps.attacks and rng.random() < 0.5:
        kwargs["attacks"] = True
        kwargs["attack_name"] = str(rng.choice([a for a in ATTACKS if a != "none"]))
    if caps.defenses and rng.random() < 0.5:
        kwargs["defense"] = str(rng.choice([d for d in DEFENSES if d != "none"]))
    if system == "fedprox":
        kwargs["proximal_mu"] = float(rng.choice([0.0, 0.05, 0.1]))
        kwargs["drop_percent"] = float(rng.choice([0.0, 0.2]))
    return ScenarioSpec(**kwargs).validate()


@pytest.fixture(scope="module")
def engine() -> ExperimentEngine:
    """One engine for the whole module so datasets are memoised across cases."""
    return ExperimentEngine()


class TestFuzzParity:
    """Randomized capability-valid scenarios: cohort == serial, byte for byte."""

    def test_generator_covers_the_matrix(self):
        specs = [fuzz_spec(i) for i in range(FUZZ_COUNT)]
        assert len(specs) >= 25
        assert {s.system for s in specs} == set(COHORT_SYSTEMS)
        assert {s.round_mode for s in specs} == set(ROUND_MODES)
        assert any(s.attacks for s in specs)
        assert any(s.defense != "none" for s in specs)
        assert any(s.system == "fedprox" and s.proximal_mu > 0 for s in specs)
        assert any(s.distinct_shards > 0 for s in specs)
        # Determinism of the generator itself: the sweep is reproducible.
        assert [spec_key(s) for s in specs] == [
            spec_key(fuzz_spec(i)) for i in range(FUZZ_COUNT)
        ]

    @pytest.mark.parametrize("index", range(FUZZ_COUNT))
    def test_cohort_matches_serial(self, engine, index):
        spec = fuzz_spec(index)
        serial = engine.run_result(spec.with_overrides(backend="serial"))
        cohort = engine.run_result(spec.with_overrides(backend="cohort"))
        assert canonical_result(cohort) == canonical_result(serial), (
            f"cohort run diverged from serial for fuzz spec {index}: "
            f"{spec.to_mapping()}"
        )


class TestDirectedParity:
    """Corners the fuzzer hits only probabilistically, pinned explicitly."""

    def test_fedprox_proximal_term_and_dropping(self, engine):
        spec = ScenarioSpec(
            name="cohort-fedprox",
            system="fedprox",
            seed=5,
            num_clients=10,
            num_samples=300,
            num_rounds=2,
            participation=1.0,
            scheme="dirichlet",
            model_name="logreg",
            epochs=2,
            batch_size=10,
            learning_rate=0.05,
            proximal_mu=0.1,
            drop_percent=0.2,
        ).validate()
        serial = engine.run_result(spec.with_overrides(backend="serial"))
        cohort = engine.run_result(spec.with_overrides(backend="cohort"))
        assert canonical_result(cohort) == canonical_result(serial)
        # The straggler drop actually engaged (dropped updates change the
        # aggregate), so the parity above covers the dropping code path too.
        no_drop = engine.run_result(
            spec.with_overrides(backend="serial", drop_percent=0.0)
        )
        assert canonical_result(no_drop) != canonical_result(serial)

    def test_fairbfl_detection_accounting(self, engine):
        spec = ScenarioSpec(
            name="cohort-fairbfl-discard",
            system="fairbfl-discard",
            seed=11,
            num_clients=10,
            num_samples=300,
            num_rounds=3,
            participation=0.8,
            scheme="iid",
            model_name="logreg",
            epochs=1,
            batch_size=10,
            learning_rate=0.05,
            attacks=True,
            attack_name="sign_flip",
        ).validate()
        serial = engine.run_result(spec.with_overrides(backend="serial"))
        cohort = engine.run_result(spec.with_overrides(backend="cohort"))
        assert canonical_result(cohort) == canonical_result(serial)
        # Detection accounting is exercised, not vacuously equal: attackers
        # were scheduled and the discard strategy produced reward/discard
        # bookkeeping for the parity check to compare.
        assert any(r.attackers for r in serial.history.rounds)
        assert any(r.rewards for r in serial.history.rounds)
        serial_discards = [list(r.discarded) for r in serial.history.rounds]
        cohort_discards = [list(r.discarded) for r in cohort.history.rounds]
        assert cohort_discards == serial_discards


class TestSeedDeterminism:
    """Same spec + seed => identical everywhere; different seed => different."""

    BASE = dict(
        system="fairbfl",
        num_clients=8,
        num_samples=300,
        num_rounds=2,
        participation=0.75,
        scheme="dirichlet",
        model_name="logreg",
        epochs=1,
        batch_size=10,
        learning_rate=0.05,
        attacks=True,
        attack_name="scaling",
    )

    def _spec(self, seed: int, backend: str = "serial") -> ScenarioSpec:
        return ScenarioSpec(
            name="determinism", seed=seed, backend=backend, **self.BASE
        ).validate()

    def test_identical_across_all_backends(self, engine):
        reference = canonical_result(engine.run_result(self._spec(7)))
        for backend in EXECUTOR_BACKENDS:
            result = engine.run_result(self._spec(7, backend))
            assert canonical_result(result) == reference, (
                f"backend {backend!r} diverged from serial for the same seed"
            )

    def test_spec_key_invariant_to_backend(self):
        keys = {spec_key(self._spec(7, backend)) for backend in EXECUTOR_BACKENDS}
        assert len(keys) == 1, (
            "backend is a non-semantic field: all execution paths must share "
            f"one store key, got {keys}"
        )

    def test_repeated_run_is_identical(self, engine):
        first = canonical_result(engine.run_result(self._spec(7, "cohort")))
        second = canonical_result(engine.run_result(self._spec(7, "cohort")))
        assert first == second

    def test_different_seed_diverges(self, engine):
        base = canonical_result(engine.run_result(self._spec(7)))
        other = canonical_result(engine.run_result(self._spec(8)))
        assert base != other
        assert spec_key(self._spec(7)) != spec_key(self._spec(8))


class TestStreamingFold:
    """The bounded-memory streaming path: deterministic and equivalent.

    Above ``FedAvgTrainer.STREAM_THRESHOLD`` selected clients, cohort rounds
    fold block aggregates into a running weighted sum instead of
    materialising every ``ClientUpdate``.  The fold reorders floating-point
    summation, so the contract is numerical equivalence (within float64
    round-off) plus strict run-to-run determinism — not byte parity with the
    materializing path.  Forcing a tiny threshold exercises it at test scale.
    """

    def _spec(self, backend: str) -> ScenarioSpec:
        return ScenarioSpec(
            name="streaming",
            system="fedavg",
            seed=3,
            num_clients=12,
            num_samples=360,
            num_rounds=2,
            participation=1.0,
            scheme="dirichlet",
            model_name="logreg",
            epochs=1,
            batch_size=10,
            learning_rate=0.05,
            backend=backend,
        ).validate()

    def test_streaming_matches_materialized(self, engine, monkeypatch):
        serial = engine.run_result(self._spec("serial"))
        monkeypatch.setattr(FedAvgTrainer, "STREAM_THRESHOLD", 4)
        streamed = engine.run_result(self._spec("cohort"))
        # The streaming path really engaged and accounted for every client.
        stream_stats = [r.extras.get("cohort_stream") for r in streamed.history.rounds]
        assert all(stats is not None for stats in stream_stats)
        assert all(stats["clients"] == 12 for stats in stream_stats)
        for got, want in zip(streamed.history.rounds, serial.history.rounds):
            assert list(got.participants) == list(want.participants)
            assert got.accuracy == pytest.approx(want.accuracy, abs=1e-9)
            assert got.train_loss == pytest.approx(want.train_loss, rel=1e-9)

    def test_streaming_is_deterministic(self, engine, monkeypatch):
        monkeypatch.setattr(FedAvgTrainer, "STREAM_THRESHOLD", 4)
        first = canonical_result(engine.run_result(self._spec("cohort")))
        second = canonical_result(engine.run_result(self._spec("cohort")))
        assert first == second
