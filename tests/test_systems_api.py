"""Tests for the system registry and the stable ``repro.api`` facade.

The central claims under test:

* **registry semantics** — duplicate and unknown names fail with actionable
  messages, registrations satisfy the ``System`` protocol, and the ``SYSTEMS``
  view is read-only;
* **capability-derived validation** — engaging ``round_mode``/``attacks``/
  ``defense`` on a system whose registration lacks the axis is a
  ``ScenarioError``, and ``filter_unsupported_axes`` drops exactly those
  fields;
* **plugin round-trip** — a system registered from outside core runs through
  ``repro.api.run``, a TOML sweep, and the CLI (``--plugins``) with zero
  edits to ``cli.py``/``engine.py``;
* **API stability** — ``repro.api.__all__`` is pinned by a snapshot.

Every test that registers a system unregisters it again, so the registry the
rest of the suite sees holds exactly the five built-ins.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import api
from repro.cli import main
from repro.fl.history import RoundRecord, TrainingHistory
from repro.runner.engine import ExperimentEngine
from repro.runner.scenario import ScenarioError, ScenarioSpec
from repro.systems import (
    SYSTEMS,
    DuplicateSystemError,
    RunResult,
    System,
    SystemCapabilities,
    SystemRegistryError,
    UnknownSystemError,
    filter_unsupported_axes,
    get_system,
    load_plugins,
    register_system,
    system_names,
    systems_supporting,
    unregister_system,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
BUILTINS = ("fairbfl", "fairbfl-discard", "fedavg", "fedprox", "blockchain")

#: The compatibility contract: changing repro.api's surface must be a
#: deliberate act that updates this snapshot (and docs/api.md) in the same
#: commit.
PINNED_API = [
    "ComparisonResult",
    "ExperimentEngine",
    "ReproServer",
    "RunResult",
    "RunStore",
    "ScenarioError",
    "ScenarioMatrix",
    "ScenarioResult",
    "ScenarioSpec",
    "SearchResult",
    "ServeClient",
    "StoredRun",
    "System",
    "SystemCapabilities",
    "TrainingHistory",
    "compare",
    "get_system",
    "list_systems",
    "load_plugins",
    "load_scenario",
    "register_system",
    "report",
    "run",
    "search",
    "serve",
    "spec_key",
    "submit",
    "sweep",
    "unregister_system",
]


class ToyRun:
    """A trivial system run: two synthetic rounds, no dataset, no training."""

    def __init__(self, name: str, num_rounds: int) -> None:
        self.name = name
        self.num_rounds = num_rounds

    def run(self) -> RunResult:
        history = TrainingHistory(label=self.name)
        for r in range(self.num_rounds):
            history.append(
                RoundRecord(
                    round_index=r,
                    delay=1.0,
                    accuracy=0.5,
                    train_loss=0.1,
                    elapsed_time=float(r + 1),
                )
            )
        return RunResult(system=self.name, history=history, extras={"toy": True})


class ToySystem(System):
    name = "toy"
    description = "synthetic fixed-history system for registry tests"
    capabilities = SystemCapabilities(needs_dataset=False)

    def build(self, spec, dataset):
        assert dataset is None, "needs_dataset=False systems must not receive a dataset"
        return ToyRun(self.name, spec.num_rounds)


@pytest.fixture()
def toy_system():
    system = register_system(ToySystem())
    try:
        yield system
    finally:
        unregister_system("toy")


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = system_names()
        assert names[: len(BUILTINS)] == BUILTINS

    def test_get_system_resolves_builtins(self):
        for name in BUILTINS:
            assert get_system(name).name == name

    def test_unknown_system_error_is_actionable(self):
        with pytest.raises(UnknownSystemError) as excinfo:
            get_system("fedsgd")
        message = str(excinfo.value)
        assert "unknown system 'fedsgd'" in message
        assert "fairbfl" in message and "register_system" in message

    def test_duplicate_registration_error_is_actionable(self, toy_system):
        with pytest.raises(DuplicateSystemError) as excinfo:
            register_system(ToySystem())
        message = str(excinfo.value)
        assert "'toy'" in message and "already registered" in message
        assert "replace=True" in message and "unregister_system" in message

    def test_replace_swaps_the_registration(self, toy_system):
        replacement = ToySystem()
        assert register_system(replacement, replace=True) is replacement
        assert get_system("toy") is replacement

    def test_unregister_unknown_name(self):
        with pytest.raises(UnknownSystemError, match="cannot unregister"):
            unregister_system("never-registered")

    def test_register_rejects_protocol_violations(self):
        class NoName(System):
            name = ""

        with pytest.raises(SystemRegistryError, match="non-empty string 'name'"):
            register_system(NoName())

        class NoBuild:
            name = "no-build"
            capabilities = SystemCapabilities()
            build = None

        with pytest.raises(SystemRegistryError, match="build"):
            register_system(NoBuild())

        class BadCapabilities(System):
            name = "bad-caps"
            capabilities = {"needs_dataset": True}

            def build(self, spec, dataset):  # pragma: no cover - never runs
                raise AssertionError

        with pytest.raises(SystemRegistryError, match="SystemCapabilities"):
            register_system(BadCapabilities())

    def test_systems_view_is_readonly_and_live(self, toy_system):
        assert SYSTEMS["toy"] is toy_system
        with pytest.raises(TypeError):
            SYSTEMS["sneaky"] = toy_system  # type: ignore[index]

    def test_systems_supporting(self):
        assert set(systems_supporting("round_modes")) == {"fairbfl", "fairbfl-discard"}
        assert "blockchain" not in systems_supporting("defenses")
        with pytest.raises(SystemRegistryError, match="unknown capability axis"):
            systems_supporting("quantum")


class TestCapabilityValidation:
    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"system": "fedavg", "round_mode": "async"}, "round_mode"),
            ({"system": "fedprox", "round_mode": "semi_sync"}, "round_mode"),
            ({"system": "blockchain", "defense": "krum"}, "defense"),
            ({"system": "fedavg", "attacks": True}, "attacks"),
            ({"system": "blockchain", "attacks": True}, "attacks"),
        ],
    )
    def test_unsupported_axis_engagement_rejected(self, overrides, match):
        with pytest.raises(ScenarioError, match=match):
            ScenarioSpec.from_mapping(overrides)

    def test_default_axis_values_always_accepted(self):
        # sharing one flag set across systems (CLI compare) must keep working
        for system in BUILTINS:
            ScenarioSpec(system=system, round_mode="sync", defense="none").validate()

    def test_supported_axes_still_validate(self):
        ScenarioSpec(system="fairbfl", round_mode="async", attacks=True, defense="krum").validate()
        ScenarioSpec(system="fedavg", defense="median").validate()

    def test_filter_unsupported_axes(self):
        fields = {
            "round_mode": "async",
            "straggler_deadline": 2.0,
            "attacks": True,
            "attack_name": "scaling",
            "defense": "krum",
            "defense_fraction": 0.3,
            "num_rounds": 3,
        }
        assert filter_unsupported_axes("fairbfl", fields) == fields
        filtered = filter_unsupported_axes("blockchain", fields)
        assert filtered == {"num_rounds": 3}
        fedavg = filter_unsupported_axes("fedavg", fields)
        assert fedavg == {"defense": "krum", "defense_fraction": 0.3, "num_rounds": 3}


class TestEngineRegistryDispatch:
    def test_needs_dataset_false_skips_dataset_build(self, toy_system):
        engine = ExperimentEngine()
        history = engine.run(ScenarioSpec(system="toy", name="toy-run", num_rounds=3))
        assert len(history) == 3
        assert history.label == "toy-run"
        assert engine._dataset_cache == {}

    def test_run_result_carries_system_and_extras(self, toy_system):
        result = ExperimentEngine().run_result(ScenarioSpec(system="toy", num_rounds=1))
        assert result.system == "toy"
        assert result.extras == {"toy": True}
        assert len(result.history) == 1


class TestApiFacade:
    def test_public_api_snapshot(self):
        assert api.__all__ == PINNED_API
        for name in PINNED_API:
            assert getattr(api, name) is not None

    def test_list_systems_matches_registry(self):
        assert api.list_systems() == system_names()

    def test_run_accepts_name_mapping_and_spec(self, toy_system):
        by_name = api.run("toy", num_rounds=2)
        assert len(by_name) == 2 and by_name.label == "toy"
        by_mapping = api.run({"system": "toy", "name": "m", "num_rounds": 1})
        assert len(by_mapping) == 1 and by_mapping.label == "m"
        by_spec = api.run(ScenarioSpec(system="toy", name="s", num_rounds=1), num_rounds=2)
        assert len(by_spec) == 2 and by_spec.label == "s"

    def test_run_rejects_bad_target(self):
        with pytest.raises(ScenarioError, match="system name"):
            api.run(42)

    def test_load_scenario_mapping_and_file(self, tmp_path):
        specs = api.load_scenario({"system": "blockchain", "num_rounds": 2})
        assert len(specs) == 1 and specs[0].system == "blockchain"
        path = tmp_path / "one.toml"
        path.write_text('system = "blockchain"\nnum_rounds = 1\n', encoding="utf-8")
        assert api.load_scenario(path)[0].name == "one"

    def test_sweep_toml_round_trip_with_plugin_system(self, toy_system, tmp_path):
        path = tmp_path / "toy_sweep.toml"
        path.write_text(
            'name = "toy-sweep"\n[base]\nsystem = "toy"\n[matrix]\nnum_rounds = [1, 2]\n',
            encoding="utf-8",
        )
        table, results = api.sweep(path)
        assert [r.spec.num_rounds for r in results] == [1, 2]
        assert [row[1] for row in table.rows] == ["toy", "toy"]
        assert table.title == "Scenario sweep (2 scenarios)"

    def test_sweep_overrides_are_capability_filtered(self, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text(
            '{"base": {"num_rounds": 1, "num_clients": 6, "num_samples": 400},'
            ' "scenarios": [{"name": "f", "system": "fairbfl"},'
            ' {"name": "b", "system": "blockchain"}]}',
            encoding="utf-8",
        )
        _table, results = api.sweep(path, overrides={"defense": "median"})
        by_name = {r.spec.name: r.spec for r in results}
        assert by_name["f"].defense == "median"
        assert by_name["b"].defense == "none"

    def test_compare_runs_selected_systems(self):
        table, results = api.compare(
            ("fedavg", "blockchain"),
            num_clients=6,
            num_samples=400,
            num_rounds=1,
            model_name="logreg",
        )
        assert [row[0] for row in table.rows] == ["fedavg", "blockchain"]
        assert {r.spec.system for r in results} == {"fedavg", "blockchain"}

    def test_compare_filters_axes_and_applies_per_system(self):
        # round_mode reaches only the round-mode capable systems; per_system
        # overrides land on exactly their target.
        table, results = api.compare(
            ("fairbfl", "fedavg"),
            num_clients=6,
            num_samples=400,
            num_rounds=1,
            round_mode="semi_sync",
            per_system={"fedavg": {"participation": 1.0}},
            model_name="logreg",
        )
        specs = {r.spec.system: r.spec for r in results}
        assert specs["fairbfl"].round_mode == "semi_sync"
        assert specs["fedavg"].round_mode == "sync"
        assert specs["fedavg"].participation == 1.0
        assert len(table.rows) == 2

    def test_compare_unknown_system_fails_fast(self):
        with pytest.raises(UnknownSystemError, match="unknown system 'nope'"):
            api.compare(("nope",), num_rounds=1)


class TestPluginRoundTrip:
    """examples/custom_system.py runs everywhere with zero core edits."""

    PLUGIN = str(REPO_ROOT / "examples" / "custom_system.py")

    @pytest.fixture()
    def momentum_plugin(self):
        load_plugins([self.PLUGIN], reload=True)
        try:
            yield
        finally:
            unregister_system("fedavg-momentum")

    def test_plugin_registers_and_runs_via_api(self, momentum_plugin):
        history = api.run(
            "fedavg-momentum", num_clients=6, num_samples=400, num_rounds=2,
            model_name="logreg",
        )
        assert len(history) == 2

    def test_plugin_momentum_zero_matches_fedavg(self, momentum_plugin, tiny_federated):
        # beta=0 must recover plain FedAvg *exactly*.  The trainer label seeds
        # the selection/delay RNG streams, so pin it to "fedavg" to put both
        # trainers on identical draws and compare the aggregation math alone.
        from repro.fl.fedavg import FedAvgConfig, FedAvgTrainer

        module = load_plugins([self.PLUGIN])[0]

        class ZeroMomentum(module.MomentumFedAvgTrainer):
            label = "fedavg"

        config = FedAvgConfig(
            num_rounds=2, participation_fraction=0.5, model_name="logreg", seed=7
        )
        plain = FedAvgTrainer(tiny_federated, config).run()
        zero = ZeroMomentum(tiny_federated, config, momentum=0.0).run()
        assert [(r.accuracy, r.train_loss, r.delay, tuple(r.participants)) for r in zero.rounds] == [
            (r.accuracy, r.train_loss, r.delay, tuple(r.participants)) for r in plain.rounds
        ]

    def test_plugin_sweep_toml_via_api(self, momentum_plugin):
        _table, results = api.sweep(REPO_ROOT / "examples" / "custom_sweep.toml")
        systems = {r.spec.system for r in results}
        assert systems == {"fedavg", "fedavg-momentum"}
        assert len(results) == 4

    def test_plugin_cli_run_in_fresh_process(self):
        # The strongest zero-edits claim: a fresh interpreter where *only*
        # the --plugins flag introduces the system.
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli",
                "--plugins", self.PLUGIN,
                "run", "fedavg-momentum",
                "--clients", "6", "--rounds", "1", "--samples", "400",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert "== fedavg-momentum ==" in result.stdout

    def test_plugin_cli_sweep_and_compare(self, momentum_plugin, capsys):
        # In-process: the plugin flag resolves to the already-loaded module
        # (load_plugins caches by file path) and the registered system flows
        # into sweep validation and compare's roster without CLI edits.
        code = main(
            [
                "--plugins", self.PLUGIN,
                "sweep", "--scenario", str(REPO_ROOT / "examples" / "custom_sweep.toml"),
            ]
        )
        assert code == 0
        assert "fedavg-momentum" in capsys.readouterr().out

        code = main(
            [
                "--plugins", self.PLUGIN,
                "compare", "--clients", "6", "--rounds", "1", "--samples", "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fedavg-momentum" in out and "blockchain" in out

    def test_plugin_prescan_matches_argparse_abbreviations(self):
        # argparse prefix-matches long options, so every form it would accept
        # must also be seen by the pre-scan that loads plugins early.
        from repro.cli import _plugin_entries

        assert _plugin_entries(["--plugins", "a.py", "run", "fairbfl"]) == ["a.py"]
        assert _plugin_entries(["--plugins=a.py"]) == ["a.py"]
        assert _plugin_entries(["--plugin", "a.py"]) == ["a.py"]
        assert _plugin_entries(["--plug=a.py"]) == ["a.py"]
        assert _plugin_entries(["--p", "a.py"]) == ["a.py"]
        # ...but the scan stops at the subcommand: past it, --p abbreviates
        # the subparsers' --participation, never --plugins.
        assert _plugin_entries(["run", "fairbfl", "--participation", "0.5"]) == []
        assert _plugin_entries(["run", "fairbfl", "--p", "0.5"]) == []
        assert _plugin_entries(["--plugins", "a.py", "run", "fairbfl", "--p", "0.5"]) == ["a.py"]

    def test_plugin_cli_abbreviated_flag(self, momentum_plugin, capsys):
        code = main(
            ["--plugin", self.PLUGIN, "run", "fedavg-momentum",
             "--clients", "6", "--rounds", "1", "--samples", "400"]
        )
        assert code == 0
        assert "== fedavg-momentum ==" in capsys.readouterr().out

    def test_cli_reports_broken_plugin(self, tmp_path, capsys):
        bad = tmp_path / "broken_plugin.py"
        bad.write_text("raise RuntimeError('boom')\n", encoding="utf-8")
        code = main(["--plugins", str(bad), "run", "fedavg"])
        assert code == 2
        err = capsys.readouterr().err
        assert "broken_plugin" in err and "boom" in err

    def test_load_plugins_unknown_entry(self):
        with pytest.raises(SystemRegistryError, match="no_such_plugin"):
            load_plugins(["repro_no_such_plugin_module"])
        with pytest.raises(SystemRegistryError, match="not found"):
            load_plugins(["/nonexistent/plugin.py"])
