"""Migration parity pin: ``topology="global"`` reproduces history bit-identically.

The gossip substrate must be a strict superset of the legacy single-network
path: a scenario that does not engage the net axes (``topology="global"``,
the default) has to produce byte-for-byte the same training history as
before the substrate existed.  Two pins enforce that:

1. **Golden replay** — the run records persisted under ``results/store/``
   were computed by earlier releases (before ``repro.net``); re-running
   their specs through today's code must reproduce every stored history
   payload exactly.
2. **No substrate on the global path** — a ``global`` trainer builds no
   :class:`~repro.net.substrate.GossipSubstrate`, draws nothing from its
   RNG streams, and emits no ``extras["net"]`` block.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.config import FairBFLConfig
from repro.core.experiment import build_federated_dataset
from repro.core.fairbfl import FairBFLTrainer
from repro.runner.engine import run_scenario
from repro.runner.scenario import ScenarioSpec
from repro.store.records import history_to_payload

pytestmark = pytest.mark.net

STORE_ROOT = Path(__file__).resolve().parents[1] / "results" / "store"


def _stored_fairbfl_records() -> list[dict]:
    """Deduped stored global-path records for FAIR-BFL systems.

    Records whose spec engages the net axes are excluded: the pin is about
    the legacy path, and a store accumulates net-engaged runs over time.
    """
    records: dict[str, dict] = {}
    for path in sorted(STORE_ROOT.glob("*/*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        spec = payload.get("spec", {})
        if not str(spec.get("system", "")).startswith("fairbfl"):
            continue
        if spec.get("topology", "global") != "global":
            continue
        records.setdefault(json.dumps(spec, sort_keys=True), payload)
    return list(records.values())


_RECORDS = _stored_fairbfl_records()


@pytest.mark.skipif(not _RECORDS, reason="no stored fairbfl run records to replay")
class TestGoldenReplay:
    @pytest.mark.parametrize(
        "stored",
        _RECORDS,
        ids=[r["spec"].get("name", "?") + "/" + r["spec"].get("round_mode", "?") for r in _RECORDS],
    )
    def test_stored_history_reproduced_bit_identically(self, stored):
        spec = ScenarioSpec.from_mapping(stored["spec"])
        # Pre-substrate mappings carry no net fields: defaults must place the
        # replay on the legacy path.
        assert spec.topology == "global"
        assert (spec.partition, spec.churn) == ("none", "none")
        history = run_scenario(spec)
        replayed = json.loads(json.dumps(history_to_payload(history), sort_keys=True))
        assert replayed == stored["history"]


class TestGlobalPathBuildsNoSubstrate:
    def test_trainer_has_no_net(self):
        dataset = build_federated_dataset(
            num_clients=4, num_samples=200, scheme="iid", seed=3, noise_std=0.3
        )
        config = FairBFLConfig(num_rounds=1, participation_fraction=0.5, seed=3)
        assert config.topology == "global"
        trainer = FairBFLTrainer(dataset, config)
        assert trainer.net is None
        history = trainer.run()
        assert all("net" not in record.extras for record in history.rounds)

    def test_explicit_global_is_the_default_spec(self):
        bare = ScenarioSpec.from_mapping({"system": "fairbfl"})
        explicit = ScenarioSpec.from_mapping(
            {"system": "fairbfl", "topology": "global", "partition": "none", "churn": "none"}
        )
        assert bare.canonical_mapping() == explicit.canonical_mapping()
