"""Tests for the FAIR-BFL core: config, flexibility, convergence, procedures, results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FairBFLConfig
from repro.core.convergence import ConvergenceCriterion, theorem31_bound, theorem31_constants
from repro.core.flexibility import OperatingMode, Procedure, procedures_for_mode
from repro.core.results import ComparisonResult, summarize_history
from repro.fl.client import LocalTrainingConfig
from repro.fl.history import RoundRecord, TrainingHistory


class TestFlexibility:
    def test_bfl_mode_runs_all_five(self):
        procs = procedures_for_mode(OperatingMode.BFL)
        assert len(procs) == 5
        assert procs[0] is Procedure.LOCAL_UPDATE
        assert procs[-1] is Procedure.MINING

    def test_fl_only_drops_exchange_and_mining(self):
        procs = procedures_for_mode(OperatingMode.FL_ONLY)
        assert Procedure.EXCHANGE not in procs
        assert Procedure.MINING not in procs
        assert Procedure.LOCAL_UPDATE in procs
        assert Procedure.GLOBAL_UPDATE in procs

    def test_chain_only_drops_learning_and_aggregation(self):
        procs = procedures_for_mode(OperatingMode.CHAIN_ONLY)
        assert Procedure.LOCAL_UPDATE not in procs
        assert Procedure.GLOBAL_UPDATE not in procs
        assert Procedure.MINING in procs

    def test_parse_from_string(self):
        assert OperatingMode.parse("bfl") is OperatingMode.BFL
        assert OperatingMode.parse("FL_ONLY") is OperatingMode.FL_ONLY
        assert OperatingMode.parse(OperatingMode.CHAIN_ONLY) is OperatingMode.CHAIN_ONLY

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown operating mode"):
            OperatingMode.parse("hybrid")


class TestFairBFLConfig:
    def test_defaults_match_paper(self):
        cfg = FairBFLConfig()
        assert cfg.num_miners == 2
        assert cfg.num_rounds == 100
        assert cfg.local.epochs == 5
        assert cfg.local.batch_size == 10
        assert cfg.local.learning_rate == pytest.approx(0.01)
        assert cfg.contribution.algorithm == "dbscan"
        assert cfg.strategy == "keep"
        assert cfg.operating_mode is OperatingMode.BFL

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_miners": 0},
            {"num_rounds": 0},
            {"participation_fraction": 0.0},
            {"participation_fraction": 1.5},
            {"strategy": "median"},
            {"pow_difficulty": 0.5},
            {"min_attackers": 5, "max_attackers": 2},
            {"mode": "bogus"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FairBFLConfig(**kwargs)


class TestConvergenceCriterion:
    def test_detects_plateau(self):
        acc = [0.1, 0.3, 0.5, 0.7, 0.701, 0.702, 0.701, 0.702, 0.703]
        criterion = ConvergenceCriterion(tolerance=0.005, window=5)
        idx = criterion.converged_at(acc)
        assert idx == 8
        assert criterion.has_converged(acc)

    def test_no_convergence_on_rising_series(self):
        acc = np.linspace(0.0, 1.0, 20)
        assert not ConvergenceCriterion(tolerance=0.005, window=5).has_converged(acc)

    def test_short_series_never_converged(self):
        assert ConvergenceCriterion(window=5).converged_at([0.5, 0.5]) is None

    def test_window_one(self):
        criterion = ConvergenceCriterion(tolerance=0.01, window=1)
        assert criterion.converged_at([0.5, 0.505]) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceCriterion(tolerance=0.0)
        with pytest.raises(ValueError):
            ConvergenceCriterion(window=0)


class TestTheorem31:
    def test_constants(self):
        consts = theorem31_constants(
            smoothness=4.0, strong_convexity=0.5, gradient_bound=1.0,
            local_epochs=5, num_selected=10,
        )
        assert consts["kappa"] == pytest.approx(8.0)
        assert consts["gamma"] == pytest.approx(64.0)
        assert consts["C"] == pytest.approx(4.0 / 10 * 25)

    def test_bound_decreases_with_rounds(self):
        consts = theorem31_constants(
            smoothness=4.0, strong_convexity=0.5, gradient_bound=1.0,
            local_epochs=5, num_selected=10,
        )
        values = [
            theorem31_bound(r, constants=consts, initial_distance_sq=4.0) for r in (1, 10, 100, 1000)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert values[-1] > 0.0

    def test_bound_scales_with_initial_distance(self):
        consts = theorem31_constants(
            smoothness=2.0, strong_convexity=1.0, gradient_bound=1.0,
            local_epochs=2, num_selected=4,
        )
        near = theorem31_bound(5, constants=consts, initial_distance_sq=0.1)
        far = theorem31_bound(5, constants=consts, initial_distance_sq=10.0)
        assert far > near

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem31_constants(
                smoothness=1.0, strong_convexity=2.0, gradient_bound=1.0,
                local_epochs=1, num_selected=1,
            )
        consts = theorem31_constants(
            smoothness=2.0, strong_convexity=1.0, gradient_bound=1.0,
            local_epochs=1, num_selected=1,
        )
        with pytest.raises(ValueError):
            theorem31_bound(0, constants=consts, initial_distance_sq=1.0)
        with pytest.raises(ValueError):
            theorem31_bound(1, constants=consts, initial_distance_sq=-1.0)

    def test_sgd_on_quadratic_respects_bound(self):
        """Empirical check: local SGD on a strongly convex quadratic stays under the bound."""
        rng = np.random.default_rng(0)
        dim, num_clients, local_epochs, num_selected = 5, 8, 2, 8
        mu, L, G = 1.0, 4.0, 5.0
        # Per-client quadratic objectives F_i(w) = 0.5 * (w - c_i)^T A (w - c_i).
        eigs = np.linspace(mu, L, dim)
        A = np.diag(eigs)
        centers = rng.normal(scale=0.5, size=(num_clients, dim))
        w_star = centers.mean(axis=0)
        f_star = float(
            np.mean([0.5 * (w_star - c) @ A @ (w_star - c) for c in centers])
        )
        consts = theorem31_constants(
            smoothness=L, strong_convexity=mu, gradient_bound=G,
            local_epochs=local_epochs, num_selected=num_selected,
        )
        w = np.full(dim, 2.0)
        init_dist = float(np.sum((w - w_star) ** 2))
        for r in range(1, 30):
            lr = 2.0 / (mu * (consts["gamma"] + r))
            locals_w = []
            for c in centers:
                wi = w.copy()
                for _ in range(local_epochs):
                    wi -= lr * (A @ (wi - c))
                locals_w.append(wi)
            w = np.mean(locals_w, axis=0)
            f_val = float(np.mean([0.5 * (w - c) @ A @ (w - c) for c in centers]))
            bound = theorem31_bound(r, constants=consts, initial_distance_sq=init_dist)
            assert f_val - f_star <= bound + 1e-6


class TestResults:
    def _history(self):
        hist = TrainingHistory(label="demo")
        for i in range(6):
            hist.append(
                RoundRecord(
                    round_index=i, delay=2.0, accuracy=min(0.9, 0.2 * i),
                    elapsed_time=2.0 * (i + 1),
                )
            )
        return hist

    def test_summarize_history(self):
        summary = summarize_history(self._history())
        assert summary["label"] == "demo"
        assert summary["rounds"] == 6
        assert summary["average_delay"] == pytest.approx(2.0)
        assert summary["total_time"] == pytest.approx(12.0)
        assert 0.0 <= summary["average_accuracy"] <= 1.0

    def test_comparison_result_rows_and_columns(self):
        table = ComparisonResult(title="t", columns=["x", "fair", "fedavg"])
        table.add_row(1, 0.5, 0.6)
        table.add_row(2, 0.7, 0.8)
        assert table.column("fair") == [0.5, 0.7]
        with pytest.raises(KeyError):
            table.column("missing")
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_comparison_result_text_render(self):
        table = ComparisonResult(title="Figure X", columns=["n", "delay"])
        table.add_row(10, 1.23456)
        table.notes.append("calibrated")
        text = table.to_text()
        assert "Figure X" in text
        assert "1.2346" in text
        assert "note: calibrated" in text
