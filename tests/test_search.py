"""Tests for the ASHA successive-halving search (`repro.search`, `repro search`).

The scheduler's claims under test:

* **rung math** — the fidelity ladder grows by ``eta`` from
  ``ceil(R/eta²)`` (or an explicit ``min_rounds``) and always ends exactly at
  ``R``; invalid parameters are :class:`ScenarioError`\\ s, not surprises;
* **capability validation** — accuracy-based promotion metrics are rejected
  up front for systems registered with ``needs_dataset=False`` (the vanilla
  blockchain), with the universal ``delay`` metric as the suggested fix;
* **determinism and resumability** — the same cohort searched twice produces
  the same leaderboard; a search killed mid-flight and re-run against the
  same store finishes bit-identically while recomputing nothing it already
  has (the engine counters make that assertable);
* **budget accounting** — ``round_evaluations`` counts only computed rounds
  (resumed prefixes and cache hits are free) against the
  ``len(cohort)·R`` exhaustive-grid figure;
* **CLI surface** — ``repro search`` drives the same path, prints the rung
  trace, leaderboard, budget line, and engine counters, and honours
  ``--metric``/``--no-cache``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import api
from repro.cli import main
from repro.runner.engine import ExperimentEngine
from repro.runner.scenario import ScenarioError, ScenarioSpec
from repro.search import (
    PROMOTION_METRICS,
    check_metric_supported,
    resolve_metric,
    run_search,
    rung_schedule,
)
from repro.store import RunStore

SMALL = dict(system="fairbfl", num_clients=6, num_samples=240, num_rounds=6, seed=3)


def cohort(*lrs: float) -> list[ScenarioSpec]:
    return [
        ScenarioSpec(**{**SMALL, "name": f"lr{i}", "learning_rate": lr})
        for i, lr in enumerate(lrs)
    ]


class TestRungSchedule:
    def test_default_ladder_is_three_rungs(self):
        assert rung_schedule(9, eta=3) == (1, 3, 9)
        assert rung_schedule(27, eta=3) == (3, 9, 27)

    def test_final_rung_is_exactly_max_rounds(self):
        assert rung_schedule(10, eta=3)[-1] == 10
        assert rung_schedule(7, eta=2, min_rounds=3)[-1] == 7

    def test_explicit_min_rounds(self):
        assert rung_schedule(8, eta=2, min_rounds=2) == (2, 4, 8)

    def test_min_rounds_equal_to_max_is_one_rung(self):
        assert rung_schedule(5, eta=3, min_rounds=5) == (5,)

    @pytest.mark.parametrize(
        "kwargs", [dict(eta=1), dict(min_rounds=0), dict(min_rounds=11)]
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ScenarioError):
            rung_schedule(10, **kwargs)

    def test_max_rounds_must_be_positive(self):
        with pytest.raises(ScenarioError, match="positive"):
            rung_schedule(0)


class TestMetricValidation:
    def test_known_metrics_resolve(self):
        for name in PROMOTION_METRICS:
            assert resolve_metric(name).name == name

    def test_unknown_metric_raises(self):
        with pytest.raises(ScenarioError, match="unknown promotion metric"):
            resolve_metric("bogus")

    def test_accuracy_metric_rejected_for_blockchain(self):
        spec = ScenarioSpec(system="blockchain", num_rounds=4)
        with pytest.raises(ScenarioError, match="needs_dataset=False"):
            check_metric_supported(resolve_metric("final_accuracy"), spec)

    def test_rejection_suggests_delay_metric(self):
        spec = ScenarioSpec(system="blockchain", num_rounds=4)
        with pytest.raises(ScenarioError, match="metric='delay'"):
            run_search([spec], engine=ExperimentEngine(), metric="avg_accuracy")

    def test_delay_metric_searches_blockchain(self):
        specs = [
            ScenarioSpec(system="blockchain", name=f"m{m}", miners=m, num_rounds=4, seed=1)
            for m in (2, 3)
        ]
        result = run_search(specs, engine=ExperimentEngine(), metric="delay", eta=2, min_rounds=2)
        assert result.mode == "min"
        assert result.best.name in {"m2", "m3"}

    def test_duplicate_trial_names_raise(self):
        spec = ScenarioSpec(**{**SMALL, "name": "dup"})
        with pytest.raises(ScenarioError, match="unique"):
            run_search([spec, spec], engine=ExperimentEngine())

    def test_empty_cohort_raises(self):
        with pytest.raises(ScenarioError, match="at least one"):
            run_search([], engine=ExperimentEngine())


class TestSearchSemantics:
    def test_halving_keeps_top_fraction_per_rung(self, tmp_path):
        trials = cohort(0.2, 0.1, 0.05, 0.01)
        engine = ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True)
        result = run_search(trials, engine=engine, eta=2, min_rounds=2)
        assert result.rungs == (2, 4, 6)
        assert [len(r.trials) for r in result.rung_results] == [4, 2, 1]
        assert len(result.rung_results[0].promoted) == 2
        assert result.rung_results[-1].promoted == ()
        assert result.best is result.leaderboard[0]

    def test_search_spends_less_than_the_grid(self, tmp_path):
        trials = cohort(0.2, 0.1, 0.05, 0.01)
        engine = ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True)
        result = run_search(trials, engine=engine, eta=2, min_rounds=2)
        assert result.grid_round_evaluations == 4 * 6
        # 4 trials x 2 rounds + 2 promotions x 2 new rounds + 1 x 2 new rounds.
        assert result.round_evaluations == 14
        assert result.evaluation_fraction < 1.0

    def test_same_cohort_same_leaderboard(self, tmp_path):
        trials = cohort(0.2, 0.1, 0.05)
        first = run_search(
            trials,
            engine=ExperimentEngine(store=RunStore(tmp_path / "a"), reuse_cached=True),
            eta=2,
            min_rounds=2,
        )
        second = run_search(
            trials,
            engine=ExperimentEngine(store=RunStore(tmp_path / "b"), reuse_cached=True),
            eta=2,
            min_rounds=2,
        )
        assert [dataclasses.astuple(t) for t in first.leaderboard] == [
            dataclasses.astuple(t) for t in second.leaderboard
        ]

    def test_interrupted_search_resumes_bit_identically(self, tmp_path):
        trials = cohort(0.2, 0.1, 0.05, 0.01)
        reference = run_search(
            trials,
            engine=ExperimentEngine(store=RunStore(tmp_path / "ref"), reuse_cached=True),
            eta=2,
            min_rounds=2,
        )
        # "Kill" a search after the first rung: only the rung-0 records exist.
        store = RunStore(tmp_path / "killed")
        engine = ExperimentEngine(store=store, reuse_cached=True)
        for spec in trials:
            engine.run_partial(spec, 2)
        killed_evals = engine.round_evaluations
        # Re-running the whole search against the same store serves rung 0
        # from cache and computes only the promotions.
        resumed = run_search(trials, engine=engine, eta=2, min_rounds=2)
        assert resumed.cache_hits == len(trials)
        assert resumed.round_evaluations == reference.round_evaluations - killed_evals
        assert [dataclasses.astuple(t) for t in resumed.leaderboard] == [
            dataclasses.astuple(t) for t in reference.leaderboard
        ]

    def test_completed_search_rerun_computes_nothing(self, tmp_path):
        trials = cohort(0.2, 0.05)
        engine = ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True)
        first = run_search(trials, engine=engine, eta=2, min_rounds=3)
        again = run_search(trials, engine=engine, eta=2, min_rounds=3)
        assert again.runs_computed == 0
        assert again.round_evaluations == 0
        assert [t.score for t in again.leaderboard] == [t.score for t in first.leaderboard]

    def test_rungs_shared_with_plain_sweeps(self, tmp_path):
        # A sweep that already ran the 6-round cells makes the search's final
        # rung free — fidelity is part of the ordinary content key.
        trials = cohort(0.2, 0.05)
        store = RunStore(tmp_path)
        sweep_engine = ExperimentEngine(store=store, reuse_cached=True)
        for spec in trials:
            sweep_engine.run(spec)
        engine = ExperimentEngine(store=store, reuse_cached=True)
        result = run_search(trials, engine=engine, eta=2, min_rounds=3)
        final = result.rung_results[-1]
        assert final.rounds == 6 and len(final.trials) == 1
        assert result.cache_hits >= 1  # the final rung came from the sweep's record

    def test_api_facade_accepts_spec_lists_and_overrides(self, tmp_path):
        result = api.search(
            cohort(0.2, 0.05),
            engine=ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True),
            eta=2,
            min_rounds=3,
        )
        assert isinstance(result, api.SearchResult)
        assert result.best.name in {"lr0", "lr1"}


def _search_file(tmp_path, rounds: int = 6) -> str:
    path = tmp_path / "search.json"
    path.write_text(
        json.dumps(
            {
                "name": "grid",
                "base": {**SMALL, "num_rounds": rounds},
                "matrix": {"learning_rate": [0.2, 0.05, 0.01]},
            }
        ),
        encoding="utf-8",
    )
    return str(path)


class TestSearchCli:
    def test_search_verb_prints_rungs_leaderboard_and_budget(self, tmp_path, capsys):
        code = main(
            [
                "search",
                "--scenario",
                _search_file(tmp_path),
                "--eta",
                "2",
                "--min-rounds",
                "2",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ASHA search: metric final_accuracy (max), eta 2, rungs 2 -> 4 -> 6" in out
        assert "Search leaderboard" in out
        assert "best: grid[learning_rate=" in out
        assert "round-evaluations vs 18 exhaustive grid" in out
        assert "run store" in out and "round-evaluations simulated" in out

    def test_search_verb_second_run_is_fully_cached(self, tmp_path, capsys):
        argv = [
            "search",
            "--scenario",
            _search_file(tmp_path),
            "--eta",
            "2",
            "--min-rounds",
            "2",
            "--store",
            str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 computed" in second
        assert "search budget: 0 round-evaluations" in second
        # Identical leaderboard both times (budget lines legitimately differ).
        table = lambda out: out.split("Search leaderboard")[1].split("search budget:")[0]
        assert table(first) == table(second)

    def test_no_cache_skips_the_store(self, tmp_path, capsys):
        code = main(
            [
                "search",
                "--scenario",
                _search_file(tmp_path),
                "--eta",
                "2",
                "--min-rounds",
                "2",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "run store" not in out

    def test_metric_mismatch_is_a_clean_cli_error(self, tmp_path, capsys):
        path = tmp_path / "bc.json"
        path.write_text(
            json.dumps({"system": "blockchain", "name": "bc", "num_rounds": 4}),
            encoding="utf-8",
        )
        code = main(
            ["search", "--scenario", str(path), "--metric", "final_accuracy", "--no-cache"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "needs_dataset=False" in captured.err

    def test_export_writes_leaderboard_csv(self, tmp_path):
        out_csv = tmp_path / "leaderboard.csv"
        code = main(
            [
                "search",
                "--scenario",
                _search_file(tmp_path),
                "--eta",
                "2",
                "--min-rounds",
                "2",
                "--store",
                str(tmp_path / "store"),
                "--export",
                str(out_csv),
            ]
        )
        assert code == 0
        header = out_csv.read_text(encoding="utf-8").splitlines()[0]
        assert header.split(",")[:3] == ["rank", "scenario", "system"]
