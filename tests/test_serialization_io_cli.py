"""Tests for ledger serialisation, history export, and the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.serialization import (
    block_from_dict,
    block_to_dict,
    chain_from_dict,
    chain_to_dict,
    load_chain,
    save_chain,
    transaction_from_dict,
    transaction_to_dict,
)
from repro.blockchain.transaction import (
    make_global_update_transaction,
    make_gradient_transaction,
    make_reward_transaction,
)
from repro.cli import build_parser, main
from repro.core.io import (
    load_history_json,
    save_comparison_csv,
    save_history_csv,
    save_history_json,
)
from repro.core.results import ComparisonResult
from repro.crypto.keystore import KeyStore
from repro.fl.history import RoundRecord, TrainingHistory


def _sample_chain():
    chain = Blockchain(enforce_pow=False)
    chain.add_genesis(Block.genesis())
    keystore = KeyStore(seed=0, key_bits=128)
    keystore.register("miner-0")
    for r in range(3):
        block = Block.create(
            index=r + 1,
            previous_hash=chain.last_block.block_hash,
            round_index=r,
            miner_id="miner-0",
            transactions=[
                make_global_update_transaction("miner-0", r, np.full(6, float(r)), keystore=keystore),
                make_reward_transaction("miner-0", r, f"client-{r}", 0.5, keystore=keystore),
            ],
        )
        chain.add_block(block)
    return chain, keystore


class TestTransactionSerialization:
    def test_roundtrip_preserves_payload_and_signature(self):
        keystore = KeyStore(seed=0, key_bits=128)
        keystore.register("client-0")
        tx = make_gradient_transaction("client-0", 2, np.arange(5, dtype=float), keystore=keystore)
        restored = transaction_from_dict(transaction_to_dict(tx))
        assert restored.tx_id == tx.tx_id
        np.testing.assert_allclose(restored.payload, tx.payload)
        assert restored.verify(keystore)

    def test_roundtrip_is_json_compatible(self):
        tx = make_reward_transaction("miner-0", 1, "client-3", 0.25)
        as_json = json.dumps(transaction_to_dict(tx))
        restored = transaction_from_dict(json.loads(as_json))
        assert restored.metadata["client"] == "client-3"


class TestBlockAndChainSerialization:
    def test_block_roundtrip(self):
        chain, _ = _sample_chain()
        block = chain.blocks[2]
        restored = block_from_dict(block_to_dict(block))
        assert restored.block_hash == block.block_hash
        assert restored.validate_merkle_root()
        np.testing.assert_allclose(restored.global_update(), block.global_update())

    def test_block_tamper_detected(self):
        chain, _ = _sample_chain()
        data = block_to_dict(chain.blocks[1])
        data["header"]["round_index"] = 99
        with pytest.raises(ValueError, match="hash mismatch|Merkle"):
            block_from_dict(data)

    def test_chain_roundtrip_revalidates(self):
        chain, _ = _sample_chain()
        restored = chain_from_dict(chain_to_dict(chain))
        assert restored.height == chain.height
        assert restored.is_valid()
        assert restored.last_block.block_hash == chain.last_block.block_hash
        totals = restored.total_rewards_by_client()
        assert totals["client-1"] == pytest.approx(0.5)

    def test_chain_tamper_detected(self):
        chain, _ = _sample_chain()
        data = chain_to_dict(chain)
        # Swap two blocks: the hash links no longer match.
        data["blocks"][1], data["blocks"][2] = data["blocks"][2], data["blocks"][1]
        with pytest.raises(Exception):
            chain_from_dict(data)

    def test_save_and_load_file(self, tmp_path):
        chain, _ = _sample_chain()
        path = save_chain(chain, tmp_path / "ledger.json")
        restored = load_chain(path)
        assert restored.height == chain.height
        assert restored.is_valid()

    def test_empty_chain_roundtrip(self):
        restored = chain_from_dict(chain_to_dict(Blockchain()))
        assert restored.height == 0


class TestHistoryIO:
    def _history(self):
        hist = TrainingHistory(label="x")
        for i in range(4):
            hist.append(
                RoundRecord(
                    round_index=i,
                    delay=1.5,
                    accuracy=0.2 * i,
                    train_loss=1.0 / (i + 1),
                    elapsed_time=1.5 * (i + 1),
                    participants=[0, 1],
                    discarded=[2] if i == 2 else [],
                    attackers=[3] if i == 1 else [],
                    rewards={0: 0.5, 1: 0.5},
                )
            )
        return hist

    def test_json_roundtrip(self, tmp_path):
        hist = self._history()
        path = save_history_json(hist, tmp_path / "hist.json")
        restored = load_history_json(path)
        assert restored.label == "x"
        assert len(restored) == 4
        np.testing.assert_allclose(restored.accuracies, hist.accuracies)
        np.testing.assert_allclose(restored.delays, hist.delays)
        assert restored.rounds[2].discarded == [2]
        assert restored.rounds[1].attackers == [3]
        assert restored.total_rewards() == hist.total_rewards()

    def test_csv_export(self, tmp_path):
        path = save_history_csv(self._history(), tmp_path / "hist.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("round_index,delay,accuracy")
        assert len(lines) == 5

    def test_comparison_csv_export(self, tmp_path):
        table = ComparisonResult(title="t", columns=["a", "b"])
        table.add_row(1, 2.0)
        path = save_comparison_csv(table, tmp_path / "cmp.csv")
        lines = path.read_text().strip().splitlines()
        assert lines == ["a,b", "1,2.0"]


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_run_defaults(self):
        args = build_parser().parse_args(["run", "fedavg"])
        assert args.system == "fedavg"
        assert args.clients == 12
        assert args.rounds == 8

    def test_run_blockchain(self, capsys):
        code = main(["run", "blockchain", "--clients", "8", "--rounds", "2", "--samples", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== blockchain ==" in out
        assert "avg delay" in out

    def test_run_fairbfl_with_export(self, tmp_path, capsys):
        export = tmp_path / "series.csv"
        code = main(
            [
                "run",
                "fairbfl",
                "--clients", "6",
                "--rounds", "2",
                "--samples", "400",
                "--participation", "0.5",
                "--export", str(export),
            ]
        )
        assert code == 0
        assert export.exists()
        out = capsys.readouterr().out
        assert "== fairbfl ==" in out

    def test_run_fedavg(self, capsys):
        code = main(["run", "fedavg", "--clients", "6", "--rounds", "2", "--samples", "400"])
        assert code == 0
        assert "fedavg" in capsys.readouterr().out

    def test_compare_command(self, tmp_path, capsys):
        export = tmp_path / "cmp.csv"
        code = main(
            [
                "compare",
                "--clients", "6",
                "--rounds", "2",
                "--samples", "400",
                "--export", str(export),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "System comparison" in out
        assert export.exists()
        header = export.read_text().splitlines()[0]
        assert header == "system,avg_delay_s,avg_accuracy,final_accuracy"
