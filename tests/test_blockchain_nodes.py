"""Tests for miner nodes, the broadcast network, and the consensus layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import LongestChainConsensus
from repro.blockchain.miner import Miner
from repro.blockchain.network import BroadcastNetwork
from repro.blockchain.transaction import (
    TransactionType,
    make_global_update_transaction,
    make_gradient_transaction,
)
from repro.crypto.keystore import KeyStore
from repro.utils.rng import new_rng


@pytest.fixture()
def keystore():
    store = KeyStore(seed=0, key_bits=128)
    for name in ("client-0", "client-1", "client-2", "miner-0", "miner-1"):
        store.register(name)
    return store


def _miner(miner_id="miner-0", keystore=None, verify=True):
    chain = Blockchain(enforce_pow=False)
    chain.add_genesis(Block.genesis())
    return Miner(miner_id=miner_id, chain=chain, keystore=keystore, verify_signatures=verify)


def _upload(sender, keystore, value=1.0, round_index=0, client_index=0):
    return make_gradient_transaction(
        sender, round_index, np.full(4, value), keystore=keystore, client_index=client_index
    )


class TestMiner:
    def test_receive_valid_upload(self, keystore):
        miner = _miner(keystore=keystore)
        assert miner.receive_upload(_upload("client-0", keystore))
        assert miner.gradient_count == 1

    def test_reject_unsigned_upload(self, keystore):
        miner = _miner(keystore=keystore)
        assert not miner.receive_upload(_upload("client-0", None))
        assert miner.rejected_transactions == 1

    def test_reject_unknown_sender(self, keystore):
        miner = _miner(keystore=keystore)
        ghost_store = KeyStore(seed=1, key_bits=128)
        ghost_store.register("ghost")
        tx = _upload("ghost", ghost_store)
        assert not miner.receive_upload(tx)

    def test_reject_wrong_transaction_type(self, keystore):
        miner = _miner(keystore=keystore)
        tx = make_global_update_transaction("miner-0", 0, np.ones(3), keystore=keystore)
        assert not miner.receive_upload(tx)

    def test_duplicate_upload_ignored(self, keystore):
        miner = _miner(keystore=keystore)
        tx = _upload("client-0", keystore)
        assert miner.receive_upload(tx)
        assert not miner.receive_upload(tx)
        assert miner.gradient_count == 1

    def test_unverified_mode_accepts_unsigned(self):
        miner = _miner(keystore=None, verify=False)
        assert miner.receive_upload(_upload("anyone", None))

    def test_merge_gradient_sets(self, keystore):
        a = _miner("miner-0", keystore)
        b = _miner("miner-1", keystore)
        a.receive_upload(_upload("client-0", keystore, client_index=0))
        b.receive_upload(_upload("client-1", keystore, value=2.0, client_index=1))
        added = a.merge_gradient_set(b.gradient_set)
        assert added == 1
        assert a.gradient_count == 2
        # Re-merging adds nothing (Algorithm 1 lines 20-22 idempotence).
        assert a.merge_gradient_set(b.gradient_set) == 0

    def test_merge_verifies_signatures(self, keystore):
        a = _miner("miner-0", keystore)
        forged = _upload("client-0", None)  # unsigned
        added = a.merge_gradient_set({forged.tx_id: forged})
        assert added == 0
        assert a.rejected_transactions == 1

    def test_gradient_vectors_sorted_by_sender(self, keystore):
        miner = _miner(keystore=keystore)
        miner.receive_upload(_upload("client-2", keystore, value=2.0, client_index=2))
        miner.receive_upload(_upload("client-0", keystore, value=0.0, client_index=0))
        miner.receive_upload(_upload("client-1", keystore, value=1.0, client_index=1))
        senders, matrix = miner.gradient_vectors()
        assert senders == ["client-0", "client-1", "client-2"]
        np.testing.assert_allclose(matrix[:, 0], [0.0, 1.0, 2.0])

    def test_gradient_vectors_empty(self, keystore):
        senders, matrix = _miner(keystore=keystore).gradient_vectors()
        assert senders == []
        assert matrix.shape == (0, 0)

    def test_reset_round(self, keystore):
        miner = _miner(keystore=keystore)
        miner.receive_upload(_upload("client-0", keystore))
        miner.reset_round()
        assert miner.gradient_count == 0

    def test_build_mine_accept_block(self, keystore):
        miner = _miner(keystore=keystore)
        tx = make_global_update_transaction("miner-0", 0, np.ones(3), keystore=keystore)
        block = miner.build_block(0, [tx], difficulty=8.0)
        miner.mine(block, difficulty=8.0)
        miner.accept_block(block)
        assert miner.chain.height == 2
        assert miner.chain.last_block.round_index == 0

    def test_mine_failure_raises(self, keystore):
        miner = _miner(keystore=keystore)
        block = miner.build_block(0, [], difficulty=2.0**220)
        with pytest.raises(RuntimeError, match="failed to find a nonce"):
            miner.mine(block, difficulty=2.0**220, max_attempts=2)


class TestBroadcastNetwork:
    def _network(self, nodes=("a", "b", "c"), base_latency=0.1, jitter=0.0):
        return BroadcastNetwork(
            node_ids=list(nodes),
            rng=new_rng(0, "net"),
            base_latency=base_latency,
            jitter=jitter,
        )

    def test_send_records_message(self):
        net = self._network()
        msg = net.send("a", "b", payload={"x": 1})
        assert msg.sender == "a" and msg.receiver == "b"
        assert msg.latency == pytest.approx(0.1)
        assert net.message_count == 1

    def test_self_send_has_zero_latency(self):
        net = self._network()
        assert net.send("a", "a", None).latency == 0.0

    def test_broadcast_reaches_everyone_else(self):
        net = self._network(nodes=("a", "b", "c", "d"))
        msgs = net.broadcast("a", "hello")
        assert {m.receiver for m in msgs} == {"b", "c", "d"}
        assert net.broadcast_latency(msgs) == pytest.approx(0.1)

    def test_all_pairs_exchange_latency(self):
        net = self._network()
        latency = net.all_pairs_exchange({"a": 1, "b": 2, "c": 3})
        assert latency == pytest.approx(0.1)
        # 3 senders x 2 receivers = 6 deliveries.
        assert net.message_count == 6

    def test_jitter_produces_variable_latency(self):
        net = self._network(jitter=0.5)
        latencies = {net.send("a", "b", None).latency for _ in range(10)}
        assert len(latencies) > 1

    def test_unknown_node_rejected(self):
        net = self._network()
        with pytest.raises(KeyError):
            net.send("a", "zz", None)
        with pytest.raises(KeyError):
            net.broadcast("zz", None)

    def test_validation(self):
        with pytest.raises(ValueError):
            BroadcastNetwork(node_ids=[], rng=new_rng(0, "n"))
        with pytest.raises(ValueError):
            BroadcastNetwork(node_ids=["a", "a"], rng=new_rng(0, "n"))


class TestLongestChainConsensus:
    def _replicas(self, count=3):
        genesis = Block.genesis()
        replicas = {}
        for i in range(count):
            chain = Blockchain(enforce_pow=False)
            chain.add_genesis(genesis)
            replicas[f"miner-{i}"] = chain
        return replicas

    def test_commit_appends_everywhere(self):
        replicas = self._replicas()
        consensus = LongestChainConsensus(replicas)
        tip = replicas["miner-0"].last_block
        block = Block.create(
            index=1, previous_hash=tip.block_hash, round_index=0, miner_id="miner-0",
            transactions=[],
        )
        consensus.commit(block)
        assert consensus.heights() == {"miner-0": 2, "miner-1": 2, "miner-2": 2}
        assert consensus.in_sync()

    def test_commit_rejects_invalid_block(self):
        consensus = LongestChainConsensus(self._replicas())
        bad = Block.create(
            index=1, previous_hash="00" * 32, round_index=0, miner_id="m", transactions=[]
        )
        with pytest.raises(ValueError, match="rejected"):
            consensus.commit(bad)
        assert consensus.in_sync()

    def test_requires_replicas(self):
        with pytest.raises(ValueError):
            LongestChainConsensus({})


class TestTransactionTypesEnum:
    def test_values_are_stable_identifiers(self):
        assert TransactionType.GRADIENT_UPLOAD.value == "gradient_upload"
        assert TransactionType.GLOBAL_UPDATE.value == "global_update"
        assert TransactionType.REWARD.value == "reward"
