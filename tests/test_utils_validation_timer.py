"""Tests for repro.utils.validation and repro.utils.timer."""

from __future__ import annotations

import pytest

from repro.utils.timer import SimulatedClock, WallClockTimer
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestValidation:
    def test_check_type_passes(self):
        assert check_type("x", 3, int) == 3

    def test_check_type_tuple(self):
        assert check_type("x", 3.0, (int, float)) == 3.0

    def test_check_type_fails(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "nope", int)

    def test_check_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("inf"), float("nan")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)
        with pytest.raises(ValueError):
            check_non_negative("x", float("inf"))

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_probability_accepts(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_check_probability_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)

    def test_check_in_range_inclusive(self):
        assert check_in_range("x", 5, 5, 10) == 5

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range("x", 5, 5, 10, inclusive=False)

    def test_check_in_range_rejects_outside(self):
        with pytest.raises(ValueError, match="x must lie in"):
            check_in_range("x", 11, 0, 10)


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(2.0)
        clock.advance(3.5)
        assert clock.now == pytest.approx(5.5)
        assert clock.total_elapsed == pytest.approx(5.5)

    def test_advance_records_increments(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.increments == [1.0, 2.0]

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(4.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.increments == []

    def test_advance_returns_new_time(self):
        clock = SimulatedClock()
        assert clock.advance(1.5) == pytest.approx(1.5)


class TestWallClockTimer:
    def test_measures_nonnegative_duration(self):
        with WallClockTimer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_elapsed_zero_before_use(self):
        assert WallClockTimer().elapsed == 0.0
