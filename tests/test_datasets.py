"""Tests for the dataset substrate: synthesis, partitioning, federated containers, loaders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.federated import (
    ClientDataset,
    FederatedDataset,
    inject_label_noise,
    train_test_split,
)
from repro.datasets.loaders import BatchIterator, minibatches
from repro.datasets.partition import (
    dirichlet_partition,
    iid_partition,
    partition_dataset,
    shard_partition,
)
from repro.datasets.synthetic_mnist import IMAGE_PIXELS, SyntheticMNIST, load_synthetic_mnist
from repro.utils.rng import new_rng


class TestSyntheticMNIST:
    def test_shapes_and_ranges(self, tiny_dataset):
        assert tiny_dataset.images.shape == (400, IMAGE_PIXELS)
        assert tiny_dataset.labels.shape == (400,)
        assert tiny_dataset.images.min() >= 0.0
        assert tiny_dataset.images.max() <= 1.0
        assert tiny_dataset.labels.min() >= 0
        assert tiny_dataset.labels.max() <= 9

    def test_deterministic_given_seed(self):
        a = load_synthetic_mnist(50, seed=3)
        b = load_synthetic_mnist(50, seed=3)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = load_synthetic_mnist(50, seed=3)
        b = load_synthetic_mnist(50, seed=4)
        assert not np.allclose(a.images, b.images)

    def test_all_classes_present(self):
        ds = load_synthetic_mnist(2000, seed=0)
        assert set(np.unique(ds.labels)) == set(range(10))

    def test_classes_are_learnable(self):
        """A linear probe separates the synthetic classes well above chance."""
        from repro.nn.losses import SoftmaxCrossEntropyLoss
        from repro.nn.metrics import accuracy
        from repro.nn.models import LogisticRegressionModel
        from repro.nn.optim import SGD

        ds = load_synthetic_mnist(600, seed=1, noise_std=0.3)
        model = LogisticRegressionModel(IMAGE_PIXELS, 10, new_rng(0, "probe"))
        loss_fn = SoftmaxCrossEntropyLoss()
        opt = SGD(model.parameters(), lr=0.1)
        for _ in range(40):
            opt.zero_grad()
            loss_fn.forward(model.forward(ds.images), ds.labels)
            model.backward(loss_fn.backward())
            opt.step()
        assert accuracy(model.forward(ds.images), ds.labels) > 0.6

    def test_class_proportions_respected(self):
        props = np.zeros(10)
        props[3] = 1.0
        ds = load_synthetic_mnist(100, seed=0, class_proportions=props)
        assert np.all(ds.labels == 3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            load_synthetic_mnist(0)
        with pytest.raises(ValueError):
            load_synthetic_mnist(10, noise_std=-1)
        with pytest.raises(ValueError):
            load_synthetic_mnist(10, deformation=2.0)
        with pytest.raises(ValueError):
            load_synthetic_mnist(10, class_proportions=np.ones(5))

    def test_subset(self, tiny_dataset):
        sub = tiny_dataset.subset(np.arange(10))
        assert len(sub) == 10
        np.testing.assert_array_equal(sub.labels, tiny_dataset.labels[:10])

    def test_class_counts(self, tiny_dataset):
        counts = tiny_dataset.class_counts()
        assert counts.sum() == len(tiny_dataset)
        assert counts.shape == (10,)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SyntheticMNIST(np.zeros((5, 10)), np.zeros(5))
        with pytest.raises(ValueError):
            SyntheticMNIST(np.zeros((5, IMAGE_PIXELS)), np.zeros(4))


class TestPartitioning:
    def _labels(self, n=300):
        return load_synthetic_mnist(n, seed=0).labels

    def test_iid_covers_all_indices(self):
        labels = self._labels()
        parts = iid_partition(labels, 7, new_rng(0, "iid"))
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(len(labels)))

    def test_iid_roughly_equal_sizes(self):
        parts = iid_partition(self._labels(), 6, new_rng(0, "iid"))
        sizes = [p.shape[0] for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_covers_all_indices(self):
        labels = self._labels()
        parts = shard_partition(labels, 10, new_rng(0, "shard"), shards_per_client=2)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(len(labels)))

    def test_shard_limits_classes_per_client(self):
        labels = self._labels(1000)
        parts = shard_partition(labels, 10, new_rng(0, "shard"), shards_per_client=2)
        for idx in parts:
            # 2 shards -> at most 4 distinct classes (each shard can straddle a boundary).
            assert len(np.unique(labels[idx])) <= 4

    def test_dirichlet_covers_all_indices(self):
        labels = self._labels()
        parts = dirichlet_partition(labels, 8, new_rng(0, "dir"), alpha=0.5)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(len(labels)))

    def test_dirichlet_skew_increases_with_small_alpha(self):
        labels = self._labels(2000)

        def skew(alpha):
            parts = dirichlet_partition(labels, 10, new_rng(1, "dir", alpha), alpha=alpha)
            maxima = []
            for idx in parts:
                dist = np.bincount(labels[idx], minlength=10) / idx.shape[0]
                maxima.append(dist.max())
            return float(np.mean(maxima))

        assert skew(0.1) > skew(10.0)

    def test_min_samples_guarantee(self):
        labels = self._labels()
        parts = dirichlet_partition(
            labels, 10, new_rng(2, "dir"), alpha=0.3, min_samples_per_client=2
        )
        assert all(p.shape[0] >= 2 for p in parts)

    def test_partition_dataset_dispatch(self, tiny_dataset):
        for scheme in ("iid", "shard", "dirichlet"):
            parts = partition_dataset(tiny_dataset, 4, new_rng(0, scheme), scheme=scheme)
            assert len(parts) == 4
        with pytest.raises(ValueError):
            partition_dataset(tiny_dataset, 4, new_rng(0, "x"), scheme="bogus")

    def test_invalid_args(self):
        labels = self._labels(20)
        with pytest.raises(ValueError):
            iid_partition(labels, 0, new_rng(0, "a"))
        with pytest.raises(ValueError):
            iid_partition(labels, 21, new_rng(0, "a"))
        with pytest.raises(ValueError):
            shard_partition(labels, 5, new_rng(0, "a"), shards_per_client=0)
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 5, new_rng(0, "a"), alpha=0.0)


class TestTrainTestSplit:
    def test_sizes(self, tiny_dataset):
        train, test = train_test_split(tiny_dataset, new_rng(0, "split"), test_fraction=0.25)
        assert len(train) + len(test) == len(tiny_dataset)
        assert len(test) == pytest.approx(0.25 * len(tiny_dataset), abs=1)

    def test_invalid_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            train_test_split(tiny_dataset, new_rng(0, "split"), test_fraction=0.0)


class TestFederatedDataset:
    def test_construction(self, tiny_federated):
        assert tiny_federated.num_clients == 6
        assert tiny_federated.test_images.shape[0] > 0
        assert len(tiny_federated.partition_sizes) == 6

    def test_every_client_has_train_and_val(self, tiny_federated):
        for shard in tiny_federated.clients:
            assert shard.num_samples > 0
            assert shard.val_images.shape[0] > 0

    def test_client_lookup(self, tiny_federated):
        assert tiny_federated.client(0).client_id == 0
        with pytest.raises(IndexError):
            tiny_federated.client(99)

    def test_label_distribution_normalised(self, tiny_federated):
        dist = tiny_federated.client(0).label_distribution()
        assert dist.sum() == pytest.approx(1.0)

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError):
            ClientDataset(0, np.zeros((0, 4)), np.zeros(0), np.zeros((1, 4)), np.zeros(1))

    def test_requires_clients(self):
        with pytest.raises(ValueError):
            FederatedDataset(clients=[], test_images=np.zeros((1, 4)), test_labels=np.zeros(1))

    def test_from_dataset_invalid_val_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            FederatedDataset.from_dataset(
                tiny_dataset, 4, new_rng(0, "fed"), client_val_fraction=0.0
            )

    def test_inject_label_noise(self, tiny_dataset):
        fed = FederatedDataset.from_dataset(tiny_dataset, 6, new_rng(0, "fed"), scheme="iid")
        before = [shard.labels.copy() for shard in fed.clients]
        noisy = inject_label_noise(
            fed, new_rng(0, "noise"), client_fraction=0.5, noise_level=1.0
        )
        assert len(noisy) == 3
        for cid, shard in enumerate(fed.clients):
            changed = not np.array_equal(before[cid], shard.labels)
            assert changed == (cid in noisy) or not changed  # noisy clients may coincidentally keep some labels
        # At least the noisy clients should have many changed labels.
        for cid in noisy:
            frac_changed = np.mean(before[cid] != fed.clients[cid].labels)
            assert frac_changed > 0.5

    def test_inject_label_noise_zero_fraction(self, tiny_dataset):
        fed = FederatedDataset.from_dataset(tiny_dataset, 4, new_rng(0, "fed"), scheme="iid")
        assert inject_label_noise(fed, new_rng(0, "noise"), client_fraction=0.0) == []

    def test_inject_label_noise_validation(self, tiny_federated):
        with pytest.raises(ValueError):
            inject_label_noise(tiny_federated, new_rng(0, "x"), client_fraction=2.0)
        with pytest.raises(ValueError):
            inject_label_noise(tiny_federated, new_rng(0, "x"), noise_level=-0.1)


class TestLoaders:
    def test_minibatches_cover_everything(self):
        x = np.arange(25, dtype=float).reshape(25, 1)
        y = np.arange(25)
        batches = list(minibatches(x, y, 10))
        assert [b[0].shape[0] for b in batches] == [10, 10, 5]
        collected = np.sort(np.concatenate([b[1] for b in batches]))
        np.testing.assert_array_equal(collected, y)

    def test_minibatches_shuffle(self):
        x = np.arange(50, dtype=float).reshape(50, 1)
        y = np.arange(50)
        ordered = np.concatenate([b[1] for b in minibatches(x, y, 10)])
        shuffled = np.concatenate([b[1] for b in minibatches(x, y, 10, new_rng(0, "s"))])
        assert not np.array_equal(ordered, shuffled)
        np.testing.assert_array_equal(np.sort(shuffled), y)

    def test_minibatches_validation(self):
        with pytest.raises(ValueError):
            list(minibatches(np.zeros((3, 1)), np.zeros(4), 2))
        with pytest.raises(ValueError):
            list(minibatches(np.zeros((3, 1)), np.zeros(3), 0))

    def test_batch_iterator_properties(self):
        it = BatchIterator(np.zeros((23, 2)), np.zeros(23), batch_size=5)
        assert it.num_samples == 23
        assert it.batches_per_epoch == 5
        assert sum(b[0].shape[0] for b in it.epoch()) == 23

    def test_batch_iterator_reusable(self):
        it = BatchIterator(np.zeros((10, 2)), np.arange(10), batch_size=3, rng=new_rng(0, "b"))
        first = [b[1] for b in it]
        second = [b[1] for b in it]
        assert sum(len(b) for b in first) == sum(len(b) for b in second) == 10


@given(st.integers(2, 12), st.integers(30, 120))
@settings(max_examples=20, deadline=None)
def test_partition_property_no_overlap_full_cover(num_clients, num_samples):
    """Property: every partition scheme yields disjoint index sets covering the data."""
    labels = load_synthetic_mnist(num_samples, seed=0).labels
    for scheme in ("iid", "dirichlet"):
        parts = partition_dataset(
            SyntheticMNIST(np.zeros((num_samples, IMAGE_PIXELS)), labels),
            num_clients,
            new_rng(5, scheme, num_clients, num_samples),
            scheme=scheme,
        )
        combined = np.concatenate(parts)
        assert combined.shape[0] == num_samples
        assert len(np.unique(combined)) == num_samples
