"""Documentation freshness and CLI help-snapshot tests.

Two guards that keep the docs truthful as the code grows:

* the ``--help`` output of the CLI must match the committed snapshot
  (``docs/cli_help.txt``) — regenerate with
  ``REGEN_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/test_docs_tooling.py``;
* ``tools/check_docs.py`` must pass: every public module has a docstring,
  README's benchmark map matches the ``benchmarks/`` directory, and
  ``docs/scenarios.md`` documents every ``ScenarioSpec`` field.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.cli import build_parser, main
from repro.runner.scenario import ScenarioSpec

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT = REPO_ROOT / "docs" / "cli_help.txt"


def _render_help() -> str:
    """Top-level plus per-subcommand --help text at a pinned 80-column width.

    Including the subcommand helps pins every flag (``--defense``,
    ``--round-mode``, ...) in the snapshot, which is what lets
    ``tools/check_docs.py`` assert that no CLI flag goes undocumented.
    """
    previous = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "80"
    try:
        import argparse

        parser = build_parser()
        sections = [parser.format_help()]
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for name, sub in action.choices.items():
                    sections.append(f"{'=' * 24} {name} {'=' * 24}\n" + sub.format_help())
        return "\n".join(sections)
    finally:
        if previous is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = previous


class TestCliHelpSnapshot:
    def test_help_matches_snapshot(self):
        text = _render_help()
        if os.environ.get("REGEN_SNAPSHOTS") == "1":
            SNAPSHOT.write_text(text, encoding="utf-8")
        assert SNAPSHOT.exists(), "docs/cli_help.txt snapshot is missing"
        assert text == SNAPSHOT.read_text(encoding="utf-8"), (
            "CLI --help drifted from docs/cli_help.txt; regenerate with "
            "REGEN_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/test_docs_tooling.py"
        )

    def test_help_mentions_every_subcommand(self):
        text = _render_help()
        for subcommand in ("run", "compare", "sweep"):
            assert subcommand in text

    def test_sweep_reports_malformed_scenario(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"learning_rte": 0.1}')
        code = main(["sweep", "--scenario", str(bad)])
        assert code == 2
        assert "learning_rte" in capsys.readouterr().err

    def test_sweep_runs_scenario_file(self, tmp_path, capsys):
        spec_file = tmp_path / "mini.json"
        spec_file.write_text(
            '{"system": "blockchain", "num_clients": 6, "num_rounds": 2}'
        )
        export = tmp_path / "sweep.csv"
        code = main(["sweep", "--scenario", str(spec_file), "--export", str(export)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario sweep" in out and "mini" in out
        assert export.read_text().splitlines()[0].startswith("scenario,system")


class TestDocsFreshness:
    def test_check_docs_passes(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, f"docs-check failed:\n{result.stderr}"

    def test_scenario_reference_covers_all_fields(self):
        doc = (REPO_ROOT / "docs" / "scenarios.md").read_text(encoding="utf-8")
        missing = [f for f in ScenarioSpec.field_names() if f"`{f}`" not in doc]
        assert not missing, f"docs/scenarios.md missing fields: {missing}"

    def test_readme_benchmark_map_is_fresh(self):
        import re

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", readme))
        existing = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        assert referenced == existing
