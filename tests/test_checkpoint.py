"""Tests for partial-run checkpointing (`repro.runner.checkpoint`).

The contract under test is **bit-identical resumption**: a run stopped at
round ``r`` and continued to round ``R`` through
:meth:`~repro.runner.engine.ExperimentEngine.run_partial` must produce
exactly the history — every accuracy, delay, reward map, and extras
diagnostic — of an uninterrupted ``R``-round run, across all four executor
backends.  That only holds if the checkpoint blob captures *every* piece of
trainer state a later round reads: model parameters, per-client RNG streams,
the kernel's simulated clock, detection/reward accounting, and FedProx's
straggler-drop selection stream.

Also covered: the checkpoint's validation guards (foreign blobs are rejected
as :class:`~repro.runner.checkpoint.CheckpointError`, which the engine treats
as a miss), the store-side plumbing (checkpoints ride the ``.npz`` sidecar
and are reclaimed by the existing ``gc`` orphan sweep), and the key-index
satellite (built on first use, maintained by ``put``, invalidated by ``gc``).
"""

from __future__ import annotations

import json

import pytest

from repro.runner.checkpoint import CheckpointError, CheckpointMixin
from repro.runner.engine import ExperimentEngine
from repro.runner.executor import EXECUTOR_BACKENDS
from repro.runner.scenario import ScenarioError, ScenarioSpec
from repro.store import RunStore
from repro.store.records import history_to_payload, json_sanitize
from repro.systems.registry import get_system

SMALL = dict(num_clients=6, num_samples=240, num_rounds=6, seed=3)


def small_spec(system: str = "fairbfl", **overrides) -> ScenarioSpec:
    return ScenarioSpec(**{"system": system, "name": "ckpt", **SMALL, **overrides})


def canonical(result) -> str:
    """Byte-comparable rendering of a run (history minus the label + extras)."""
    payload = history_to_payload(result.history)
    payload.pop("label", None)
    payload["run_extras"] = json_sanitize(dict(result.extras))
    return json.dumps(payload, sort_keys=True)


def straight_run(spec: ScenarioSpec):
    """The uninterrupted reference run (no store, no checkpointing)."""
    return ExperimentEngine().run_partial(spec, checkpoint=False)


class TestResumeParity:
    @pytest.mark.parametrize("backend", sorted(EXECUTOR_BACKENDS))
    def test_stop_and_resume_is_bit_identical_per_backend(self, backend, tmp_path):
        spec = small_spec(backend=backend, max_workers=2)
        reference = straight_run(spec)
        engine = ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True)
        engine.run_partial(spec, 3)  # stop at the rung boundary...
        resumed = engine.run_partial(spec, 6, resume_from=(3,))  # ...and continue
        assert canonical(resumed) == canonical(reference)
        # Only the 3 new rounds were computed on the second call.
        assert engine.round_evaluations == 6
        assert engine.runs_computed == 2

    @pytest.mark.parametrize("system", ["fairbfl", "fairbfl-discard", "fedavg"])
    def test_parity_across_checkpointable_systems(self, system, tmp_path):
        spec = small_spec(system)
        reference = straight_run(spec)
        engine = ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True)
        engine.run_partial(spec, 2)
        resumed = engine.run_partial(spec, 6, resume_from=(2,))
        assert canonical(resumed) == canonical(reference)

    def test_fedprox_selection_stream_survives_checkpointing(self, tmp_path):
        # FedProx draws from a private straggler-drop RNG every round; a
        # checkpoint that lost that stream's position would still produce a
        # *plausible* history — just not the uninterrupted one.
        spec = small_spec("fedprox", drop_percent=0.25, seed=11)
        reference = straight_run(spec)
        engine = ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True)
        engine.run_partial(spec, 2)
        engine.run_partial(spec, 4, resume_from=(2,))
        resumed = engine.run_partial(spec, 6, resume_from=(2, 4))
        assert canonical(resumed) == canonical(reference)

    def test_blockchain_simulator_checkpoints_too(self, tmp_path):
        spec = ScenarioSpec(system="blockchain", name="bc", num_clients=5, num_rounds=6, seed=2)
        reference = straight_run(spec)
        engine = ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True)
        engine.run_partial(spec, 3)
        resumed = engine.run_partial(spec, 6, resume_from=(3,))
        assert canonical(resumed) == canonical(reference)

    def test_resume_tries_highest_rung_first(self, tmp_path):
        spec = small_spec()
        engine = ExperimentEngine(store=RunStore(tmp_path), reuse_cached=True)
        engine.run_partial(spec, 2)
        engine.run_partial(spec, 4, resume_from=(2,))
        assert engine.round_evaluations == 4
        engine.run_partial(spec, 6, resume_from=(2, 4))
        # 2 + 2 + 2 rounds computed in total: the last call resumed from the
        # 4-round checkpoint, not the 2-round one.
        assert engine.round_evaluations == 6

    def test_checkpointless_record_is_a_graceful_miss(self, tmp_path):
        # A plain sweep's record has no checkpoint: resume_from pointing at it
        # must fall back to computing from scratch, bit-identically.
        spec = small_spec()
        store = RunStore(tmp_path)
        engine = ExperimentEngine(store=store, reuse_cached=True)
        prior = spec.with_overrides(num_rounds=3)
        store.put(prior, ExperimentEngine().run_partial(prior, checkpoint=False))
        assert store.get_checkpoint(prior) is None
        resumed = engine.run_partial(spec, 6, resume_from=(3,))
        assert canonical(resumed) == canonical(straight_run(spec))
        assert engine.round_evaluations == 6  # no prefix was reusable


class TestCheckpointGuards:
    def _trainer(self, spec: ScenarioSpec):
        system = get_system(spec.system)
        dataset = ExperimentEngine().dataset_for(spec)
        return system.build(spec, dataset).trainer

    def test_foreign_trainer_blob_is_rejected(self):
        fedavg = self._trainer(small_spec("fedavg"))
        fedavg.run(num_rounds=2)
        fairbfl = self._trainer(small_spec("fairbfl"))
        with pytest.raises(CheckpointError, match="written by"):
            fairbfl.restore_state(fedavg.checkpoint_state())

    def test_population_mismatch_is_rejected(self):
        donor = self._trainer(small_spec())
        donor.run(num_rounds=1)
        other = self._trainer(small_spec(num_clients=8))
        with pytest.raises(CheckpointError, match="client"):
            other.restore_state(donor.checkpoint_state())

    def test_run_until_refuses_to_rewind(self):
        trainer = self._trainer(small_spec())
        trainer.run(num_rounds=3)
        with pytest.raises(CheckpointError, match="already"):
            trainer.run_until(2)

    def test_run_until_is_idempotent_at_target(self):
        trainer = self._trainer(small_spec())
        trainer.run_until(3)
        history = trainer.run_until(3)
        assert len(history) == 3

    def test_corrupt_blob_is_rejected(self):
        trainer = self._trainer(small_spec())
        with pytest.raises(CheckpointError):
            trainer.restore_state(b"not a pickle")

    def test_engine_rejects_uncheckpointable_systems(self, toy_system_no_trainer):
        engine = ExperimentEngine()
        with pytest.raises(ScenarioError, match="partial runs"):
            engine.run_partial(ScenarioSpec(system="toy-flat", num_rounds=2), 1)

    def test_mixin_exclusions_documented_state_only(self):
        # The exclusion list is load-bearing: anything listed is rebuilt by
        # system.build(), everything else must pickle.
        assert "dataset" in CheckpointMixin.CHECKPOINT_EXCLUDE
        assert "executor" in CheckpointMixin.CHECKPOINT_EXCLUDE


@pytest.fixture
def toy_system_no_trainer():
    from repro.fl.history import RoundRecord, TrainingHistory
    from repro.systems.registry import (
        RunResult,
        System,
        SystemCapabilities,
        register_system,
        unregister_system,
    )

    class FlatRun:
        def __init__(self, rounds: int) -> None:
            self.rounds = rounds

        def run(self) -> RunResult:
            history = TrainingHistory(label="flat")
            for r in range(self.rounds):
                history.append(RoundRecord(round_index=r, delay=1.0, accuracy=0.5))
            return RunResult(system="toy-flat", history=history)

    class FlatSystem(System):
        name = "toy-flat"
        description = "no trainer attribute: not checkpointable"
        capabilities = SystemCapabilities(needs_dataset=False)

        def build(self, spec, dataset):
            return FlatRun(spec.num_rounds)

    register_system(FlatSystem())
    try:
        yield
    finally:
        unregister_system("toy-flat")


class TestStorePlumbing:
    def test_checkpoint_rides_the_npz_sidecar(self, tmp_path):
        spec = small_spec()
        store = RunStore(tmp_path)
        engine = ExperimentEngine(store=store, reuse_cached=True)
        stored = engine.run_partial(spec, 3)
        assert stored is not None
        path = store.path_for(store.key_for(spec.with_overrides(num_rounds=3)))
        assert path.exists() and path.with_suffix(".npz").exists()
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["checkpoint"]["rounds"] == 3
        assert record["checkpoint"]["bytes"] > 0
        blob = store.get_checkpoint(spec.with_overrides(num_rounds=3))
        assert isinstance(blob, bytes) and len(blob) == record["checkpoint"]["bytes"]

    def test_rung_record_is_the_plain_sweep_record(self, tmp_path):
        # Fidelity lives in the existing key semantics: the 3-round rung
        # record answers a plain `num_rounds=3` sweep lookup directly.
        spec = small_spec()
        store = RunStore(tmp_path)
        ExperimentEngine(store=store, reuse_cached=True).run_partial(spec, 3)
        sweep_engine = ExperimentEngine(store=store, reuse_cached=True)
        history = sweep_engine.run(spec.with_overrides(num_rounds=3))
        assert sweep_engine.cache_hits == 1 and sweep_engine.runs_computed == 0
        assert len(history) == 3

    def test_gc_reclaims_orphaned_partial_rung_sidecars(self, tmp_path):
        spec = small_spec()
        store = RunStore(tmp_path)
        ExperimentEngine(store=store, reuse_cached=True).run_partial(spec, 3)
        key = store.key_for(spec.with_overrides(num_rounds=3))
        json_path = store.path_for(key)
        json_path.unlink()  # simulate a kill between sidecar and record write
        assert json_path.with_suffix(".npz").exists()
        removed = store.gc()
        assert key in removed
        assert not json_path.with_suffix(".npz").exists()

    def test_gc_reclaims_stale_partial_rung_records(self, tmp_path):
        spec = small_spec()
        store = RunStore(tmp_path)
        ExperimentEngine(store=store, reuse_cached=True).run_partial(spec, 3)
        key = store.key_for(spec.with_overrides(num_rounds=3))
        path = store.path_for(key)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["spec"]["seed"] = 999  # content no longer matches its address
        path.write_text(json.dumps(record), encoding="utf-8")
        removed = store.gc()
        assert key in removed
        assert not path.exists() and not path.with_suffix(".npz").exists()


class TestKeyIndex:
    def test_index_built_on_first_use_and_updated_by_put(self, tmp_path):
        spec = ScenarioSpec(system="blockchain", name="idx", num_clients=5, num_rounds=2)
        store = RunStore(tmp_path)
        assert store._key_index is None
        assert store.keys() == ()
        assert store._key_index is not None
        result = ExperimentEngine().run_partial(spec, checkpoint=False)
        store.put(spec, result)
        # No rescan needed: put() maintained the live index.
        assert store.keys() == (store.key_for(spec),)
        assert store.query(system="blockchain")[0].key == store.key_for(spec)

    def test_gc_invalidates_index(self, tmp_path):
        spec = ScenarioSpec(system="blockchain", name="idx", num_clients=5, num_rounds=2)
        store = RunStore(tmp_path)
        store.put(spec, ExperimentEngine().run_partial(spec, checkpoint=False))
        assert len(store.keys()) == 1
        path = store.path_for(store.key_for(spec))
        path.write_text("corrupt", encoding="utf-8")
        assert store.gc()
        assert store._key_index is None
        assert store.keys() == ()

    def test_index_picks_up_external_writers(self, tmp_path):
        spec = ScenarioSpec(system="blockchain", name="idx", num_clients=5, num_rounds=2)
        reader = RunStore(tmp_path)
        assert reader.keys() == ()
        writer = RunStore(tmp_path)  # a "different process"
        writer.put(spec, ExperimentEngine().run_partial(spec, checkpoint=False))
        # The shard-stamp check spots the foreign write without an explicit
        # refresh; refresh_index() stays as the force-rescan escape hatch.
        assert reader.keys() == (reader.key_for(spec),)
        reader.refresh_index()
        assert reader.keys() == (reader.key_for(spec),)
