"""Fault injection against the experiment service.

What must survive here:

* **worker death** — a job whose child process is SIGKILLed mid-run is
  retried (and completes) or reported ``failed`` with the exit signal in
  its error; it is *never* left hanging in ``running``;
* **bad input** — malformed JSON, an unknown system, and a
  capability-invalid axis each answer a 4xx whose body carries the
  registry's actionable message, and the server stays healthy afterwards;
* **cancellation** — queued jobs cancel immediately, running jobs stop
  cooperatively, finished jobs answer 409;
* **restart recovery** — a fresh server over the same store serves the old
  server's results read-through, computing nothing.

Process-isolation tests use the spawn context, so they are safe under
pytest's importable ``__main__``.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.serve.client import ServeClient, ServeClientError

pytestmark = pytest.mark.serve

WATCHDOG_S = 60.0


def _spec_mapping(**overrides) -> dict:
    mapping = {
        "name": "fault",
        "system": "fedavg",
        "num_clients": 4,
        "num_samples": 200,
        "num_rounds": 2,
        "seed": 0,
    }
    mapping.update(overrides)
    return mapping


def _wait_for_running(client: ServeClient, job_id: str, *, need_pid: bool = False) -> dict:
    """Poll until the job is running (and, if asked, has a child pid)."""
    deadline = time.monotonic() + WATCHDOG_S
    while time.monotonic() < deadline:
        payload = client.status(job_id)
        if payload["state"] == "running" and (not need_pid or payload["worker_pid"]):
            return payload
        if payload["state"] not in ("queued", "running"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached running state")


def _post_raw(url: str, body: bytes) -> tuple[int, dict]:
    """POST raw bytes (for malformed payloads the client would never send)."""
    request = urllib.request.Request(
        url, data=body, method="POST", headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestWorkerDeath:
    def test_killed_worker_process_is_retried_and_job_completes(self, tmp_path):
        with api.serve(workers=1, store=tmp_path / "store", isolation="process") as server:
            client = ServeClient(server.url)
            job = client.submit(_spec_mapping(name="killme", num_rounds=40))[0]
            running = _wait_for_running(client, job["job_id"], need_pid=True)
            os.kill(running["worker_pid"], signal.SIGKILL)
            final = client.wait(job["job_id"], timeout=WATCHDOG_S)
            assert final["state"] == "done"
            assert final["attempts"] == 2  # the kill consumed the first attempt
            # The retried run landed in the store and serves normally.
            assert client.result(final["result_key"])["key"] == final["spec_key"]

    def test_killed_worker_with_no_retries_fails_with_exit_signal(self, tmp_path):
        with api.serve(
            workers=1, store=tmp_path / "store", isolation="process", max_retries=0
        ) as server:
            client = ServeClient(server.url)
            job = client.submit(_spec_mapping(name="killme", num_rounds=40))[0]
            running = _wait_for_running(client, job["job_id"], need_pid=True)
            os.kill(running["worker_pid"], signal.SIGKILL)
            final = client.wait(job["job_id"], timeout=WATCHDOG_S)
            assert final["state"] == "failed"
            assert "died mid-job" in final["error"]
            assert "1 attempt" in final["error"]
            # The server is still healthy and computes the next job fine.
            history = client.run(_spec_mapping(name="after"), timeout=WATCHDOG_S)
            assert len(history.accuracies) == 2


class TestBadInput:
    @pytest.fixture()
    def server(self, tmp_path):
        with api.serve(workers=1, store=tmp_path / "store") as srv:
            yield srv

    def test_malformed_json_answers_400(self, server):
        status, body = _post_raw(server.url + "/v1/runs", b"{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_empty_body_answers_400(self, server):
        status, body = _post_raw(server.url + "/v1/runs", b"")
        assert status == 400
        assert "empty" in body["error"]

    def test_unknown_system_answers_4xx_with_registry_message(self, server):
        client = ServeClient(server.url)
        with pytest.raises(ServeClientError) as excinfo:
            client.submit(_spec_mapping(system="nope"))
        assert excinfo.value.status == 422
        assert "unknown system 'nope'" in str(excinfo.value)
        assert "registered systems" in str(excinfo.value)  # the actionable part

    def test_capability_invalid_axis_answers_4xx_with_supporting_systems(self, server):
        client = ServeClient(server.url)
        with pytest.raises(ServeClientError) as excinfo:
            client.submit(_spec_mapping(system="fedavg", round_mode="async"))
        assert excinfo.value.status == 422
        message = str(excinfo.value)
        assert "does not support round_mode='async'" in message
        assert "systems supporting it" in message

    def test_non_object_document_answers_400(self, server):
        status, body = _post_raw(server.url + "/v1/runs", b'["not", "a", "mapping"]')
        assert status == 400
        assert "JSON object" in body["error"]

    def test_unknown_endpoint_answers_404(self, server):
        status, body = _post_raw(server.url + "/v1/bogus", b"{}")
        assert status == 404
        assert "no such endpoint" in body["error"]

    def test_bad_result_key_answers_400_and_missing_key_404(self, server):
        client = ServeClient(server.url)
        with pytest.raises(ServeClientError) as excinfo:
            client.result("nope")
        assert excinfo.value.status == 400
        with pytest.raises(ServeClientError) as excinfo:
            client.result("0" * 64)
        assert excinfo.value.status == 404

    def test_server_stays_healthy_after_bad_input(self, server):
        client = ServeClient(server.url)
        for _ in range(3):
            with pytest.raises(ServeClientError):
                client.submit(_spec_mapping(system="nope"))
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"]["alive"] == health["workers"]["total"]
        history = client.run(_spec_mapping(), timeout=WATCHDOG_S)
        assert len(history.accuracies) == 2


class TestCancellation:
    def test_cancel_running_job_stops_it(self, tmp_path):
        with api.serve(workers=1, store=tmp_path / "store") as server:
            client = ServeClient(server.url)
            job = client.submit(_spec_mapping(name="slow", num_rounds=60))[0]
            _wait_for_running(client, job["job_id"])
            outcome = client.cancel(job["job_id"])
            assert outcome["cancel"] == "cancelling"
            final = client.wait(job["job_id"], timeout=WATCHDOG_S)
            assert final["state"] == "cancelled"
            # A cancelled run never reached the store.
            assert client.health()["engine"]["runs_computed"] == 0

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        # One worker pinned on a long job leaves the second submission queued.
        with api.serve(workers=1, store=tmp_path / "store") as server:
            client = ServeClient(server.url)
            blocker = client.submit(_spec_mapping(name="blocker", num_rounds=60))[0]
            queued = client.submit(_spec_mapping(name="queued", seed=1, num_rounds=60))[0]
            assert queued["state"] == "queued"
            outcome = client.cancel(queued["job_id"])
            assert outcome["cancel"] == "cancelled"
            assert client.status(queued["job_id"])["state"] == "cancelled"
            client.cancel(blocker["job_id"])
            client.wait(blocker["job_id"], timeout=WATCHDOG_S)

    def test_cancel_finished_job_answers_409(self, tmp_path):
        with api.serve(workers=1, store=tmp_path / "store") as server:
            client = ServeClient(server.url)
            job = client.submit(_spec_mapping())[0]
            client.wait(job["job_id"], timeout=WATCHDOG_S)
            with pytest.raises(ServeClientError) as excinfo:
                client.cancel(job["job_id"])
            assert excinfo.value.status == 409
            assert "already finished" in str(excinfo.value)

    def test_cancel_unknown_job_answers_404(self, tmp_path):
        with api.serve(workers=1, store=tmp_path / "store") as server:
            with pytest.raises(ServeClientError) as excinfo:
                ServeClient(server.url).cancel("job-999999")
            assert excinfo.value.status == 404


class TestRestartRecovery:
    def test_new_server_over_same_store_serves_results_without_computing(self, tmp_path):
        store_root = tmp_path / "store"
        spec = _spec_mapping(name="durable")
        with api.serve(workers=1, store=store_root) as first:
            before = ServeClient(first.url).run(spec, timeout=WATCHDOG_S)
            assert ServeClient(first.url).health()["engine"]["runs_computed"] == 1

        with api.serve(workers=1, store=store_root) as second:
            client = ServeClient(second.url)
            job = client.submit(spec)[0]
            assert job["state"] == "done"
            assert job["cached"] is True
            after = client.history(job["result_key"])
            assert tuple(after.accuracies) == tuple(before.accuracies)
            assert tuple(after.delays) == tuple(before.delays)
            health = client.health()
            assert health["engine"]["runs_computed"] == 0
            assert health["readthrough_hits"] == 1
