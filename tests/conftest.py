"""Shared fixtures for the test suite.

Everything is intentionally tiny (a handful of clients, a few hundred
synthetic samples, 2-3 communication rounds) so the full suite stays fast
while still exercising every subsystem end to end.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests without installing the package (src layout).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.experiment import ExperimentSuite, build_federated_dataset  # noqa: E402
from repro.datasets.synthetic_mnist import load_synthetic_mnist  # noqa: E402
from repro.nn.models import MLPClassifier  # noqa: E402
from repro.utils.rng import new_rng  # noqa: E402


def pytest_configure(config) -> None:
    """Register the suite-local markers (pytest has no ini file here)."""
    config.addinivalue_line(
        "markers",
        "serve: end-to-end tests that boot the HTTP experiment service "
        "(job queue, worker pool, fault injection)",
    )
    config.addinivalue_line(
        "markers",
        "net: gossip-substrate tests (topologies, partitions, churn, "
        "fork choice, reorg convergence) — `pytest -m net` runs just the "
        "network layer",
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic generator for test-local randomness."""
    return new_rng(1234, "tests")


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small flat synthetic-MNIST dataset (shared, read-only)."""
    return load_synthetic_mnist(400, seed=7, noise_std=0.3)


@pytest.fixture(scope="session")
def tiny_federated():
    """A small federated dataset: 6 clients, Dirichlet non-IID."""
    return build_federated_dataset(
        num_clients=6, num_samples=400, scheme="dirichlet", seed=7, noise_std=0.3
    )


@pytest.fixture(scope="session")
def tiny_suite() -> ExperimentSuite:
    """A laptop-scale experiment suite shared across integration tests."""
    return ExperimentSuite(
        num_clients=6,
        num_samples=400,
        num_rounds=2,
        participation_fraction=0.5,
        seed=7,
    )


@pytest.fixture()
def small_model(rng) -> MLPClassifier:
    """A small MLP for layer/optimiser tests."""
    return MLPClassifier(16, 4, rng, hidden_sizes=(8,))


def assert_vectors_close(a, b, *, atol=1e-9):
    """Convenience assertion reused by several test modules."""
    np.testing.assert_allclose(np.asarray(a), np.asarray(b), atol=atol)
