"""Tests for repro.utils.rng: deterministic, independent random streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngRegistry, derive_seed, new_rng, spawn_rngs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "client", 3) == derive_seed(42, "client", 3)

    def test_different_labels_differ(self):
        assert derive_seed(42, "client", 3) != derive_seed(42, "client", 4)

    def test_different_base_seeds_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_result_is_non_negative_63_bit(self):
        for i in range(50):
            s = derive_seed(i, "label", i * 7)
            assert 0 <= s < (1 << 63)

    def test_accepts_arbitrary_label_types(self):
        assert isinstance(derive_seed(0, ("tuple", 1), 2.5, None), int)


class TestNewRng:
    def test_same_labels_same_stream(self):
        a = new_rng(9, "x").random(5)
        b = new_rng(9, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_independent(self):
        a = new_rng(9, "x").random(5)
        b = new_rng(9, "y").random(5)
        assert not np.allclose(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7, "clients")) == 7

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_are_distinct(self):
        rngs = spawn_rngs(3, 4, "m")
        draws = [r.random(3).tolist() for r in rngs]
        assert len({tuple(d) for d in draws}) == 4


class TestRngRegistry:
    def test_memoises_streams(self):
        reg = RngRegistry(seed=5)
        assert reg.get("client", 0) is reg.get("client", 0)

    def test_distinct_names_distinct_streams(self):
        reg = RngRegistry(seed=5)
        assert reg.get("a") is not reg.get("b")

    def test_len_counts_streams(self):
        reg = RngRegistry(seed=5)
        reg.get("a")
        reg.get("b")
        reg.get("a")
        assert len(reg) == 2

    def test_reset_clears(self):
        reg = RngRegistry(seed=5)
        first = reg.get("a").random()
        reg.reset()
        assert len(reg) == 0
        assert reg.get("a").random() == pytest.approx(first)

    def test_fork_gives_independent_registry(self):
        reg = RngRegistry(seed=5)
        child = reg.fork("worker", 1)
        assert child.seed != reg.seed
        assert child.get("a").random() != pytest.approx(reg.get("a").random())

    def test_registry_reproducible_across_instances(self):
        a = RngRegistry(seed=11).get("x").random(4)
        b = RngRegistry(seed=11).get("x").random(4)
        np.testing.assert_array_equal(a, b)
