"""Tests for the discrete-event kernel and its blockchain-layer actors.

Covers the kernel contract (ordering, cancellation, bounded runs, generator
processes, seeded tie-breaking, trace digests), the event-driven delivery
paths of :class:`~repro.blockchain.network.BroadcastNetwork` with its bounded
message recording, and the :class:`~repro.blockchain.mempool.Mempool`
oversized-transaction / byte-accounting edge cases.
"""

from __future__ import annotations

import pytest

from repro.blockchain.mempool import Mempool, pack_block_counts
from repro.blockchain.network import BroadcastNetwork
from repro.blockchain.transaction import make_gradient_transaction
from repro.sim.events import EventKernel, EventKernelError
from repro.utils.rng import new_rng


class TestEventKernel:
    def test_events_fire_in_time_order(self):
        kernel = EventKernel(seed=0)
        fired = []
        kernel.schedule(2.0, lambda: fired.append("b"), name="b")
        kernel.schedule(1.0, lambda: fired.append("a"), name="a")
        kernel.schedule(3.0, lambda: fired.append("c"), name="c")
        end = kernel.run()
        assert fired == ["a", "b", "c"]
        assert end == pytest.approx(3.0)
        assert kernel.events_processed == 3

    def test_clock_only_advances_at_events(self):
        kernel = EventKernel(seed=0)
        times = []
        kernel.schedule(0.5, lambda: times.append(kernel.now))
        kernel.schedule(1.5, lambda: times.append(kernel.now))
        kernel.run()
        assert times == [pytest.approx(0.5), pytest.approx(1.5)]

    def test_priority_beats_insertion_order_at_equal_time(self):
        kernel = EventKernel(seed=0)
        fired = []
        kernel.schedule(1.0, lambda: fired.append("late"), name="late", priority=5)
        kernel.schedule(1.0, lambda: fired.append("early"), name="early", priority=-5)
        kernel.run()
        assert fired == ["early", "late"]

    def test_seeded_tie_breaking_is_seed_deterministic(self):
        def order(seed: int) -> list[str]:
            kernel = EventKernel(seed=seed)
            fired: list[str] = []
            for name in ("a", "b", "c", "d", "e"):
                kernel.schedule(1.0, (lambda n=name: fired.append(n)), name=name)
            kernel.run()
            return fired

        assert order(7) == order(7)
        # Across many seeds, at least one must deviate from insertion order.
        assert any(order(s) != ["a", "b", "c", "d", "e"] for s in range(20))

    def test_cancelled_events_are_skipped(self):
        kernel = EventKernel(seed=0)
        fired = []
        victim = kernel.schedule(1.0, lambda: fired.append("victim"))
        kernel.schedule(0.5, victim.cancel)
        kernel.schedule(2.0, lambda: fired.append("survivor"))
        kernel.run()
        assert fired == ["survivor"]
        assert kernel.events_processed == 2  # cancel event + survivor

    def test_run_until_stops_before_later_events(self):
        kernel = EventKernel(seed=0)
        fired = []
        kernel.schedule(1.0, lambda: fired.append("in"))
        kernel.schedule(5.0, lambda: fired.append("out"))
        end = kernel.run(until=2.0)
        assert fired == ["in"]
        assert end == pytest.approx(2.0)
        assert kernel.pending == 1

    def test_negative_delay_and_past_scheduling_rejected(self):
        kernel = EventKernel(seed=0)
        with pytest.raises(EventKernelError):
            kernel.schedule(-0.1, lambda: None)
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        with pytest.raises(EventKernelError):
            kernel.schedule_at(0.5, lambda: None)

    def test_max_events_guards_runaway_processes(self):
        kernel = EventKernel(seed=0)

        def reschedule() -> None:
            kernel.schedule(0.1, reschedule, name="loop")

        kernel.schedule(0.1, reschedule, name="loop")
        with pytest.raises(EventKernelError, match="event budget"):
            kernel.run(max_events=50)

    def test_run_completing_exactly_at_budget_is_not_an_error(self):
        kernel = EventKernel(seed=0)
        fired = []
        for i in range(3):
            kernel.schedule(0.1 * (i + 1), (lambda i=i: fired.append(i)))
        end = kernel.run(max_events=3)
        assert fired == [0, 1, 2]
        assert end == pytest.approx(0.3)

    def test_generator_process_with_timeouts_and_signal(self):
        kernel = EventKernel(seed=0)
        log = []
        ready = kernel.signal("ready")

        def producer():
            yield 1.0
            log.append(("produced", kernel.now))
            ready.fire("payload-42")

        def consumer():
            payload = yield ready
            log.append(("consumed", kernel.now, payload))
            yield 0.5
            log.append(("done", kernel.now))

        kernel.spawn("producer", producer())
        kernel.spawn("consumer", consumer())
        kernel.run()
        assert log[0] == ("produced", pytest.approx(1.0))
        assert log[1] == ("consumed", pytest.approx(1.0), "payload-42")
        assert log[2] == ("done", pytest.approx(1.5))

    def test_signal_fires_late_waiters_immediately(self):
        kernel = EventKernel(seed=0)
        sig = kernel.signal("s")
        sig.fire("x")
        got = []

        def late():
            value = yield sig
            got.append((kernel.now, value))

        kernel.spawn("late", late(), delay=2.0)
        kernel.run()
        assert got == [(pytest.approx(2.0), "x")]

    def test_invalid_yield_type_raises(self):
        kernel = EventKernel(seed=0)

        def bad():
            yield "not-a-delay"

        kernel.spawn("bad", bad())
        with pytest.raises(EventKernelError, match="yielded"):
            kernel.run()

    def test_trace_digest_is_reproducible(self):
        def digest() -> str:
            kernel = EventKernel(seed=3, record_trace=True)
            for i in range(10):
                kernel.schedule(0.25 * i, name=f"e{i}")
            kernel.run()
            return kernel.trace_digest()

        assert digest() == digest()
        assert len(digest()) == 64


class TestEventDrivenNetwork:
    def _network(self, **kwargs):
        return BroadcastNetwork(
            node_ids=["a", "b", "c"], rng=new_rng(0, "net"), base_latency=0.2, jitter=0.0, **kwargs
        )

    def test_send_via_delivers_at_latency(self):
        kernel = EventKernel(seed=0)
        net = self._network()
        seen = []
        net.send_via(kernel, "a", "b", payload="hi", on_deliver=lambda m: seen.append((kernel.now, m)))
        assert net.message_count == 0  # not delivered yet
        kernel.run()
        assert net.message_count == 1
        (t, msg), = seen
        assert t == pytest.approx(0.2)
        assert msg.payload == "hi" and msg.latency == pytest.approx(0.2)

    def test_broadcast_via_reaches_all_peers(self):
        kernel = EventKernel(seed=0)
        net = self._network()
        receivers = []
        net.broadcast_via(kernel, "a", on_deliver=lambda m: receivers.append(m.receiver))
        kernel.run()
        assert sorted(receivers) == ["b", "c"]
        assert net.message_count == 2
        assert net.total_latency == pytest.approx(0.4)
        assert net.mean_latency == pytest.approx(0.2)

    def test_recording_is_off_by_default(self):
        net = self._network()
        for _ in range(5):
            net.send("a", "b", None)
        assert net.message_count == 5
        assert len(net.recent_messages) == 0

    def test_recording_is_bounded_when_enabled(self):
        net = self._network(record_limit=3)
        for i in range(10):
            net.send("a", "b", i)
        assert net.message_count == 10
        assert len(net.recent_messages) == 3
        assert [m.payload for m in net.recent_messages] == [7, 8, 9]

    def test_negative_record_limit_rejected(self):
        with pytest.raises(ValueError):
            self._network(record_limit=-1)


def _tx(sender: str, elements: int):
    """A gradient transaction with payload_size_bytes == 8 * elements."""
    return make_gradient_transaction(sender, 0, [0.5] * elements, keystore=None)


class TestMempoolEdgeCases:
    def test_pack_block_counts_examples(self):
        assert list(pack_block_counts([10, 10, 10], 20)) == [2, 1]
        assert list(pack_block_counts([30], 20)) == [1]  # oversized goes alone
        assert list(pack_block_counts([10, 30, 10], 20)) == [1, 1, 1]
        assert list(pack_block_counts([], 20)) == []

    def test_oversized_transaction_occupies_block_alone(self):
        pool = Mempool(block_size_bytes=64)
        pool.submit(_tx("big", 100))  # 800 bytes > 64
        pool.submit(_tx("small", 4))  # 32 bytes
        first = pool.take_block()
        assert [t.sender for t in first] == ["big"]
        second = pool.take_block()
        assert [t.sender for t in second] == ["small"]

    def test_oversized_behind_small_does_not_join_their_block(self):
        pool = Mempool(block_size_bytes=64)
        pool.submit(_tx("s1", 3))  # 24 bytes
        pool.submit(_tx("big", 100))
        pool.submit(_tx("s2", 3))
        assert pool.blocks_required() == 3
        assert [t.sender for t in pool.take_block()] == ["s1"]
        assert [t.sender for t in pool.take_block()] == ["big"]
        assert [t.sender for t in pool.take_block()] == ["s2"]

    def test_pending_bytes_is_tracked_incrementally(self):
        pool = Mempool(block_size_bytes=64)
        txs = [_tx(f"w{i}", 4) for i in range(5)]  # 32 bytes each
        pool.submit_many(txs)
        assert pool.pending_bytes == 5 * 32
        pool.take_block()  # takes two (64 bytes)
        assert pool.pending_bytes == 3 * 32
        pool.clear()
        assert pool.pending_bytes == 0 and pool.pending_count == 0

    def test_duplicate_submission_does_not_double_count_bytes(self):
        pool = Mempool(block_size_bytes=64)
        tx = _tx("w", 4)
        assert pool.submit(tx) is True
        assert pool.submit(tx) is False
        assert pool.pending_bytes == 32 and pool.pending_count == 1

    def test_take_block_then_resubmit_same_id_allowed(self):
        pool = Mempool(block_size_bytes=64)
        tx = _tx("w", 4)
        pool.submit(tx)
        pool.take_block()
        assert pool.submit(tx) is True  # mined txs leave the seen set
        assert pool.pending_bytes == 32

    def test_blocks_required_matches_take_block_drain(self):
        pool = Mempool(block_size_bytes=80)
        txs = [_tx(f"w{i}", 1 + (i % 7)) for i in range(40)]
        pool.submit_many(txs)
        predicted = pool.blocks_required()
        drained = 0
        while pool.pending_count:
            assert pool.take_block()
            drained += 1
        assert drained == predicted
