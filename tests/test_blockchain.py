"""Tests for the blockchain substrate: transactions, merkle, blocks, PoW, chain, mempool."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain.block import Block, GENESIS_PREVIOUS_HASH
from repro.blockchain.chain import Blockchain, BlockValidationError
from repro.blockchain.mempool import Mempool
from repro.blockchain.merkle import merkle_proof, merkle_root, verify_merkle_proof
from repro.blockchain.pow import mine_block, sample_mining_time, sample_winner
from repro.blockchain.transaction import (
    TransactionType,
    make_global_update_transaction,
    make_gradient_transaction,
    make_reward_transaction,
)
from repro.crypto.hashing import difficulty_to_target, meets_target
from repro.crypto.keystore import KeyStore
from repro.utils.rng import new_rng


@pytest.fixture(scope="module")
def keystore():
    store = KeyStore(seed=0, key_bits=128)
    for name in ("client-0", "client-1", "miner-0", "miner-1"):
        store.register(name)
    return store


def _gradient_tx(sender="client-0", round_index=0, size=8, keystore=None, seed=0):
    vec = new_rng(seed, "tx", sender, round_index).normal(size=size)
    return make_gradient_transaction(sender, round_index, vec, keystore=keystore)


class TestTransactions:
    def test_gradient_transaction_fields(self, keystore):
        tx = _gradient_tx(keystore=keystore)
        assert tx.tx_type is TransactionType.GRADIENT_UPLOAD
        assert tx.payload_size_bytes == 8 * 8
        assert tx.signature is not None
        assert len(tx.payload_digest) == 64

    def test_signature_verifies(self, keystore):
        tx = _gradient_tx(keystore=keystore)
        assert tx.verify(keystore)

    def test_unsigned_transaction_fails_verification(self, keystore):
        tx = _gradient_tx(keystore=None)
        assert not tx.verify(keystore)

    def test_tampering_breaks_verification(self, keystore):
        tx = _gradient_tx(keystore=keystore)
        tx.round_index = 99
        assert not tx.verify(keystore)

    def test_tx_id_changes_with_content(self, keystore):
        a = _gradient_tx(round_index=0, keystore=keystore)
        b = _gradient_tx(round_index=1, keystore=keystore)
        assert a.tx_id != b.tx_id

    def test_tx_id_deterministic(self, keystore):
        a = _gradient_tx(seed=5, keystore=keystore)
        b = _gradient_tx(seed=5, keystore=keystore)
        assert a.tx_id == b.tx_id

    def test_global_update_transaction(self, keystore):
        vec = np.ones(16)
        tx = make_global_update_transaction("miner-0", 4, vec, keystore=keystore)
        assert tx.tx_type is TransactionType.GLOBAL_UPDATE
        np.testing.assert_array_equal(tx.payload, vec)
        assert tx.verify(keystore)

    def test_reward_transaction_metadata(self, keystore):
        tx = make_reward_transaction("miner-0", 2, "client-1", 0.75, keystore=keystore)
        assert tx.tx_type is TransactionType.REWARD
        assert tx.metadata["client"] == "client-1"
        assert tx.metadata["reward"] == pytest.approx(0.75)
        assert tx.verify(keystore)


class TestMerkle:
    def test_empty_root_is_stable(self):
        assert merkle_root([]) == merkle_root([])

    def test_root_changes_with_content(self):
        assert merkle_root(["a"]) != merkle_root(["b"])
        assert merkle_root(["a", "b"]) != merkle_root(["b", "a"])

    def test_single_leaf(self):
        assert len(merkle_root(["only"])) == 64

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 13])
    def test_proofs_verify(self, count):
        tx_ids = [f"tx-{i}" for i in range(count)]
        root = merkle_root(tx_ids)
        for i, tx in enumerate(tx_ids):
            proof = merkle_proof(tx_ids, i)
            assert verify_merkle_proof(tx, proof, root)

    def test_proof_fails_for_wrong_leaf(self):
        tx_ids = ["a", "b", "c", "d"]
        root = merkle_root(tx_ids)
        proof = merkle_proof(tx_ids, 0)
        assert not verify_merkle_proof("z", proof, root)

    def test_proof_index_out_of_range(self):
        with pytest.raises(IndexError):
            merkle_proof(["a"], 3)
        with pytest.raises(ValueError):
            merkle_proof([], 0)


class TestBlocks:
    def test_genesis_shape(self):
        g = Block.genesis()
        assert g.index == 0
        assert g.header.previous_hash == GENESIS_PREVIOUS_HASH
        assert g.validate_merkle_root()

    def test_create_commits_to_transactions(self, keystore):
        txs = [_gradient_tx(keystore=keystore)]
        block = Block.create(
            index=1, previous_hash="ab" * 32, round_index=0, miner_id="m", transactions=txs
        )
        assert block.validate_merkle_root()
        block.transactions.append(_gradient_tx(sender="client-1", keystore=keystore))
        assert not block.validate_merkle_root()

    def test_block_hash_depends_on_nonce(self):
        block = Block.genesis()
        h1 = block.block_hash
        block.header.nonce += 1
        assert block.block_hash != h1

    def test_global_update_extraction(self, keystore):
        vec = np.arange(5, dtype=float)
        block = Block.create(
            index=1,
            previous_hash="ab" * 32,
            round_index=0,
            miner_id="m",
            transactions=[make_global_update_transaction("miner-0", 0, vec)],
        )
        np.testing.assert_array_equal(block.global_update(), vec)
        assert Block.genesis().global_update() is None

    def test_reward_records(self):
        block = Block.create(
            index=1,
            previous_hash="ab" * 32,
            round_index=0,
            miner_id="m",
            transactions=[make_reward_transaction("m", 0, "client-3", 0.5)],
        )
        records = block.reward_records()
        assert records == [{"client": "client-3", "reward": 0.5, "label": "high"}]

    def test_size_bytes_counts_payloads(self, keystore):
        block = Block.create(
            index=1,
            previous_hash="ab" * 32,
            round_index=0,
            miner_id="m",
            transactions=[_gradient_tx(size=100)],
        )
        assert block.size_bytes >= 800


class TestProofOfWork:
    def test_mine_block_meets_target(self):
        block = Block.genesis()
        result = mine_block(block, difficulty=8.0, max_attempts=200_000)
        assert result.success
        assert meets_target(result.block_hash, difficulty_to_target(8.0))
        assert block.header.nonce == result.nonce

    def test_mine_block_failure_reported(self):
        block = Block.genesis()
        # Astronomically high difficulty with a couple of attempts must fail.
        result = mine_block(block, difficulty=2.0**200, max_attempts=3)
        assert not result.success
        assert result.attempts == 3

    def test_mine_block_invalid_attempts(self):
        with pytest.raises(ValueError):
            mine_block(Block.genesis(), max_attempts=0)

    def test_sample_mining_time_mean(self):
        rng = new_rng(0, "mine")
        samples = [sample_mining_time(rng, difficulty=10.0, hash_rate=2.0) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(5.0, rel=0.1)

    def test_sample_mining_time_validation(self):
        rng = new_rng(0, "mine")
        with pytest.raises(ValueError):
            sample_mining_time(rng, difficulty=0.5, hash_rate=1.0)
        with pytest.raises(ValueError):
            sample_mining_time(rng, difficulty=2.0, hash_rate=0.0)

    def test_sample_winner_returns_member(self):
        rng = new_rng(0, "winner")
        winner, t = sample_winner(rng, ["a", "b", "c"], difficulty=4.0)
        assert winner in {"a", "b", "c"}
        assert t >= 0.0

    def test_sample_winner_respects_hash_rates(self):
        rng = new_rng(0, "winner")
        wins = {"fast": 0, "slow": 0}
        for _ in range(300):
            w, _ = sample_winner(
                rng, ["fast", "slow"], difficulty=4.0, hash_rates={"fast": 50.0, "slow": 1.0}
            )
            wins[w] += 1
        assert wins["fast"] > wins["slow"]

    def test_sample_winner_requires_miners(self):
        with pytest.raises(ValueError):
            sample_winner(new_rng(0, "w"), [], difficulty=2.0)


class TestBlockchain:
    def _chain_with_genesis(self, enforce_pow=False):
        chain = Blockchain(enforce_pow=enforce_pow)
        chain.add_genesis(Block.genesis())
        return chain

    def test_add_genesis_once(self):
        chain = self._chain_with_genesis()
        with pytest.raises(BlockValidationError):
            chain.add_genesis(Block.genesis())

    def test_append_valid_block(self):
        chain = self._chain_with_genesis()
        tip = chain.last_block
        block = Block.create(
            index=1, previous_hash=tip.block_hash, round_index=0, miner_id="m", transactions=[]
        )
        chain.add_block(block)
        assert chain.height == 2
        assert chain.is_valid()

    def test_reject_wrong_index(self):
        chain = self._chain_with_genesis()
        block = Block.create(
            index=5, previous_hash=chain.last_block.block_hash, round_index=0,
            miner_id="m", transactions=[],
        )
        with pytest.raises(BlockValidationError, match="index"):
            chain.add_block(block)

    def test_reject_broken_link(self):
        chain = self._chain_with_genesis()
        block = Block.create(
            index=1, previous_hash="00" * 32, round_index=0, miner_id="m", transactions=[]
        )
        with pytest.raises(BlockValidationError, match="previous-hash"):
            chain.add_block(block)

    def test_reject_merkle_mismatch(self):
        chain = self._chain_with_genesis()
        block = Block.create(
            index=1, previous_hash=chain.last_block.block_hash, round_index=0,
            miner_id="m", transactions=[],
        )
        block.transactions.append(make_reward_transaction("m", 0, "c", 1.0))
        with pytest.raises(BlockValidationError, match="Merkle"):
            chain.add_block(block)

    def test_pow_enforcement(self):
        chain = self._chain_with_genesis(enforce_pow=True)
        block = Block.create(
            index=1, previous_hash=chain.last_block.block_hash, round_index=0,
            miner_id="m", transactions=[], difficulty=2.0**40,
        )
        # Without mining, an extremely hard difficulty target will not be met.
        with pytest.raises(BlockValidationError, match="difficulty target"):
            chain.add_block(block)
        mine_block(block, difficulty=8.0)
        chain.add_block(block)
        assert chain.height == 2

    def test_tampering_detected_by_is_valid(self):
        chain = self._chain_with_genesis()
        for i in range(3):
            chain.add_block(
                Block.create(
                    index=i + 1, previous_hash=chain.last_block.block_hash,
                    round_index=i, miner_id="m",
                    transactions=[make_global_update_transaction("m", i, np.full(4, float(i)))],
                )
            )
        assert chain.is_valid()
        # Tamper with a recorded global update: the Merkle root no longer matches.
        chain.blocks[2].transactions[0] = make_global_update_transaction("m", 1, np.full(4, 99.0))
        assert not chain.is_valid()

    def test_latest_global_update(self):
        chain = self._chain_with_genesis()
        assert chain.latest_global_update() is None
        for i in range(2):
            chain.add_block(
                Block.create(
                    index=i + 1, previous_hash=chain.last_block.block_hash,
                    round_index=i, miner_id="m",
                    transactions=[make_global_update_transaction("m", i, np.full(3, float(i)))],
                )
            )
        np.testing.assert_array_equal(chain.latest_global_update(), [1.0, 1.0, 1.0])
        assert chain.block_for_round(0).round_index == 0
        assert chain.block_for_round(7) is None

    def test_total_rewards_by_client(self):
        chain = self._chain_with_genesis()
        chain.add_block(
            Block.create(
                index=1, previous_hash=chain.last_block.block_hash, round_index=0,
                miner_id="m",
                transactions=[
                    make_reward_transaction("m", 0, "client-1", 0.6),
                    make_reward_transaction("m", 0, "client-2", 0.4),
                ],
            )
        )
        chain.add_block(
            Block.create(
                index=2, previous_hash=chain.last_block.block_hash, round_index=1,
                miner_id="m", transactions=[make_reward_transaction("m", 1, "client-1", 1.0)],
            )
        )
        totals = chain.total_rewards_by_client()
        assert totals["client-1"] == pytest.approx(1.6)
        assert totals["client-2"] == pytest.approx(0.4)

    def test_copy_shares_blocks(self):
        chain = self._chain_with_genesis()
        clone = chain.copy()
        assert clone.height == chain.height
        assert clone.last_block is chain.last_block

    def test_last_block_on_empty_chain(self):
        with pytest.raises(IndexError):
            Blockchain().last_block


class TestMempool:
    def _tx(self, size_elements, idx):
        return make_gradient_transaction(f"w-{idx}", 0, np.zeros(size_elements))

    def test_submit_and_dedup(self):
        pool = Mempool(block_size_bytes=1000)
        tx = self._tx(4, 0)
        assert pool.submit(tx)
        assert not pool.submit(tx)
        assert len(pool) == 1

    def test_take_block_respects_size(self):
        pool = Mempool(block_size_bytes=100)  # 12 elements of 8 bytes = 96 per tx
        for i in range(5):
            pool.submit(self._tx(12, i))
        block = pool.take_block()
        assert len(block) == 1
        assert pool.pending_count == 4

    def test_take_block_packs_multiple_small(self):
        pool = Mempool(block_size_bytes=100)
        for i in range(5):
            pool.submit(self._tx(4, i))  # 32 bytes each
        block = pool.take_block()
        assert len(block) == 3  # 96 bytes fits, the 4th would exceed 100

    def test_oversized_transaction_still_taken_alone(self):
        pool = Mempool(block_size_bytes=50)
        pool.submit(self._tx(100, 0))
        assert len(pool.take_block()) == 1

    def test_blocks_required(self):
        pool = Mempool(block_size_bytes=100)
        txs = [self._tx(12, i) for i in range(5)]  # 96 bytes each -> one block per tx
        assert pool.blocks_required(txs) == 5
        assert pool.blocks_required([]) == 0
        small = [self._tx(4, i) for i in range(6)]  # 32 bytes -> 3 per block
        assert pool.blocks_required(small) == 2

    def test_pending_bytes_and_clear(self):
        pool = Mempool(block_size_bytes=1000)
        pool.submit_many([self._tx(4, i) for i in range(3)])
        assert pool.pending_bytes == 3 * 32
        pool.clear()
        assert pool.pending_count == 0

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            Mempool(block_size_bytes=0)


@given(st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=20, unique=True))
@settings(max_examples=30, deadline=None)
def test_merkle_proof_property(tx_ids):
    """Property: every leaf of any transaction list has a verifying audit path."""
    root = merkle_root(tx_ids)
    for i, tx in enumerate(tx_ids):
        assert verify_merkle_proof(tx, merkle_proof(tx_ids, i), root)


@given(st.integers(1, 30), st.integers(1, 12))
@settings(max_examples=30, deadline=None)
def test_mempool_conservation_property(num_txs, capacity_txs):
    """Property: draining the mempool never loses or duplicates transactions."""
    tx_bytes = 32
    pool = Mempool(block_size_bytes=tx_bytes * capacity_txs)
    txs = [make_gradient_transaction(f"w-{i}", 0, np.full(4, float(i))) for i in range(num_txs)]
    pool.submit_many(txs)
    drained = []
    while pool.pending_count:
        batch = pool.take_block()
        assert len(batch) <= capacity_txs
        drained.extend(batch)
    assert sorted(t.tx_id for t in drained) == sorted(t.tx_id for t in txs)
