"""Finite-difference gradient checks for every layer, loss, and cohort kernel.

The analytic backward passes are the foundation both execution paths share:
the serial per-client loop uses the :mod:`repro.nn.layers` modules directly,
and the vectorized cohort engine re-implements the same math as batched
``(clients, batch, features)`` kernels (:mod:`repro.nn.cohort`).  A wrong
gradient would not crash anything — training would just quietly converge to
the wrong place — so every backward is checked against a central-difference
numerical gradient here, in both the single-sample and stacked shapes.

Coverage is enforced structurally: the parametrised case lists are asserted
against the ``__all__`` of :mod:`repro.nn.layers` and
:mod:`repro.nn.losses`, so adding a layer or loss without a gradcheck fails
the suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import cohort as nn_cohort
from repro.nn import layers as nn_layers
from repro.nn import losses as nn_losses
from repro.nn.layers import Dropout, Flatten, Linear, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.module import Module

EPS = 1e-6
RTOL = 1e-5
ATOL = 1e-7

# Batch axes: the single-sample shape and a stacked batch.
BATCH_SIZES = (1, 4)


def numerical_grad(f, x: np.ndarray) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` w.r.t. every entry of ``x``.

    ``x`` is perturbed in place and restored, so ``f`` may close over it.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + EPS
        plus = f()
        x[idx] = orig - EPS
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2.0 * EPS)
    return grad


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------

def _make_input(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Inputs bounded away from zero so kinked activations (ReLU) stay smooth
    within the finite-difference step."""
    magnitude = rng.uniform(0.2, 1.5, size=shape)
    sign = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return magnitude * sign


def _layer_case(name: str):
    """Build ``(layer, feature_shape)`` for one gradcheck case.

    ``feature_shape`` excludes the batch axis.  Dropout's RNG is reseeded
    before every forward (see ``_reset``) so the numerical and analytic
    passes see the same mask.
    """
    rng = np.random.default_rng(42)
    if name == "Linear":
        return Linear(4, 3, rng), (4,)
    if name == "Linear-he-nobias":
        return Linear(4, 3, rng, init="he", bias=False), (4,)
    if name == "ReLU":
        return ReLU(), (4,)
    if name == "Tanh":
        return Tanh(), (4,)
    if name == "Sigmoid":
        return Sigmoid(), (4,)
    if name == "Softmax":
        return Softmax(), (4,)
    if name == "Dropout":
        return Dropout(0.3, rng), (4,)
    if name == "Flatten":
        return Flatten(), (2, 3)
    raise AssertionError(f"no gradcheck case for layer {name!r}")


LAYER_CASES = (
    "Linear",
    "Linear-he-nobias",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "Flatten",
)


def _reset(layer: Module) -> None:
    """Make the layer's forward pass a pure function of its input/params."""
    if isinstance(layer, Dropout):
        layer._rng = np.random.default_rng(7)


def test_every_layer_has_a_gradcheck():
    covered = {case.split("-")[0] for case in LAYER_CASES}
    assert covered == set(nn_layers.__all__)


@pytest.mark.parametrize("batch", BATCH_SIZES)
@pytest.mark.parametrize("case", LAYER_CASES)
def test_layer_gradients(case, batch):
    layer, feature_shape = _layer_case(case)
    rng = np.random.default_rng(1)
    x = _make_input((batch, *feature_shape), rng)
    _reset(layer)
    out_shape = layer.forward(x).shape
    # Random projection makes the output a scalar objective with a dense,
    # non-degenerate upstream gradient.
    projection = rng.standard_normal(out_shape)

    def objective() -> float:
        _reset(layer)
        return float(np.sum(layer.forward(x) * projection))

    # Analytic pass: input gradient from backward, parameter gradients from
    # the accumulated ``.grad`` buffers.
    layer.zero_grad()
    _reset(layer)
    layer.forward(x)
    input_grad = layer.backward(projection)

    np.testing.assert_allclose(
        input_grad, numerical_grad(objective, x), rtol=RTOL, atol=ATOL,
        err_msg=f"{case}: d(objective)/d(input) mismatch at batch={batch}",
    )
    for pname, param in layer.named_parameters():
        np.testing.assert_allclose(
            param.grad, numerical_grad(objective, param.value), rtol=RTOL, atol=ATOL,
            err_msg=f"{case}: d(objective)/d({pname}) mismatch at batch={batch}",
        )


def test_dropout_eval_mode_is_identity():
    layer = Dropout(0.5, np.random.default_rng(0))
    layer.eval()
    x = np.random.default_rng(1).standard_normal((3, 4))
    assert layer.forward(x) is not None
    np.testing.assert_array_equal(layer.forward(x), x)
    np.testing.assert_array_equal(layer.backward(x), x)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def test_every_loss_has_a_gradcheck():
    assert set(nn_losses.__all__) == {"Loss", "SoftmaxCrossEntropyLoss", "MSELoss"}


@pytest.mark.parametrize("batch", (1, 5))
def test_softmax_cross_entropy_gradient(batch):
    rng = np.random.default_rng(2)
    logits = rng.standard_normal((batch, 4))
    labels = rng.integers(0, 4, size=batch)
    loss = SoftmaxCrossEntropyLoss()

    loss.forward(logits, labels)
    analytic = loss.backward()

    def objective() -> float:
        return SoftmaxCrossEntropyLoss().forward(logits, labels)

    np.testing.assert_allclose(
        analytic, numerical_grad(objective, logits), rtol=RTOL, atol=ATOL
    )


@pytest.mark.parametrize("shape", ((1, 3), (4, 3), (2, 2, 3)))
def test_mse_gradient(shape):
    rng = np.random.default_rng(3)
    preds = rng.standard_normal(shape)
    targets = rng.standard_normal(shape)
    loss = MSELoss()

    loss.forward(preds, targets)
    analytic = loss.backward()

    def objective() -> float:
        return MSELoss().forward(preds, targets)

    np.testing.assert_allclose(
        analytic, numerical_grad(objective, preds), rtol=RTOL, atol=ATOL
    )


# ---------------------------------------------------------------------------
# Cohort kernels: the batched counterparts used by the vectorized engine
# ---------------------------------------------------------------------------

class _Stack(Module):
    """A bare layer stack exposing ``.layers`` for ``CohortModel.from_module``."""

    def __init__(self, layers) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(self.layers):
            self.register_module(f"layer{i}", layer)


def _cohort_setup(clients: int):
    """A stack covering every cohort op, with per-client flat parameters."""
    rng = np.random.default_rng(4)
    template = _Stack(
        [
            Flatten(),
            Linear(4, 3, rng),
            Tanh(),
            Linear(3, 3, rng, init="he"),
            ReLU(),
            Sigmoid(),
            Linear(3, 2, rng, bias=False),
            Softmax(),
            Dropout(0.0, rng),  # rate-0 dropout compiles to the identity op
        ]
    )
    model = nn_cohort.CohortModel.from_module(template)
    params = rng.standard_normal((clients, model.num_parameters)) * 0.5
    x = _make_input((clients, 2, 2, 2), rng)  # Flatten folds (2, 2) -> 4
    return model, params, x


@pytest.mark.parametrize("clients", (1, 3))
def test_cohort_model_gradients(clients):
    model, params, x = _cohort_setup(clients)
    rng = np.random.default_rng(5)
    projection = rng.standard_normal(model.forward(params, x).shape)

    def objective() -> float:
        return float(np.sum(model.forward(params, x) * projection))

    grads = np.zeros_like(params)
    model.forward(params, x)
    input_grad = model.backward(params, grads, projection)

    np.testing.assert_allclose(
        input_grad, numerical_grad(objective, x), rtol=RTOL, atol=ATOL,
        err_msg=f"cohort stack: input gradient mismatch at clients={clients}",
    )
    np.testing.assert_allclose(
        grads, numerical_grad(objective, params), rtol=RTOL, atol=ATOL,
        err_msg=f"cohort stack: parameter gradient mismatch at clients={clients}",
    )


@pytest.mark.parametrize("clients", (1, 3))
def test_batched_cross_entropy_gradient(clients):
    rng = np.random.default_rng(6)
    logits = rng.standard_normal((clients, 3, 4))
    labels = rng.integers(0, 4, size=(clients, 3))

    _, probs = nn_cohort.batched_softmax_cross_entropy(logits, labels)
    analytic = nn_cohort.batched_softmax_cross_entropy_grad(probs, labels)

    # Per-client losses are independent, so the gradient of their *sum* is
    # exactly the stacked per-client gradient.
    def objective() -> float:
        losses, _ = nn_cohort.batched_softmax_cross_entropy(logits, labels)
        return float(sum(losses))

    np.testing.assert_allclose(
        analytic, numerical_grad(objective, logits), rtol=RTOL, atol=ATOL
    )


def test_proximal_term_gradient():
    """`add_proximal_term` is d/dw of (mu/2)||w - w_global||^2, stacked."""
    rng = np.random.default_rng(8)
    params = rng.standard_normal((3, 5))
    global_ref = rng.standard_normal(5)
    mu = 0.1

    def objective() -> float:
        return float(0.5 * mu * np.sum((params - global_ref[None, :]) ** 2))

    grads = np.zeros_like(params)
    nn_cohort.add_proximal_term(grads, params, global_ref, mu)
    np.testing.assert_allclose(
        grads, numerical_grad(objective, params), rtol=RTOL, atol=ATOL
    )
