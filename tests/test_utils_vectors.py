"""Tests for repro.utils.vectors: packing and distance primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.vectors import (
    cosine_distance,
    cosine_similarity,
    flatten_arrays,
    l2_distance,
    l2_norm,
    pairwise_cosine_distance,
    pairwise_euclidean_distance,
    unflatten_array,
)


class TestFlattenUnflatten:
    def test_roundtrip(self):
        arrays_in = [np.arange(6).reshape(2, 3), np.array([7.0, 8.0]), np.array(9.0)]
        flat = flatten_arrays(arrays_in)
        assert flat.shape == (9,)
        restored = unflatten_array(flat, [(2, 3), (2,), ()])
        for orig, back in zip(arrays_in, restored):
            np.testing.assert_allclose(np.asarray(orig, dtype=float), back)

    def test_empty_input(self):
        assert flatten_arrays([]).shape == (0,)

    def test_unflatten_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="cannot be unflattened"):
            unflatten_array(np.zeros(5), [(2, 3)])

    def test_unflatten_returns_copies(self):
        flat = np.arange(4, dtype=float)
        (out,) = unflatten_array(flat, [(4,)])
        out[0] = 100.0
        assert flat[0] == 0.0

    def test_flatten_preserves_order(self):
        flat = flatten_arrays([np.array([1.0, 2.0]), np.array([3.0])])
        np.testing.assert_allclose(flat, [1.0, 2.0, 3.0])


class TestNormsAndDistances:
    def test_l2_norm(self):
        assert l2_norm(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_l2_distance(self):
        assert l2_distance(np.array([1.0, 1.0]), np.array([4.0, 5.0])) == pytest.approx(5.0)

    def test_l2_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            l2_distance(np.zeros(3), np.zeros(4))

    def test_cosine_similarity_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, 2 * v) == pytest.approx(1.0)

    def test_cosine_similarity_opposite(self):
        v = np.array([1.0, -1.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_cosine_similarity_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_cosine_zero_vector_treated_as_orthogonal(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0
        assert cosine_distance(np.zeros(3), np.ones(3)) == pytest.approx(1.0)

    def test_cosine_distance_range(self):
        v = np.array([1.0, 2.0])
        assert cosine_distance(v, v) == pytest.approx(0.0)
        assert cosine_distance(v, -v) == pytest.approx(2.0)

    def test_cosine_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.zeros(2), np.zeros(3))


class TestPairwiseDistances:
    def test_cosine_matrix_diagonal_zero(self):
        m = np.random.default_rng(0).normal(size=(5, 8))
        d = pairwise_cosine_distance(m)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-12)

    def test_cosine_matrix_symmetric(self):
        m = np.random.default_rng(1).normal(size=(6, 4))
        d = pairwise_cosine_distance(m)
        np.testing.assert_allclose(d, d.T, atol=1e-12)

    def test_cosine_matrix_matches_pairwise_function(self):
        m = np.random.default_rng(2).normal(size=(4, 5))
        d = pairwise_cosine_distance(m)
        for i in range(4):
            for j in range(4):
                assert d[i, j] == pytest.approx(cosine_distance(m[i], m[j]), abs=1e-9)

    def test_cosine_matrix_zero_rows(self):
        m = np.array([[0.0, 0.0], [1.0, 0.0]])
        d = pairwise_cosine_distance(m)
        assert d[0, 1] == pytest.approx(1.0)
        assert d[0, 0] == pytest.approx(0.0)

    def test_euclidean_matrix(self):
        m = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_euclidean_distance(m)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[1, 0] == pytest.approx(5.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            pairwise_cosine_distance(np.zeros(3))
        with pytest.raises(ValueError):
            pairwise_euclidean_distance(np.zeros(3))


# -- property-based tests ----------------------------------------------------
_vec = arrays(np.float64, st.integers(2, 20), elements=st.floats(-100, 100))


@given(_vec)
@settings(max_examples=50, deadline=None)
def test_flatten_unflatten_roundtrip_property(v):
    flat = flatten_arrays([v])
    (restored,) = unflatten_array(flat, [v.shape])
    np.testing.assert_allclose(restored, v)


@given(_vec)
@settings(max_examples=50, deadline=None)
def test_cosine_distance_bounds_property(v):
    w = np.roll(v, 1)
    d = cosine_distance(v, w)
    assert -1e-9 <= d <= 2.0 + 1e-9


@given(_vec)
@settings(max_examples=50, deadline=None)
def test_cosine_distance_self_is_zero_property(v):
    if np.linalg.norm(v) > 1e-6:
        assert cosine_distance(v, v) == pytest.approx(0.0, abs=1e-9)


@given(st.integers(2, 8), st.integers(2, 10))
@settings(max_examples=30, deadline=None)
def test_pairwise_cosine_bounds_property(rows, cols):
    m = np.random.default_rng(rows * 31 + cols).normal(size=(rows, cols))
    d = pairwise_cosine_distance(m)
    assert np.all(d >= -1e-9)
    assert np.all(d <= 2.0 + 1e-9)
