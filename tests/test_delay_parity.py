"""Event-driven vs analytic delay parity (the refactor's safety net).

The discrete-event kernel replaced the closed-form composition of Section 4.6
as the repository's timing source.  These tests pin the two together: for
every workload corner the paper sweeps (n ∈ {20, 100} participants,
m ∈ {2, 4} miners) the kernel-simulated per-round delay *means* of FedAvg,
FAIR-BFL, and the vanilla blockchain must land inside the analytic model's
calibrated range (±15% of its Monte-Carlo mean — generous against Monte-Carlo
error at these sample sizes, tight against structural drift).

The paper's headline delay ordering (Fig. 4a) and the kernel's seed
determinism are asserted on the same samples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.delay import AnalyticDelayModel, DelayModel, DelayParameters
from repro.utils.rng import new_rng

PARTICIPANT_COUNTS = (20, 100)
MINER_COUNTS = (2, 4)
REPS = 120
#: Relative tolerance of the calibrated range around the analytic mean.
RANGE_TOLERANCE = 0.15
BATCHES_PER_EPOCH = 5
EPOCHS = 5


def _mean(model, system: str, n: int, m: int) -> float:
    def sample() -> float:
        if system == "fedavg":
            return model.fl_round(
                num_participants=n, batches_per_epoch=BATCHES_PER_EPOCH, epochs=EPOCHS
            ).total
        if system == "fairbfl":
            return model.fairbfl_round(
                num_participants=n,
                num_miners=m,
                batches_per_epoch=BATCHES_PER_EPOCH,
                epochs=EPOCHS,
            ).total
        return model.vanilla_blockchain_round(num_transactions=n, num_miners=m).total

    return float(np.mean([sample() for _ in range(REPS)]))


@pytest.mark.parametrize("n", PARTICIPANT_COUNTS)
@pytest.mark.parametrize("m", MINER_COUNTS)
@pytest.mark.parametrize("system", ("fedavg", "fairbfl", "blockchain"))
def test_kernel_means_fall_in_analytic_calibrated_range(system, n, m):
    params = DelayParameters()
    event_mean = _mean(DelayModel(params, new_rng(n * 100 + m, "parity-event", system)), system, n, m)
    analytic_mean = _mean(
        AnalyticDelayModel(params, new_rng(n * 100 + m, "parity-analytic", system)), system, n, m
    )
    low = (1.0 - RANGE_TOLERANCE) * analytic_mean
    high = (1.0 + RANGE_TOLERANCE) * analytic_mean
    assert low <= event_mean <= high, (
        f"{system} (n={n}, m={m}): kernel mean {event_mean:.2f}s outside the "
        f"analytic calibrated range [{low:.2f}, {high:.2f}]s"
    )


def test_kernel_preserves_component_structure():
    """The five-term decomposition survives the kernel: each stage mean matches."""
    params = DelayParameters()
    event = DelayModel(params, new_rng(0, "parity-components-event"))
    analytic = AnalyticDelayModel(params, new_rng(0, "parity-components-analytic"))

    def component_means(model) -> dict[str, float]:
        draws = [
            model.fairbfl_round(
                num_participants=100, num_miners=2, batches_per_epoch=5, epochs=5
            ).as_dict()
            for _ in range(REPS)
        ]
        return {key: float(np.mean([d[key] for d in draws])) for key in ("t_local", "t_up", "t_ex", "t_gl", "t_bl")}

    ev = component_means(event)
    an = component_means(analytic)
    for key in ev:
        assert ev[key] == pytest.approx(an[key], rel=0.2, abs=0.05), (
            f"component {key}: kernel {ev[key]:.3f}s vs analytic {an[key]:.3f}s"
        )


def test_headline_delay_ordering_survives_the_kernel():
    """Fig. 4a on the kernel: FedAvg < FAIR-BFL < vanilla blockchain.

    The paper's workload: n = 100 workers at selection ratio λ = 0.1, so ten
    participants train per round while the vanilla chain still records all
    100 gradient transactions.
    """
    params = DelayParameters()
    model = DelayModel(params, new_rng(42, "parity-ordering"))
    fl = _mean(model, "fedavg", 10, 2)
    fair = _mean(model, "fairbfl", 10, 2)
    chain = _mean(model, "blockchain", 100, 2)
    assert fl < fair < chain


def test_kernel_rounds_are_seed_deterministic():
    params = DelayParameters()

    def series() -> list[float]:
        model = DelayModel(params, new_rng(7, "parity-determinism"))
        return [
            model.fairbfl_round(
                num_participants=20, num_miners=2, batches_per_epoch=5, epochs=2
            ).total
            for _ in range(10)
        ]

    assert series() == series()
