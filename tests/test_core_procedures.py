"""Tests for the five Algorithm-1 procedures as standalone composable functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.miner import Miner
from repro.blockchain.transaction import TransactionType
from repro.core.procedures import (
    RoundContext,
    procedure_exchange,
    procedure_global_update,
    procedure_local_update,
    procedure_mining,
    procedure_upload,
)
from repro.crypto.keystore import KeyStore
from repro.fl.client import FLClient, LocalTrainingConfig
from repro.incentive.contribution import ContributionConfig
from repro.incentive.strategies import DiscardStrategy, KeepAllStrategy
from repro.nn.models import LogisticRegressionModel
from repro.nn.parameters import get_flat_parameters
from repro.utils.rng import new_rng


@pytest.fixture()
def setup(tiny_federated):
    """Clients, miners, key store, and a starting global parameter vector."""
    keystore = KeyStore(seed=0, key_bits=128)
    clients = {}
    for shard in tiny_federated.clients:
        keystore.register(f"client-{shard.client_id}")
        clients[shard.client_id] = FLClient(
            shard,
            lambda: LogisticRegressionModel(784, 10, new_rng(0, "proc-model")),
            new_rng(0, "proc-client", shard.client_id),
        )
    miners = []
    genesis = Block.genesis()
    for k in range(2):
        keystore.register(f"miner-{k}")
        chain = Blockchain(enforce_pow=False)
        chain.add_genesis(genesis)
        miners.append(Miner(f"miner-{k}", chain, keystore=keystore, verify_signatures=True))
    global_params = get_flat_parameters(clients[0].model)
    return clients, miners, keystore, global_params


def _context(global_params, selected):
    return RoundContext(round_index=0, global_parameters=global_params, selected_clients=selected)


LOCAL_CFG = LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05)


class TestProcedureLocalUpdate:
    def test_produces_one_update_per_selected_client(self, setup):
        clients, _, _, global_params = setup
        ctx = _context(global_params, [0, 2, 4])
        procedure_local_update(ctx, clients, LOCAL_CFG)
        assert [u.client_id for u in ctx.updates] == [0, 2, 4]
        for u in ctx.updates:
            assert u.parameters.shape == global_params.shape
            assert not np.allclose(u.parameters, global_params)


class TestProcedureUpload:
    def test_signed_uploads_accepted_and_assigned(self, setup):
        clients, miners, keystore, global_params = setup
        ctx = _context(global_params, [0, 1, 2, 3])
        procedure_local_update(ctx, clients, LOCAL_CFG)
        procedure_upload(ctx, miners, keystore, new_rng(0, "upload"))
        assert ctx.rejected_uploads == 0
        assert sum(m.gradient_count for m in miners) == 4
        assert set(ctx.client_to_miner.keys()) == {0, 1, 2, 3}
        assert all(tx.tx_type is TransactionType.GRADIENT_UPLOAD for tx in ctx.transactions)

    def test_unsigned_uploads_rejected_when_verification_on(self, setup):
        clients, miners, _, global_params = setup
        ctx = _context(global_params, [0, 1])
        procedure_local_update(ctx, clients, LOCAL_CFG)
        # Passing no keystore leaves the transactions unsigned; miners verify and reject.
        procedure_upload(ctx, miners, None, new_rng(0, "upload"))
        assert ctx.rejected_uploads == 2
        assert sum(m.gradient_count for m in miners) == 0


class TestProcedureExchange:
    def test_all_miners_converge_to_same_set(self, setup):
        clients, miners, keystore, global_params = setup
        ctx = _context(global_params, [0, 1, 2, 3, 4])
        procedure_local_update(ctx, clients, LOCAL_CFG)
        procedure_upload(ctx, miners, keystore, new_rng(0, "upload"))
        procedure_exchange(ctx, miners)
        counts = {m.gradient_count for m in miners}
        assert counts == {5}
        assert ctx.gradient_matrix.shape[0] == 5
        assert sorted(ctx.gradient_client_ids) == [0, 1, 2, 3, 4]

    def test_single_miner_exchange_is_noop(self, setup):
        clients, miners, keystore, global_params = setup
        ctx = _context(global_params, [0, 1])
        procedure_local_update(ctx, clients, LOCAL_CFG)
        procedure_upload(ctx, miners[:1], keystore, new_rng(0, "upload"))
        procedure_exchange(ctx, miners[:1])
        assert ctx.gradient_matrix.shape[0] == 2


class TestProcedureGlobalUpdate:
    def _prepared_ctx(self, setup, selected):
        clients, miners, keystore, global_params = setup
        ctx = _context(global_params, selected)
        procedure_local_update(ctx, clients, LOCAL_CFG)
        procedure_upload(ctx, miners, keystore, new_rng(0, "upload"))
        procedure_exchange(ctx, miners)
        return ctx

    def test_simple_average_without_incentive(self, setup):
        ctx = self._prepared_ctx(setup, [0, 1, 2])
        procedure_global_update(
            ctx, contribution_config=None, strategy=None, run_incentive=False
        )
        np.testing.assert_allclose(
            ctx.new_global_parameters, ctx.gradient_matrix.mean(axis=0), atol=1e-12
        )
        assert ctx.contribution_report is None

    def test_incentive_path_produces_report_and_rewards(self, setup):
        ctx = self._prepared_ctx(setup, [0, 1, 2, 3])
        procedure_global_update(
            ctx,
            contribution_config=ContributionConfig(eps=0.8),
            strategy=KeepAllStrategy(),
        )
        assert ctx.contribution_report is not None
        assert ctx.new_global_parameters is not None
        assert set(e.client_id for e in ctx.reward_list) == set(
            ctx.contribution_report.high_contributors
        )

    def test_empty_gradient_set_keeps_previous_global(self, setup):
        _, _, _, global_params = setup
        ctx = _context(global_params, [])
        ctx.gradient_matrix = np.zeros((0, 0))
        procedure_global_update(
            ctx, contribution_config=ContributionConfig(), strategy=KeepAllStrategy()
        )
        np.testing.assert_allclose(ctx.new_global_parameters, global_params)

    def test_discard_strategy_records_outcome(self, setup):
        ctx = self._prepared_ctx(setup, [0, 1, 2, 3, 4, 5])
        procedure_global_update(
            ctx,
            contribution_config=ContributionConfig(eps=0.5),
            strategy=DiscardStrategy(),
        )
        outcome = ctx.strategy_outcome
        assert outcome is not None
        assert set(outcome.kept_client_ids) | set(outcome.discarded_client_ids) == set(
            ctx.gradient_client_ids
        )


class TestProcedureMining:
    def test_mined_block_commits_on_all_replicas(self, setup):
        clients, miners, keystore, global_params = setup
        ctx = _context(global_params, [0, 1])
        procedure_local_update(ctx, clients, LOCAL_CFG)
        procedure_upload(ctx, miners, keystore, new_rng(0, "upload"))
        procedure_exchange(ctx, miners)
        procedure_global_update(
            ctx, contribution_config=ContributionConfig(eps=0.8), strategy=KeepAllStrategy()
        )
        procedure_mining(
            ctx, miners, keystore, new_rng(0, "mining"), use_real_pow=True, pow_difficulty=4.0
        )
        assert ctx.mined_block is not None
        assert ctx.winning_miner in {"miner-0", "miner-1"}
        assert all(m.chain.height == 2 for m in miners)
        tips = {m.chain.last_block.block_hash for m in miners}
        assert len(tips) == 1
        # The block carries exactly the global update plus the reward list (Assumption 2).
        types = [tx.tx_type for tx in ctx.mined_block.transactions]
        assert types.count(TransactionType.GLOBAL_UPDATE) == 1
        assert types.count(TransactionType.REWARD) == len(ctx.reward_list)
        assert types.count(TransactionType.GRADIENT_UPLOAD) == 0

    def test_mining_requires_global_update(self, setup):
        _, miners, keystore, global_params = setup
        ctx = _context(global_params, [])
        with pytest.raises(RuntimeError, match="before procedure_global_update"):
            procedure_mining(ctx, miners, keystore, new_rng(0, "mining"))
