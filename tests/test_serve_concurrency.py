"""Stress tests for the experiment service under concurrent submission.

The serving stack's central promises, exercised with real threads against a
real (ephemeral-port) HTTP server:

* **exactly-once computation** — 16 clients submitting overlapping identical
  and distinct scenarios trigger exactly one computation per distinct
  ``spec_key``; the rest collapse single-flight onto the in-flight job or
  read through the store;
* **bit-identical results** — a history fetched over the wire equals the
  history :func:`repro.api.run` computes locally for the same spec, field
  for field;
* **liveness** — the queue drains under a watchdog; no submission pattern
  wedges a worker.

Everything runs against a tmp-path store, so the suite neither reads nor
pollutes ``results/store/``.
"""

from __future__ import annotations

import threading

import pytest

from repro import api
from repro.serve.client import ServeClient

pytestmark = pytest.mark.serve

#: Watchdog for every blocking wait in this module (the ISSUE's liveness bar).
WATCHDOG_S = 60.0


def _spec(seed: int) -> api.ScenarioSpec:
    """A tiny distinct-per-seed scenario (fast enough for 16x submission)."""
    return api.ScenarioSpec.from_mapping(
        {
            "name": f"stress-{seed}",
            "system": "fedavg",
            "num_clients": 4,
            "num_samples": 200,
            "num_rounds": 2,
            "seed": seed,
        }
    )


def _history_fields(history) -> tuple:
    """The full per-round payload of a history, for exact comparison."""
    return (
        tuple(history.accuracies),
        tuple(history.delays),
        tuple(history.elapsed_times),
    )


@pytest.fixture()
def server(tmp_path):
    srv = api.serve(workers=4, store=tmp_path / "store")
    try:
        yield srv
    finally:
        srv.close()


class TestConcurrentSubmission:
    def test_sixteen_threads_compute_each_distinct_spec_exactly_once(self, server):
        """4 distinct specs x 4 submitters each: 16 threads, 4 computations."""
        distinct = [_spec(seed) for seed in range(4)]
        barrier = threading.Barrier(16)
        outcomes: dict[int, tuple] = {}
        errors: list[BaseException] = []

        def submitter(index: int, spec: api.ScenarioSpec) -> None:
            client = ServeClient(server.url)
            try:
                barrier.wait(timeout=WATCHDOG_S)
                history = client.run(spec, timeout=WATCHDOG_S)
                outcomes[index] = (spec.seed, _history_fields(history))
            except BaseException as exc:  # noqa: BLE001 - collected for the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=submitter, args=(i, distinct[i % 4]), daemon=True)
            for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WATCHDOG_S)
        assert not any(t.is_alive() for t in threads), "a submitter hung past the watchdog"
        assert not errors, f"submitters failed: {errors}"
        assert len(outcomes) == 16

        health = ServeClient(server.url).health()
        # Exactly one computation per distinct spec; every duplicate was
        # absorbed by single-flight dedup or store read-through.
        assert health["engine"]["runs_computed"] == 4
        assert health["singleflight_hits"] + health["readthrough_hits"] == 12
        assert health["queue_depth"] == 0
        assert health["jobs"]["running"] == 0
        assert health["jobs"]["failed"] == 0

        # All 4 submitters of one spec saw the same bytes-for-bytes history.
        by_seed: dict[int, set] = {}
        for seed, fields in outcomes.values():
            by_seed.setdefault(seed, set()).add(fields)
        assert all(len(variants) == 1 for variants in by_seed.values())

    def test_served_history_is_bit_identical_to_local_run(self, server):
        spec = _spec(99)
        remote = ServeClient(server.url).run(spec, timeout=WATCHDOG_S)
        local = api.run(spec)
        assert _history_fields(remote) == _history_fields(local)

    def test_resubmitting_a_stored_spec_reads_through_without_computing(self, server):
        spec = _spec(7)
        client = ServeClient(server.url)
        client.run(spec, timeout=WATCHDOG_S)
        computed_before = client.health()["engine"]["runs_computed"]

        job = client.submit(spec)[0]
        assert job["state"] == "done"
        assert job["cached"] is True
        health = client.health()
        assert health["engine"]["runs_computed"] == computed_before
        assert health["readthrough_hits"] >= 1

    def test_burst_of_distinct_specs_drains_under_watchdog(self, server):
        client = ServeClient(server.url)
        jobs = [client.submit(_spec(100 + i))[0] for i in range(8)]
        finals = [client.wait(j["job_id"], timeout=WATCHDOG_S) for j in jobs]
        assert all(f["state"] == "done" for f in finals)
        assert {f["spec_key"] for f in finals} == {j["spec_key"] for j in jobs}
        health = client.health()
        assert health["queue_depth"] == 0
        assert health["jobs"]["done"] == 8
