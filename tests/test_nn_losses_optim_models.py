"""Tests for losses, optimizers, schedules, models, metrics, initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.initializers import he_init, normal_init, xavier_init, zeros_init
from repro.nn.layers import Linear
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.models import LogisticRegressionModel, MLPClassifier, build_model
from repro.nn.module import Parameter, Sequential
from repro.nn.optim import SGD, ConstantLR, InverseTimeDecayLR, StepDecayLR
from repro.utils.rng import new_rng


@pytest.fixture()
def rng():
    return new_rng(0, "loss-tests")


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-4

    def test_uniform_prediction_loss_is_log_classes(self):
        loss = SoftmaxCrossEntropyLoss()
        logits = np.zeros((4, 10))
        assert loss.forward(logits, np.zeros(4, dtype=int)) == pytest.approx(np.log(10))

    def test_backward_shape_and_scale(self):
        loss = SoftmaxCrossEntropyLoss()
        logits = np.zeros((4, 3))
        loss.forward(logits, np.array([0, 1, 2, 0]))
        grad = loss.backward()
        assert grad.shape == (4, 3)
        # Gradient rows sum to zero for softmax CE.
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropyLoss().backward()

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropyLoss().forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropyLoss().forward(np.zeros((2, 3)), np.array([0]))

    def test_loss_decreases_under_gradient_descent(self, rng):
        model = Sequential(Linear(5, 3, rng))
        loss_fn = SoftmaxCrossEntropyLoss()
        x = rng.normal(size=(30, 5))
        y = rng.integers(0, 3, size=30)
        opt = SGD(model.parameters(), lr=0.5)
        first = loss_fn.forward(model.forward(x), y)
        for _ in range(30):
            opt.zero_grad()
            loss_fn.forward(model.forward(x), y)
            model.backward(loss_fn.backward())
            opt.step()
        last = loss_fn.forward(model.forward(x), y)
        assert last < first


class TestMSELoss:
    def test_zero_for_equal(self):
        loss = MSELoss()
        assert loss.forward(np.ones((3, 2)), np.ones((3, 2))) == 0.0

    def test_value(self):
        loss = MSELoss()
        assert loss.forward(np.array([[2.0]]), np.array([[0.0]])) == pytest.approx(4.0)

    def test_gradient(self):
        loss = MSELoss()
        loss.forward(np.array([[2.0, 0.0]]), np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(loss.backward(), [[2.0, 0.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.05).learning_rate(100) == 0.05

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_step_decay(self):
        sched = StepDecayLR(1.0, step_size=10, gamma=0.5)
        assert sched.learning_rate(0) == 1.0
        assert sched.learning_rate(10) == 0.5
        assert sched.learning_rate(25) == 0.25

    def test_inverse_time_decay_matches_theorem_form(self):
        # eta_r = 2 / (mu * (gamma + r)) with mu = 0.5, gamma = 8.
        mu, gamma = 0.5, 8.0
        sched = InverseTimeDecayLR(beta=2.0 / mu, gamma=gamma)
        for r in (0, 1, 5, 50):
            assert sched.learning_rate(r) == pytest.approx(2.0 / (mu * (gamma + r)))

    def test_inverse_time_decay_is_decreasing(self):
        sched = InverseTimeDecayLR(1.0, 1.0)
        rates = [sched.learning_rate(r) for r in range(20)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_inverse_time_negative_step_rejected(self):
        with pytest.raises(ValueError):
            InverseTimeDecayLR(1.0, 1.0).learning_rate(-1)


class TestSGD:
    def test_basic_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad[:] = [1.0, 1.0]
        opt = SGD([p], lr=0.1)
        opt.step()
        np.testing.assert_allclose(p.value, [0.9, 1.9])

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(3):
            p.grad[:] = [1.0]
            opt.step()
        # With momentum the total displacement exceeds 3 * lr * grad.
        assert p.value[0] < -0.3

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], momentum=1.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([10.0]))
        p.grad[:] = [0.0]
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.value[0] < 10.0

    def test_schedule_used(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=StepDecayLR(1.0, step_size=1, gamma=0.1))
        assert opt.current_lr == 1.0
        p.grad[:] = [1.0]
        opt.step()
        assert opt.current_lr == pytest.approx(0.1)

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.grad += 3.0
        SGD([p]).zero_grad()
        assert np.all(p.grad == 0.0)


class TestInitializers:
    def test_zeros(self):
        assert np.all(zeros_init((3, 2)) == 0.0)

    def test_normal_std(self, rng):
        w = normal_init((2000,), rng, std=0.1)
        assert np.std(w) == pytest.approx(0.1, rel=0.15)

    def test_normal_rejects_negative_std(self, rng):
        with pytest.raises(ValueError):
            normal_init((2,), rng, std=-1.0)

    def test_xavier_bounds(self, rng):
        w = xavier_init((50, 30), rng)
        limit = np.sqrt(6.0 / 80)
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_xavier_requires_2d(self, rng):
        with pytest.raises(ValueError):
            xavier_init((5,), rng)

    def test_he_scale(self, rng):
        w = he_init((2000, 10), rng)
        assert np.std(w) == pytest.approx(np.sqrt(2.0 / 2000), rel=0.2)


class TestModels:
    def test_logreg_shapes(self, rng):
        model = LogisticRegressionModel(784, 10, rng)
        out = model.forward(np.zeros((4, 784)))
        assert out.shape == (4, 10)

    def test_mlp_shapes(self, rng):
        model = MLPClassifier(784, 10, rng, hidden_sizes=(32, 16))
        out = model.forward(np.zeros((2, 784)))
        assert out.shape == (2, 10)
        assert model.num_parameters() == 784 * 32 + 32 + 32 * 16 + 16 + 16 * 10 + 10

    def test_build_model_factory(self, rng):
        assert isinstance(build_model("logreg", 10, 3, rng), LogisticRegressionModel)
        assert isinstance(build_model("mlp", 10, 3, rng), MLPClassifier)
        with pytest.raises(ValueError):
            build_model("transformer", 10, 3, rng)

    def test_invalid_dimensions(self, rng):
        with pytest.raises(ValueError):
            LogisticRegressionModel(0, 10, rng)
        with pytest.raises(ValueError):
            MLPClassifier(10, 1, rng)
        with pytest.raises(ValueError):
            MLPClassifier(10, 3, rng, hidden_sizes=(0,))


class TestMetrics:
    def test_accuracy_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_accuracy_half(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_accuracy_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    def test_accuracy_shape_checks(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_top_k(self):
        logits = np.array([[0.1, 0.5, 0.4], [0.9, 0.05, 0.02]])
        assert top_k_accuracy(logits, np.array([2, 2]), k=2) == 0.5
        assert top_k_accuracy(logits, np.array([2, 2]), k=3) == 1.0

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)

    def test_confusion_matrix(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        cm = confusion_matrix(logits, np.array([0, 1, 1]), num_classes=2)
        np.testing.assert_array_equal(cm, [[1, 0], [1, 1]])

    def test_confusion_matrix_invalid_classes(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros((1, 2)), np.zeros(1, dtype=int), num_classes=0)
