"""Tests for the robust-aggregation defense subsystem (``fl/robust.py``).

Covers the pure kernels (Krum scores, clipping, median, trimmed mean), the
defense protocol and pipeline composition, the factory, and the integration
edge cases the threat model calls out: a Krum-degenerate attacker majority
(m >= n/2), a single-client round, defenses under the ``async`` round mode
with stale merges, and bit-identical histories across executor backends with
a defense enabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FairBFLConfig
from repro.core.fairbfl import FairBFLTrainer
from repro.fl.aggregation import AggregationError
from repro.fl.client import ClientUpdate, LocalTrainingConfig
from repro.fl.robust import (
    DEFENSES,
    DefensePipeline,
    KrumDefense,
    MedianDefense,
    NoDefense,
    NormClipDefense,
    TrimmedMeanDefense,
    check_defense,
    clip_rows,
    coordinate_median,
    krum_scores,
    make_defense,
    pairwise_sq_distances,
    trimmed_mean,
)
from repro.fl.server import CentralServer
from repro.nn.models import ModelFactory
from repro.runner.executor import EXECUTOR_BACKENDS
from repro.runner.scenario import ScenarioError, ScenarioSpec


def _honest_vs_attackers(honest: int = 6, attackers: int = 2, dim: int = 4):
    """A direction matrix: a tight honest cluster plus sign-flipped outliers."""
    rng = np.random.default_rng(0)
    base = np.ones(dim)
    rows = [base + 0.05 * rng.normal(size=dim) for _ in range(honest)]
    rows += [-base + 0.05 * rng.normal(size=dim) for _ in range(attackers)]
    return np.stack(rows, axis=0)


class TestKernels:
    def test_pairwise_sq_distances(self):
        m = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_sq_distances(m)
        assert d[0, 1] == pytest.approx(25.0)
        assert d[0, 0] == pytest.approx(0.0)

    def test_krum_scores_flag_outliers(self):
        m = _honest_vs_attackers()
        scores = krum_scores(m, num_attackers=2)
        honest_max = scores[:6].max()
        attacker_min = scores[6:].min()
        assert attacker_min > honest_max

    def test_krum_scores_single_row(self):
        np.testing.assert_array_equal(krum_scores(np.ones((1, 3)), 0), np.zeros(1))

    def test_krum_scores_degenerate_neighbour_clamp(self):
        # m >= n - 2 would ask for <= 0 neighbours; the clamp keeps one.
        m = _honest_vs_attackers(honest=2, attackers=2)
        scores = krum_scores(m, num_attackers=3)
        assert np.all(np.isfinite(scores))

    def test_krum_scores_negative_attackers(self):
        with pytest.raises(AggregationError):
            krum_scores(np.ones((3, 2)), -1)

    def test_clip_rows(self):
        m = np.array([[3.0, 4.0], [0.3, 0.4]])
        clipped, count = clip_rows(m, 1.0)
        assert count == 1
        assert np.linalg.norm(clipped[0]) == pytest.approx(1.0)
        np.testing.assert_allclose(clipped[1], m[1])
        # Direction is preserved, only the magnitude shrinks.
        np.testing.assert_allclose(clipped[0], [0.6, 0.8])

    def test_clip_rows_zero_threshold_noop(self):
        m = np.ones((2, 3))
        clipped, count = clip_rows(m, 0.0)
        assert count == 0
        np.testing.assert_array_equal(clipped, m)

    def test_coordinate_median(self):
        m = np.array([[1.0, 10.0], [2.0, 20.0], [100.0, 30.0]])
        np.testing.assert_allclose(coordinate_median(m), [2.0, 20.0])

    def test_trimmed_mean_drops_extremes(self):
        m = np.array([[0.0], [1.0], [1.0], [1.0], [100.0]])
        assert trimmed_mean(m, 1)[0] == pytest.approx(1.0)

    def test_trimmed_mean_clamps_trim(self):
        # trim=5 on 3 rows would empty every coordinate; the clamp keeps one.
        m = np.array([[0.0], [1.0], [2.0]])
        assert trimmed_mean(m, 5)[0] == pytest.approx(1.0)

    def test_trimmed_mean_zero_is_mean(self):
        m = np.array([[0.0], [4.0]])
        assert trimmed_mean(m, 0)[0] == pytest.approx(2.0)
        with pytest.raises(AggregationError):
            trimmed_mean(m, -1)

    def test_empty_matrix_rejected(self):
        for fn in (pairwise_sq_distances, coordinate_median):
            with pytest.raises(AggregationError):
                fn(np.empty((0, 3)))
        with pytest.raises(AggregationError):
            krum_scores(np.ones(3), 0)  # 1-D input


class TestDefenses:
    def test_no_defense_is_identity(self):
        m = _honest_vs_attackers()
        o = NoDefense().apply(m)
        assert o.kept_indices == tuple(range(8))
        np.testing.assert_allclose(o.aggregate, m.mean(axis=0))
        assert not o.replaces_aggregation

    def test_norm_clip_bounds_scaled_forgery(self):
        honest = np.ones((4, 3))
        forged = 50.0 * np.ones((1, 3))
        m = np.vstack([honest, forged])
        o = NormClipDefense().apply(m)
        assert o.clipped == 1
        assert o.kept_indices == tuple(range(5))
        # The forged row's pull is bounded by the median honest norm.
        assert np.linalg.norm(o.aggregate) <= np.linalg.norm(honest[0]) * 1.01

    def test_krum_selects_honest_row(self):
        m = _honest_vs_attackers()
        o = KrumDefense(0.25).apply(m)
        assert len(o.kept_indices) == 1
        assert o.kept_indices[0] < 6  # an honest row

    def test_multi_krum_rejects_attackers(self):
        m = _honest_vs_attackers()
        o = KrumDefense(0.25, multi=True).apply(m)
        assert o.kept_indices == tuple(range(6))
        assert np.dot(o.aggregate, np.ones(4)) > 0

    def test_krum_attacker_majority_degenerates_gracefully(self):
        # m >= n/2: Krum's guarantee is void (the tight majority cluster wins,
        # and here the majority is malicious).  The defense must still return
        # a valid outcome — the documented degenerate regime, not a crash.
        m = _honest_vs_attackers(honest=2, attackers=4)
        o = KrumDefense(0.4, multi=True).apply(m)
        assert 1 <= len(o.kept_indices) <= 6
        assert np.all(np.isfinite(o.aggregate))

    def test_median_replaces_aggregation(self):
        m = _honest_vs_attackers()
        o = MedianDefense().apply(m)
        assert o.replaces_aggregation
        assert o.kept_indices == tuple(range(8))
        # 6-vs-2 sign split: the median lands in the honest half-space.
        assert np.all(o.aggregate > 0)

    def test_trimmed_mean_defense(self):
        m = _honest_vs_attackers()
        o = TrimmedMeanDefense(0.25).apply(m)
        assert o.replaces_aggregation
        # Trimming 2 per side removes the attacker extremes.
        assert np.all(o.aggregate > 0.5)

    def test_single_row_survives_every_defense(self):
        row = np.full((1, 5), 3.0)
        for name in DEFENSES:
            defense = make_defense(name)
            if defense is None:
                continue
            o = defense.apply(row)
            assert o.kept_indices == (0,)
            np.testing.assert_allclose(o.aggregate, row[0])

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            KrumDefense(0.5)
        with pytest.raises(ValueError):
            TrimmedMeanDefense(-0.1)
        with pytest.raises(ValueError):
            NormClipDefense(multiplier=0.0)


class TestPipelineAndFactory:
    def test_pipeline_composes_indices_and_clips(self):
        m = _honest_vs_attackers()
        m[3] *= 40.0  # an honest-direction but scaled row
        pipeline = make_defense("norm_clip+multi_krum", attacker_fraction=0.25)
        assert isinstance(pipeline, DefensePipeline)
        o = pipeline.apply(m)
        assert o.clipped >= 1
        # Indices refer to the ORIGINAL rows, post-composition.
        assert all(i < 6 for i in o.kept_indices)
        assert pipeline.name == "norm_clip+multi_krum"

    def test_pipeline_aggregate_replacing_must_be_last(self):
        with pytest.raises(ValueError, match="last"):
            make_defense("median+krum")
        assert make_defense("norm_clip+median").replaces_aggregation

    def test_factory_none_and_errors(self):
        assert make_defense("none") is None
        with pytest.raises(ValueError, match="unknown defense"):
            make_defense("byzantine_shield")
        with pytest.raises(ValueError, match="combined"):
            make_defense("none+krum")
        with pytest.raises(ValueError, match="empty"):
            make_defense("  ")

    def test_check_defense_round_trip(self):
        for name in DEFENSES:
            assert check_defense(name) == name
        assert check_defense("norm_clip+trimmed_mean") == "norm_clip+trimmed_mean"

    def test_pipeline_needs_stages(self):
        with pytest.raises(ValueError):
            DefensePipeline([])


def _update(cid: int, params, n: int = 10) -> ClientUpdate:
    return ClientUpdate(
        client_id=cid,
        parameters=np.asarray(params, dtype=np.float64),
        num_samples=n,
        train_loss=0.1,
        val_accuracy=0.9,
    )


class TestCentralServerDefense:
    def _server(self, **kwargs) -> CentralServer:
        factory = ModelFactory(
            model_name="logreg", input_dim=4, num_classes=10, seed=0, label="test"
        )
        return CentralServer(factory, **kwargs)

    def test_median_defense_replaces_mean(self):
        server = self._server(defense="median")
        start = server.global_parameters.copy()
        updates = [
            _update(0, start + 1.0),
            _update(1, start + 1.0),
            _update(2, start + 1000.0),
        ]
        new_global = server.aggregate(updates)
        np.testing.assert_allclose(new_global, start + 1.0)
        assert server.last_defense_outcome is not None

    def test_krum_defense_filters_rows(self):
        # ceil(0.3 * 3) = 1 assumed attacker -> multi-Krum keeps 2 of 3 rows.
        server = self._server(defense="multi_krum", defense_fraction=0.3)
        start = server.global_parameters.copy()
        updates = [
            _update(0, start + 1.0),
            _update(1, start + 1.1),
            _update(2, start - 5.0),
        ]
        new_global = server.aggregate(updates)
        assert np.all(new_global > start)
        assert len(server.last_defense_outcome.kept_indices) == 2

    def test_samples_scheme_weights_survivors(self):
        server = self._server(aggregation="samples", defense="multi_krum", defense_fraction=0.3)
        start = server.global_parameters.copy()
        updates = [
            _update(0, start + 1.0, n=30),
            _update(1, start + 2.0, n=10),
            _update(2, start - 9.0, n=10),
        ]
        new_global = server.aggregate(updates)
        np.testing.assert_allclose(new_global, start + (30 * 1.0 + 10 * 2.0) / 40.0)

    def test_no_defense_path_unchanged(self):
        server = self._server()
        assert server.defense is None
        start = server.global_parameters.copy()
        new_global = server.aggregate([_update(0, start + 2.0), _update(1, start + 4.0)])
        np.testing.assert_allclose(new_global, start + 3.0)
        assert server.last_defense_outcome is None


def _trainer_config(**overrides) -> FairBFLConfig:
    base = dict(
        num_rounds=2,
        participation_fraction=1.0,
        local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
        model_name="logreg",
        enable_attacks=True,
        attack_name="sign_flip",
        min_attackers=1,
        max_attackers=1,
        seed=7,
    )
    base.update(overrides)
    return FairBFLConfig(**base)


class TestTrainerIntegration:
    def test_defense_rejections_feed_detection_logs(self, tiny_federated):
        with FairBFLTrainer(
            tiny_federated, _trainer_config(defense="multi_krum", defense_fraction=0.34)
        ) as trainer:
            history = trainer.run()
        rejected = [r.extras["defense_rejected"] for r in history.rounds]
        assert any(rejected), "multi-Krum never rejected a sign-flipped upload"
        # Every defense rejection appears in the scheduler's drop accounting.
        for log, record in zip(trainer.detection_logs(), history.rounds):
            assert set(record.extras["defense_rejected"]) <= set(log.dropped_ids)
        assert all(r.extras["defense"] == "multi_krum" for r in history.rounds)

    def test_single_client_round(self, tiny_federated):
        # participation 0.1 of 6 clients -> one selected client per round; the
        # whole defense pipeline must survive a (1, d) gradient matrix.
        for defense in ("krum", "median", "norm_clip+trimmed_mean"):
            cfg = _trainer_config(
                participation_fraction=0.1, enable_attacks=False, defense=defense
            )
            with FairBFLTrainer(tiny_federated, cfg) as trainer:
                history = trainer.run()
            assert len(history) == 2
            assert all(len(r.participants) == 1 for r in history.rounds)
            assert all(r.extras["defense_rejected"] == [] for r in history.rounds)

    def test_async_round_mode_with_defense(self, tiny_federated):
        cfg = _trainer_config(
            num_rounds=3,
            defense="norm_clip+multi_krum",
            round_mode="async",
            async_quorum=0.4,
            staleness_decay=0.5,
        )
        with FairBFLTrainer(tiny_federated, cfg) as trainer:
            history = trainer.run()
        assert len(history) == 3
        # Stale bookkeeping stays consistent: every buffered update is either
        # applied or rejected (by the defense or the alignment screen).
        stragglers = sum(len(r.extras["stragglers"]) for r in history.rounds)
        resolved = sum(
            r.extras["stale_applied"] + r.extras["stale_rejected"] for r in history.rounds
        )
        assert stragglers > 0
        assert resolved <= stragglers  # the last round's stragglers stay buffered
        assert all(np.isfinite(r.accuracy) for r in history.rounds)

    def test_backend_parity_with_defense(self, tiny_federated):
        fingerprints = {}
        finals = {}
        for backend in EXECUTOR_BACKENDS:
            cfg = _trainer_config(
                defense="norm_clip+multi_krum",
                defense_fraction=0.34,
                executor_backend=backend,
                executor_workers=2,
            )
            with FairBFLTrainer(tiny_federated, cfg) as trainer:
                history = trainer.run()
                finals[backend] = trainer.current_global_parameters()
            fingerprints[backend] = [
                (r.accuracy, r.train_loss, tuple(r.extras["defense_rejected"]))
                for r in history.rounds
            ]
        assert fingerprints["thread"] == fingerprints["serial"]
        assert fingerprints["process"] == fingerprints["serial"]
        assert finals["thread"].tobytes() == finals["serial"].tobytes()
        assert finals["process"].tobytes() == finals["serial"].tobytes()


class TestScenarioAndConfigValidation:
    def test_scenario_defense_axis_validates(self):
        spec = ScenarioSpec(defense="norm_clip+krum", defense_fraction=0.3)
        assert spec.validate() is spec
        assert spec.fairbfl_config().defense == "norm_clip+krum"
        assert spec.fedavg_config().defense == "norm_clip+krum"

    def test_scenario_rejects_unknown_defense(self):
        with pytest.raises(ScenarioError, match="unknown defense"):
            ScenarioSpec(defense="fortress").validate()
        with pytest.raises(ScenarioError, match="defense_fraction"):
            ScenarioSpec(defense="krum", defense_fraction=0.7).validate()

    def test_config_rejects_unknown_attack(self):
        with pytest.raises(ValueError, match="attack_name"):
            FairBFLConfig(attack_name="backdoor")

    def test_label_flip_reaches_config(self):
        cfg = FairBFLConfig(attack_name="label_flip")
        assert cfg.attack_name == "label_flip"
