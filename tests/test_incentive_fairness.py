"""Tests for the reward-fairness metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExperimentSuite, run_fairbfl
from repro.incentive.fairness import (
    fairness_report,
    gini_coefficient,
    jains_index,
    reward_contribution_correlation,
)


class TestJainsIndex:
    def test_equal_allocation_is_one(self):
        assert jains_index([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_k(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_one(self):
        assert jains_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        x = [0.2, 0.5, 1.3]
        assert jains_index(x) == pytest.approx(jains_index([10 * v for v in x]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            jains_index([-1.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            jains_index([])


class TestGini:
    def test_equal_allocation_is_zero(self):
        assert gini_coefficient([2.0, 2.0, 2.0]) == pytest.approx(0.0, abs=1e-12)

    def test_single_winner_approaches_one(self):
        g = gini_coefficient([0.0] * 9 + [1.0])
        assert g == pytest.approx(0.9, abs=1e-9)

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_order_invariant(self):
        assert gini_coefficient([3.0, 1.0, 2.0]) == pytest.approx(gini_coefficient([1.0, 2.0, 3.0]))


class TestCorrelation:
    def test_perfectly_proportional(self):
        assert reward_contribution_correlation([1, 2, 3], [0.1, 0.2, 0.3]) == pytest.approx(1.0)

    def test_anti_correlated(self):
        assert reward_contribution_correlation([3, 2, 1], [0.1, 0.2, 0.3]) == pytest.approx(-1.0)

    def test_constant_inputs_return_zero(self):
        assert reward_contribution_correlation([1, 1, 1], [0.1, 0.2, 0.3]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            reward_contribution_correlation([1, 2], [0.1, 0.2, 0.3])


class TestFairnessReport:
    def test_report_fields(self):
        report = fairness_report({0: 1.0, 1: 1.0, 2: 2.0}, {0: 0.2, 1: 0.2, 2: 0.4})
        assert report["num_clients"] == 3
        assert report["total_reward"] == pytest.approx(4.0)
        assert 0.0 < report["jains_index"] <= 1.0
        assert 0.0 <= report["gini_coefficient"] < 1.0
        assert report["max_share"] == pytest.approx(0.5)
        assert report["reward_contribution_correlation"] == pytest.approx(1.0)

    def test_report_requires_rewards(self):
        with pytest.raises(ValueError):
            fairness_report({})

    def test_report_on_real_run(self, tiny_suite):
        """The incentive mechanism spreads rewards across clients rather than to one winner."""
        trainer, history = run_fairbfl(
            tiny_suite.dataset(), config=tiny_suite.fairbfl_config(num_rounds=3)
        )
        totals = trainer.reward_ledger.totals
        report = fairness_report(totals)
        assert report["total_reward"] > 0
        assert report["jains_index"] > 1.0 / len(totals)
        assert report["max_share"] < 1.0


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_fairness_metric_bounds_property(rewards):
    """Property: Jain's index lies in (0, 1] and Gini in [0, 1) for any non-negative allocation."""
    j = jains_index(rewards)
    g = gini_coefficient(rewards)
    assert 0.0 < j <= 1.0 + 1e-12
    assert -1e-12 <= g < 1.0
    # Perfectly equal allocations maximise Jain and minimise Gini.
    equal = [1.0] * len(rewards)
    assert jains_index(equal) >= j - 1e-9
    assert gini_coefficient(equal) <= g + 1e-9
