"""Tests for the runner subsystem: executor backends, scenarios, engine.

The central claims under test:

* **backend parity** — serial, thread and process executors produce
  bit-identical training histories for the same seed;
* **scenario layer** — JSON/TOML documents expand to validated specs, matrix
  grids multiply correctly, and malformed inputs fail with `ScenarioError`
  naming the problem;
* **engine equivalence** — `ExperimentSuite.run()` (the path every benchmark
  now drives through) reproduces the legacy hand-wired `run_fairbfl(...)`
  histories exactly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import FairBFLConfig
from repro.core.experiment import run_fairbfl
from repro.core.fairbfl import FairBFLTrainer
from repro.fl.aggregation import AggregationError, aggregate_client_updates, simple_average
from repro.fl.client import ClientUpdate, LocalTrainingConfig
from repro.fl.server import CentralServer
from repro.runner.engine import ExperimentEngine
from repro.runner.executor import EXECUTOR_BACKENDS, ParallelExecutor, resolve_worker_count
from repro.runner.scenario import (
    ScenarioError,
    ScenarioMatrix,
    ScenarioSpec,
    load_scenario_file,
    scenarios_from_mapping,
)


def _fingerprint(history):
    return [
        (r.round_index, r.accuracy, r.train_loss, r.delay, tuple(r.participants), tuple(r.attackers))
        for r in history.rounds
    ]


class TestParallelExecutor:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            ParallelExecutor("fibers")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="max_workers"):
            ParallelExecutor("thread", max_workers=0)

    def test_resolve_worker_count(self):
        assert resolve_worker_count(3) == 3
        assert resolve_worker_count(None) >= 1
        with pytest.raises(ValueError):
            resolve_worker_count(-1)

    def test_context_manager_closes_pool(self, tiny_federated):
        cfg = FairBFLConfig(
            num_rounds=1,
            participation_fraction=0.5,
            local=LocalTrainingConfig(epochs=1, batch_size=10, learning_rate=0.05),
            model_name="logreg",
            executor_backend="thread",
            seed=7,
        )
        with FairBFLTrainer(tiny_federated, cfg) as trainer:
            trainer.run()
            assert trainer.executor._pool is not None
        assert trainer.executor._pool is None


class TestBackendParity:
    """Serial vs thread vs process histories are bit-identical."""

    @pytest.fixture(scope="class")
    def parity_histories(self, tiny_federated):
        histories = {}
        finals = {}
        for backend in EXECUTOR_BACKENDS:
            cfg = FairBFLConfig(
                num_rounds=2,
                participation_fraction=0.5,
                local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
                model_name="logreg",
                enable_attacks=True,
                executor_backend=backend,
                executor_workers=2,
                seed=7,
            )
            with FairBFLTrainer(tiny_federated, cfg) as trainer:
                histories[backend] = trainer.run()
                finals[backend] = trainer.current_global_parameters()
        return histories, finals

    def test_round_records_identical(self, parity_histories):
        histories, _ = parity_histories
        serial = _fingerprint(histories["serial"])
        assert _fingerprint(histories["thread"]) == serial
        assert _fingerprint(histories["process"]) == serial

    def test_final_parameters_bitwise_identical(self, parity_histories):
        _, finals = parity_histories
        assert finals["serial"].tobytes() == finals["thread"].tobytes()
        assert finals["serial"].tobytes() == finals["process"].tobytes()

    def test_fedavg_backend_parity(self, tiny_suite):
        engine = ExperimentEngine()
        serial = engine.run(tiny_suite.spec("fedavg", num_rounds=2))
        threaded = engine.run(tiny_suite.spec("fedavg", num_rounds=2, backend="thread"))
        assert _fingerprint(serial) == _fingerprint(threaded)


class TestScenarioSpec:
    def test_defaults_validate(self):
        spec = ScenarioSpec()
        assert spec.validate() is spec

    def test_unknown_field_is_named(self):
        with pytest.raises(ScenarioError, match="learning_rte"):
            ScenarioSpec.from_mapping({"learning_rte": 0.1})

    def test_type_coercion_and_rejection(self):
        spec = ScenarioSpec.from_mapping({"num_clients": 8, "learning_rate": 0.1, "hidden_sizes": [32, 16]})
        assert spec.num_clients == 8 and spec.hidden_sizes == (32, 16)
        with pytest.raises(ScenarioError, match="num_clients"):
            ScenarioSpec.from_mapping({"num_clients": "many"})
        with pytest.raises(ScenarioError, match="attacks"):
            ScenarioSpec.from_mapping({"attacks": "yes"})

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"system": "fedsgd"}, "unknown system"),
            ({"scheme": "zipf"}, "partition scheme"),
            ({"backend": "gpu"}, "unknown backend"),
            ({"num_clients": 0}, "num_clients"),
            ({"participation": 1.5}, "participation"),
            ({"strategy": "purge"}, "strategy"),
            ({"mode": "half"}, "mode"),
            ({"max_workers": 0}, "max_workers"),
            ({"low_quality_fraction": 2.0}, "low_quality_fraction"),
        ],
    )
    def test_invalid_values_raise_scenario_error(self, overrides, match):
        with pytest.raises(ScenarioError, match=match):
            ScenarioSpec.from_mapping(overrides)

    def test_scenario_error_is_value_error(self):
        assert issubclass(ScenarioError, ValueError)

    def test_discard_system_forces_strategy(self):
        cfg = ScenarioSpec(system="fairbfl-discard").fairbfl_config()
        assert cfg.strategy == "discard"

    def test_round_trip_mapping(self):
        spec = ScenarioSpec(system="fedprox", proximal_mu=0.2, hidden_sizes=(8,))
        clone = ScenarioSpec.from_mapping(spec.to_mapping())
        assert clone == spec


class TestScenarioMatrix:
    def test_cartesian_expansion(self):
        base = ScenarioSpec(name="grid", num_clients=6, num_samples=300, num_rounds=1)
        specs = ScenarioMatrix(base, {"strategy": ["keep", "discard"], "learning_rate": [0.01, 0.1]}).expand()
        assert len(specs) == 4
        names = [s.name for s in specs]
        assert names[0] == "grid[strategy=keep,learning_rate=0.01]"
        assert {(s.strategy, s.learning_rate) for s in specs} == {
            ("keep", 0.01), ("keep", 0.1), ("discard", 0.01), ("discard", 0.1),
        }

    def test_unknown_matrix_field(self):
        with pytest.raises(ScenarioError, match="unknown matrix field"):
            ScenarioMatrix(ScenarioSpec(), {"learning_rte": [0.1]}).expand()

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioError, match="non-empty list"):
            ScenarioMatrix(ScenarioSpec(), {"learning_rate": []}).expand()

    def test_invalid_grid_point_rejected(self):
        with pytest.raises(ScenarioError, match="participation"):
            ScenarioMatrix(ScenarioSpec(), {"participation": [0.5, 2.0]}).expand()


class TestScenarioDocuments:
    def test_single_mapping(self):
        specs = scenarios_from_mapping({"system": "fedavg", "num_rounds": 3}, default_name="solo")
        assert len(specs) == 1 and specs[0].name == "solo" and specs[0].system == "fedavg"

    def test_base_plus_scenarios(self):
        specs = scenarios_from_mapping(
            {
                "base": {"num_clients": 6, "num_rounds": 1},
                "scenarios": [{"name": "a", "system": "fairbfl"}, {"system": "fedavg"}],
            }
        )
        assert [s.name for s in specs] == ["a", "scenario-1"]
        assert all(s.num_clients == 6 for s in specs)

    def test_matrix_document(self):
        specs = scenarios_from_mapping(
            {"name": "m", "base": {"num_rounds": 1}, "matrix": {"miners": [2, 4]}}
        )
        assert [s.miners for s in specs] == [2, 4]

    def test_scenarios_and_matrix_conflict(self):
        with pytest.raises(ScenarioError, match="both"):
            scenarios_from_mapping({"scenarios": [{}], "matrix": {}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ScenarioError, match="mapping"):
            scenarios_from_mapping([1, 2, 3])

    def test_load_json_and_toml(self, tmp_path):
        jpath = tmp_path / "one.json"
        jpath.write_text(json.dumps({"system": "blockchain", "num_rounds": 2}))
        (tmp_path / "two.toml").write_text(
            'name = "t"\n[base]\nnum_rounds = 1\n[matrix]\nstrategy = ["keep", "discard"]\n'
        )
        jspecs = load_scenario_file(jpath)
        assert jspecs[0].system == "blockchain" and jspecs[0].name == "one"
        tspecs = load_scenario_file(tmp_path / "two.toml")
        assert [s.strategy for s in tspecs] == ["keep", "discard"]

    def test_load_rejects_missing_bad_suffix_and_bad_syntax(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            load_scenario_file(tmp_path / "nope.json")
        bad = tmp_path / "spec.yaml"
        bad.write_text("system: fairbfl")
        with pytest.raises(ScenarioError, match="unsupported scenario file type"):
            load_scenario_file(bad)
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario_file(broken)


class TestExperimentEngine:
    def test_dataset_memoised_across_specs(self):
        engine = ExperimentEngine()
        a = ScenarioSpec(num_clients=6, num_samples=300)
        b = a.with_overrides(learning_rate=0.2, strategy="discard")
        assert engine.dataset_for(a) is engine.dataset_for(b)
        c = a.with_overrides(num_clients=5)
        assert engine.dataset_for(c) is not engine.dataset_for(a)

    def test_blockchain_needs_no_dataset(self):
        engine = ExperimentEngine()
        hist = engine.run(ScenarioSpec(system="blockchain", num_clients=8, num_rounds=2))
        assert len(hist) == 2
        assert engine._dataset_cache == {}

    def test_history_carries_scenario_name(self, tiny_suite):
        hist = tiny_suite.run("fairbfl", name="custom-label", num_rounds=1)
        assert hist.label == "custom-label"

    def test_suite_run_matches_legacy_wiring(self, tiny_suite):
        """The engine path reproduces the hand-wired seed behaviour exactly."""
        legacy_trainer, legacy = run_fairbfl(
            tiny_suite.dataset(), config=tiny_suite.fairbfl_config()
        )
        legacy_trainer.close()
        engine_hist = tiny_suite.run("fairbfl")
        assert _fingerprint(engine_hist) == _fingerprint(legacy)

    def test_sweep_table_shape(self, tiny_suite):
        engine = tiny_suite.engine
        specs = [
            tiny_suite.spec("fairbfl", name="a", num_rounds=1),
            tiny_suite.spec("blockchain", name="b", num_rounds=1),
        ]
        table, results = engine.sweep_table(specs, title="t")
        assert [row[0] for row in table.rows] == ["a", "b"]
        assert len(results) == 2 and results[0].summary["rounds"] == 1

    def test_counters_are_exact_under_concurrent_tally(self):
        """The serve worker pool shares one engine across threads; its
        counters must not lose increments (a bare ``+=`` would)."""
        import sys
        import threading

        engine = ExperimentEngine()
        threads_n, iterations = 8, 2000
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force aggressive interleaving
        try:
            def hammer() -> None:
                for _ in range(iterations):
                    engine.tally(runs=1, rounds=2, hits=1)

            threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert engine.runs_computed == threads_n * iterations
        assert engine.round_evaluations == 2 * threads_n * iterations
        assert engine.cache_hits == threads_n * iterations

    def test_run_streaming_matches_run_and_reports_progress(self):
        spec = ScenarioSpec(system="blockchain", num_clients=8, num_rounds=3)
        seen: list[tuple[int, int]] = []
        streamed = ExperimentEngine().run_streaming(
            spec, progress=lambda done, total: seen.append((done, total))
        )
        plain = ExperimentEngine().run(spec)
        assert _fingerprint(streamed.history) == _fingerprint(plain)
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_run_streaming_cancellation_raises_and_counts_partial_rounds(self):
        from repro.runner.engine import RunCancelled

        engine = ExperimentEngine()
        spec = ScenarioSpec(system="blockchain", num_clients=8, num_rounds=5)
        done_rounds: list[int] = []
        with pytest.raises(RunCancelled):
            engine.run_streaming(
                spec,
                progress=lambda done, total: done_rounds.append(done),
                should_stop=lambda: bool(done_rounds and done_rounds[-1] >= 2),
            )
        assert engine.runs_computed == 0  # a cancelled run is not a computed run
        assert engine.round_evaluations == 2  # ...but its partial rounds are costed
        assert done_rounds == [1, 2]


class TestVectorisedAggregationPath:
    def _updates(self, dim=3):
        return [
            ClientUpdate(client_id=i, parameters=np.full(dim, float(i)), num_samples=10 * (i + 1),
                         train_loss=0.0, val_accuracy=0.0)
            for i in range(3)
        ]

    def test_server_empty_updates_raise_consistent_error(self, rng):
        server = CentralServer(lambda: _tiny_model(rng))
        with pytest.raises(AggregationError):
            server.aggregate([])
        with pytest.raises(AggregationError):
            simple_average(np.zeros((0, 3)))
        assert issubclass(AggregationError, ValueError)

    def test_server_routes_through_stacked_path(self, rng):
        server = CentralServer(lambda: _tiny_model(rng), aggregation="samples")
        dim = server.global_parameters.size
        new_global = server.aggregate(self._updates(dim=dim))
        expected = np.average(
            np.stack([np.full(dim, float(i)) for i in range(3)]), axis=0, weights=[10, 20, 30]
        )
        np.testing.assert_allclose(new_global, expected)
        np.testing.assert_allclose(server.global_parameters, expected)

    def test_aggregate_client_updates_schemes(self):
        updates = self._updates()
        np.testing.assert_allclose(aggregate_client_updates(updates), np.full(3, 1.0))
        np.testing.assert_allclose(
            aggregate_client_updates(updates, scheme="weighted", weights=np.array([1.0, 0.0, 0.0])),
            np.zeros(3),
        )
        with pytest.raises(AggregationError, match="unknown aggregation scheme"):
            aggregate_client_updates(updates, scheme="median")
        with pytest.raises(AggregationError, match="empty"):
            aggregate_client_updates([])


def _tiny_model(rng):
    from repro.nn.models import build_model

    return build_model("logreg", 3, 2, rng)
