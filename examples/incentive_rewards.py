#!/usr/bin/env python
"""Incentive scenario: contribution-based rewards with heterogeneous data quality.

A federation where a third of the clients hold low-quality (label-noisy) data.
FAIR-BFL's contribution mechanism (Algorithm 2) scores every upload by its
cosine distance to the global update, rewards the high contributors from a
per-round base reward, and -- with the discard strategy -- drops the
low-quality gradients from aggregation.  The script compares the rewards
accumulated by clean vs noisy clients and the accuracy of keep vs discard.

Run with:  python examples/incentive_rewards.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.core.experiment import build_federated_dataset, run_fairbfl  # noqa: E402
from repro.core.config import FairBFLConfig  # noqa: E402
from repro.datasets.federated import inject_label_noise  # noqa: E402
from repro.datasets.synthetic_mnist import load_synthetic_mnist  # noqa: E402
from repro.datasets.federated import FederatedDataset  # noqa: E402
from repro.fl.client import LocalTrainingConfig  # noqa: E402
from repro.incentive.contribution import ContributionConfig  # noqa: E402
from repro.utils.rng import new_rng  # noqa: E402


def build_population(seed: int = 0):
    """15 clients on Dirichlet non-IID data; 5 of them get heavy label noise."""
    base = load_synthetic_mnist(1200, seed=seed, noise_std=0.4)
    fed = FederatedDataset.from_dataset(
        base, 15, new_rng(seed, "incentive-example"), scheme="dirichlet", alpha=0.5
    )
    noisy = inject_label_noise(
        fed, new_rng(seed, "incentive-noise"), client_fraction=1 / 3, noise_level=0.7
    )
    return fed, noisy


def run(strategy: str, dataset, seed: int = 0):
    config = FairBFLConfig(
        num_rounds=12,
        participation_fraction=0.6,
        local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        model_name="logreg",
        strategy=strategy,
        contribution=ContributionConfig(eps=0.6, base_reward=1.0),
        seed=seed,
    )
    return run_fairbfl(dataset, config=config)


def main() -> None:
    dataset, noisy_clients = build_population()
    print(f"Low-quality (label-noise) clients: {noisy_clients}\n")

    trainer_keep, hist_keep = run("keep", dataset)
    trainer_discard, hist_discard = run("discard", dataset)

    print("Accumulated rewards after 12 rounds (discard strategy)")
    totals = trainer_discard.reward_ledger.totals
    clean_rewards = [totals.get(c, 0.0) for c in range(dataset.num_clients) if c not in noisy_clients]
    noisy_rewards = [totals.get(c, 0.0) for c in noisy_clients]
    for cid in range(dataset.num_clients):
        tag = "low-quality" if cid in noisy_clients else "clean"
        print(f"  client {cid:>2} ({tag:<11}): {totals.get(cid, 0.0):.3f}")
    print(f"\n  mean reward, clean clients       : {np.mean(clean_rewards):.3f}")
    print(f"  mean reward, low-quality clients : {np.mean(noisy_rewards):.3f}")

    discarded_counts = [len(r.discarded) for r in hist_discard.rounds]
    print(f"\nClients discarded per round: {discarded_counts}")

    print("\nAccuracy comparison (keep vs discard)")
    print(f"  keep all gradients : final accuracy {hist_keep.final_accuracy():.3f}, "
          f"average delay {hist_keep.average_delay():.2f} s")
    print(f"  discard strategy   : final accuracy {hist_discard.final_accuracy():.3f}, "
          f"average delay {hist_discard.average_delay():.2f} s")
    print(
        "\nRewards follow contribution rather than self-reported data size, and the discard\n"
        "strategy filters the label-noise clients out of the aggregation (Section 5.3)."
    )


if __name__ == "__main__":
    main()
