"""Register a new system from *outside* the core packages.

This plugin adds ``fedavg-momentum`` — FedAvg with server-side momentum
(Hsu et al., 2019: the server treats the round's aggregated delta as a
pseudo-gradient and applies heavy-ball momentum to it) — without editing
``repro/cli.py``, ``repro/runner/engine.py``, or any other core module.
Everything flows from one ``register_system()`` call: scenario validation,
the engine's dispatch, and the CLI's choices all derive from the registry.

Run it three ways (all from the repo root):

.. code-block:: bash

   # Python, through the stable facade:
   PYTHONPATH=src python examples/custom_system.py

   # CLI, loading this file as a plugin:
   PYTHONPATH=src python -m repro.cli --plugins examples/custom_system.py \
       run fedavg-momentum --clients 8 --rounds 3 --samples 600

   # Declarative sweep over {fedavg, fedavg-momentum} x learning rates:
   PYTHONPATH=src python -m repro.cli --plugins examples/custom_system.py \
       sweep --scenario examples/custom_sweep.toml

   # And `compare` picks the new system up automatically:
   PYTHONPATH=src python -m repro.cli --plugins examples/custom_system.py \
       compare --clients 8 --rounds 2 --samples 600
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.fl.fedavg import FedAvgTrainer  # noqa: E402
from repro.nn.parameters import set_flat_parameters  # noqa: E402
from repro.systems import (  # noqa: E402
    System,
    SystemCapabilities,
    TrainerRun,
    register_system,
)


class MomentumFedAvgTrainer(FedAvgTrainer):
    """FedAvg whose server applies heavy-ball momentum to the round delta.

    With velocity ``v_0 = 0`` and aggregate ``a_t`` the server updates
    ``v_t = beta * v_{t-1} + (a_t - w_{t-1})`` and ``w_t = w_{t-1} + v_t``;
    ``beta = 0`` recovers plain FedAvg exactly.
    """

    label = "fedavg-momentum"

    def __init__(self, dataset, config, *, momentum: float = 0.9) -> None:
        super().__init__(dataset, config)
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = np.zeros_like(self.server.global_parameters)

    def _aggregate(self, updates) -> np.ndarray:
        previous = self.server.global_parameters.copy()
        aggregated = super()._aggregate(updates)
        self._velocity = self.momentum * self._velocity + (aggregated - previous)
        new_global = previous + self._velocity
        self.server.global_parameters = new_global
        set_flat_parameters(self.server.model, new_global)
        return new_global


class MomentumFedAvgSystem(System):
    """The plugin's registry entry: capabilities + build, nothing else."""

    name = "fedavg-momentum"
    description = "FedAvg with server-side heavy-ball momentum (beta=0.9)"
    capabilities = SystemCapabilities(needs_dataset=True, defenses=True)
    momentum = 0.9

    def build_config(self, spec):
        return spec.fedavg_config()

    def build(self, spec, dataset):
        trainer = MomentumFedAvgTrainer(
            dataset, self.build_config(spec), momentum=self.momentum
        )
        return TrainerRun(self.name, trainer)


# replace=True keeps repeated imports of this file (e.g. CLI --plugins in the
# same process as an earlier load) harmless.
register_system(MomentumFedAvgSystem(), replace=True)


def main() -> None:
    from repro import api

    table, _results = api.compare(
        ("fedavg", "fedavg-momentum"),
        num_clients=8,
        num_samples=600,
        num_rounds=4,
        participation=0.5,
        model_name="logreg",
    )
    table.title = "FedAvg vs server-momentum FedAvg (same workload, same seed)"
    print(table.to_text())


if __name__ == "__main__":
    main()
