#!/usr/bin/env python
"""Flexibility by design: scale FAIR-BFL down to pure FL or pure blockchain.

Section 4 of the paper argues that the five procedures can be "coupled
flexibly and dynamically": dropping Procedures III and V leaves a pure FL
system, dropping Procedures I and IV leaves a pure blockchain.  This script
runs the same workload in all three operating modes and compares their delay
decomposition, accuracy, and ledger state -- the comparison the paper's
Figure 3 / Section 4.6 describes.

Run with:  python examples/flexibility_modes.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import ExperimentSuite, run_fairbfl  # noqa: E402
from repro.core.flexibility import OperatingMode, procedures_for_mode  # noqa: E402
from repro.fl.client import LocalTrainingConfig  # noqa: E402


def main() -> None:
    suite = ExperimentSuite(
        num_clients=12,
        num_samples=1000,
        num_rounds=6,
        participation_fraction=0.5,
        model_name="logreg",
        local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        seed=0,
    )
    dataset = suite.dataset()

    print("Procedures per operating mode")
    for mode in OperatingMode:
        names = ", ".join(p.value.split("-")[0] for p in procedures_for_mode(mode))
        print(f"  {mode.value:<10} -> procedures {names}")

    results = {}
    for mode in OperatingMode:
        trainer, history = run_fairbfl(dataset, config=suite.fairbfl_config(mode=mode))
        avg_breakdown = {
            key: sum(r.extras["delay_breakdown"][key] for r in history.rounds) / len(history)
            for key in ("t_local", "t_up", "t_ex", "t_gl", "t_bl")
        }
        results[mode] = (trainer, history, avg_breakdown)

    print(
        f"\n{'mode':<12}{'delay':>8}{'T_local':>9}{'T_up':>8}{'T_ex':>8}{'T_gl':>8}"
        f"{'T_bl':>8}{'accuracy':>10}{'blocks':>8}"
    )
    for mode, (trainer, history, bd) in results.items():
        print(
            f"{mode.value:<12}{history.average_delay():>8.2f}{bd['t_local']:>9.2f}"
            f"{bd['t_up']:>8.2f}{bd['t_ex']:>8.2f}{bd['t_gl']:>8.2f}{bd['t_bl']:>8.2f}"
            f"{history.final_accuracy():>10.3f}{trainer.chain.height - 1:>8}"
        )

    print(
        "\nfl_only drops the ledger costs (T_ex = T_bl = 0, no blocks), chain_only drops the\n"
        "learning costs (T_local = 0, accuracy not measured), and full bfl pays both --\n"
        "exactly the scale-back behaviour of Figure 3."
    )


if __name__ == "__main__":
    main()
