#!/usr/bin/env python
"""Security scenario: detect and discard malicious clients (paper Section 5.4 / Table 2).

Ten clients train collaboratively; every round 1-3 of them are randomly
designated malicious and upload sign-flipped gradients.  The winning miner runs
Algorithm 2 (DBSCAN on the gradient set) and the discard strategy drops the
low-contribution uploads.  The script prints the per-round attacker/drop
indices (Table 2's format), the average detection rate for non-IID and IID
data, and the accuracy impact of the defence.

Run with:  python examples/malicious_detection.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import FairBFLConfig  # noqa: E402
from repro.core.experiment import build_federated_dataset, run_fairbfl  # noqa: E402
from repro.fl.client import LocalTrainingConfig  # noqa: E402
from repro.incentive.contribution import ContributionConfig  # noqa: E402


def run_scenario(scheme: str, *, strategy: str = "discard", seed: int = 0):
    """Run the Table 2 protocol on the given data distribution."""
    dataset = build_federated_dataset(
        num_clients=10, num_samples=800, scheme=scheme, seed=seed, noise_std=0.35
    )
    config = FairBFLConfig(
        num_rounds=10,
        participation_fraction=1.0,
        local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        model_name="logreg",
        strategy=strategy,
        enable_attacks=True,
        attack_name="sign_flip",
        min_attackers=1,
        max_attackers=3,
        contribution=ContributionConfig(eps=0.7),
        seed=seed,
    )
    return run_fairbfl(dataset, config=config)


def main() -> None:
    for scheme, label in (("dirichlet", "Non-IID"), ("iid", "IID")):
        trainer, history = run_scenario(scheme)
        print(f"\n=== {label} data ===")
        print(f"{'round':>5}  {'attacker index':>18}  {'drop index':>18}  {'detection rate':>14}")
        for log in trainer.detection_logs():
            print(
                f"{log.round_index + 1:>5}  {str(log.attacker_ids):>18}  "
                f"{str(log.dropped_ids):>18}  {log.detection_rate:>13.0%}"
            )
        print(f"Average detection rate ({label}): {trainer.average_detection_rate():.2%}")
        print(f"Final accuracy with defence    : {history.final_accuracy():.3f}")

    # Show what happens when the defence is off: same attack, keep-everything strategy.
    print("\n=== Defence ablation (non-IID) ===")
    _, defended = run_scenario("dirichlet", strategy="discard")
    _, undefended = run_scenario("dirichlet", strategy="keep")
    print(f"final accuracy with discard strategy : {defended.final_accuracy():.3f}")
    print(f"final accuracy without discarding    : {undefended.final_accuracy():.3f}")
    print("(the discard strategy removes forged gradients before aggregation)")


if __name__ == "__main__":
    main()
