#!/usr/bin/env python
"""Quickstart: run FAIR-BFL end to end on a small federated workload.

This script builds a synthetic-MNIST federated dataset, runs a few FAIR-BFL
communication rounds (local SGD -> RSA-signed uploads -> miner exchange ->
DBSCAN contribution identification -> fair aggregation -> proof-of-work
block), and prints the per-round delay/accuracy, the on-chain state, and the
reward distribution.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import ExperimentSuite, run_fairbfl  # noqa: E402
from repro.core.results import summarize_history  # noqa: E402
from repro.fl.client import LocalTrainingConfig  # noqa: E402


def main() -> None:
    # A laptop-scale configuration: 12 clients, Dirichlet non-IID data, 8 rounds.
    suite = ExperimentSuite(
        num_clients=12,
        num_samples=1000,
        num_rounds=8,
        participation_fraction=0.5,
        model_name="logreg",
        local=LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05),
        seed=0,
    )
    print("Building federated dataset (12 clients, Dirichlet non-IID)...")
    dataset = suite.dataset()

    print("Running FAIR-BFL for 8 communication rounds...\n")
    trainer, history = run_fairbfl(dataset, config=suite.fairbfl_config())

    print(f"{'round':>5}  {'delay (s)':>10}  {'accuracy':>9}  {'participants':>12}  {'winner':>8}")
    for record in history.rounds:
        print(
            f"{record.round_index:>5}  {record.delay:>10.2f}  {record.accuracy:>9.3f}  "
            f"{len(record.participants):>12}  {record.extras['winning_miner']:>8}"
        )

    summary = summarize_history(history)
    print("\nSummary")
    print(f"  average delay        : {summary['average_delay']:.2f} s/round")
    print(f"  average accuracy     : {summary['average_accuracy']:.3f}")
    print(f"  final accuracy       : {summary['final_accuracy']:.3f}")
    print(f"  global test accuracy : {trainer.global_test_accuracy():.3f}")

    print("\nLedger state")
    print(f"  chain height         : {trainer.chain.height} blocks (genesis + 1 per round)")
    print(f"  chain valid          : {trainer.chain.is_valid()}")
    print(f"  replicas in sync     : "
          f"{len({m.chain.last_block.block_hash for m in trainer.miners}) == 1}")

    print("\nTop rewarded clients (contribution-based incentive)")
    for client_id, total in trainer.reward_ledger.top_clients(5):
        print(f"  client {client_id:>3} : {total:.3f}")


if __name__ == "__main__":
    main()
