"""The stable public API facade.

``repro.api`` is the one import that benchmarks, the CLI, notebooks, and
downstream scripts should reach for.  It re-exports the declarative scenario
layer and the system registry, and adds nine verbs:

* :func:`run` — execute one scenario (spec, mapping, or system name plus
  field overrides) and return its :class:`~repro.fl.history.TrainingHistory`;
* :func:`sweep` — expand scenario files/mappings/spec lists and run every
  grid point through one dataset-memoising engine;
* :func:`compare` — run several systems on one shared workload, applying
  each field only to the systems whose registered capabilities support it;
* :func:`search` — adaptive (ASHA / successive-halving) sweep: launch the
  expanded cohort at low fidelity, keep the top ``1/eta`` per rung, resume
  survivors from their stored checkpoints (see ``docs/search.md``);
* :func:`load_scenario` — parse a JSON/TOML file or mapping into validated
  :class:`~repro.runner.scenario.ScenarioSpec` objects;
* :func:`list_systems` — the registered system names (CLI choices, sweep
  axes, and docs derive from the same list);
* :func:`report` — tabulate a content-addressed :class:`RunStore` into the
  paper-style summary table without re-running anything;
* :func:`serve` — boot the long-running experiment service (HTTP/JSON job
  queue with worker pool and single-flight dedup over the run store — see
  ``docs/serve.md``) and return the running server;
* :func:`submit` — send one scenario to a running server (``repro serve``
  or :func:`serve`) and, by default, wait for its bit-identical history.

``run``/``sweep``/``compare``/``search`` accept an opt-in ``cache`` argument:
``cache="store"`` persists every run under its content key in the default
``results/store/`` and reuses existing records (``repro sweep --resume`` is
this path); a directory path or a :class:`RunStore` selects another store.
See ``docs/results.md`` for the key semantics.

``__all__`` is the compatibility contract: a snapshot test pins it, so
anything listed here stays importable and call-compatible across releases.

>>> from repro import api
>>> history = api.run("fedavg", num_clients=8, num_samples=400, num_rounds=2)
>>> len(history)
2

Registering a new system (see ``docs/api.md`` and
``examples/custom_system.py``)::

    from repro import api

    class MySystem(api.System):
        name = "my-system"
        capabilities = api.SystemCapabilities(needs_dataset=True)
        def build(self, spec, dataset): ...

    api.register_system(MySystem())
    api.run("my-system", num_rounds=3)
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.core.results import ComparisonResult, summarize_history
from repro.fl.history import TrainingHistory
from repro.runner.engine import ExperimentEngine, ScenarioResult
from repro.runner.scenario import (
    ScenarioError,
    ScenarioMatrix,
    ScenarioSpec,
    load_scenario_file,
    scenarios_from_mapping,
)
from repro.search import SearchResult, run_search
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.store.keys import spec_key
from repro.store.report import report_table
from repro.store.runstore import RunStore, StoredRun
from repro.systems import (
    RunResult,
    System,
    SystemCapabilities,
    filter_unsupported_axes,
    get_system,
    load_plugins,
    register_system,
    system_names,
    unregister_system,
)

__all__ = [  # pinned by tests/test_systems_api.py::test_public_api_snapshot
    "ComparisonResult",
    "ExperimentEngine",
    "ReproServer",
    "RunResult",
    "RunStore",
    "ScenarioError",
    "ScenarioMatrix",
    "ScenarioResult",
    "ScenarioSpec",
    "SearchResult",
    "ServeClient",
    "StoredRun",
    "System",
    "SystemCapabilities",
    "TrainingHistory",
    "compare",
    "get_system",
    "list_systems",
    "load_plugins",
    "load_scenario",
    "register_system",
    "report",
    "run",
    "search",
    "serve",
    "spec_key",
    "submit",
    "sweep",
    "unregister_system",
]


def _resolve_store(cache) -> RunStore | None:
    """Normalise the public ``cache`` argument into a :class:`RunStore` (or None).

    ``None`` disables caching, the literal ``"store"`` selects the default
    ``results/store/`` root, a path selects another root, and a
    :class:`RunStore` instance is used as-is.
    """
    if cache is None:
        return None
    if isinstance(cache, RunStore):
        return cache
    if cache == "store":
        return RunStore()
    if isinstance(cache, (str, Path)):
        return RunStore(cache)
    raise ScenarioError(
        'cache must be None, "store", a store directory path, or a RunStore; '
        f"got {type(cache).__name__}"
    )


def _engine_for(engine: ExperimentEngine | None, cache) -> ExperimentEngine:
    """The engine a facade verb should run through, honouring ``cache``."""
    if engine is not None:
        if cache is not None:
            raise ScenarioError(
                "pass either engine= (configure its store directly) or cache=, not both"
            )
        return engine
    return ExperimentEngine(store=_resolve_store(cache))


def list_systems() -> tuple[str, ...]:
    """Names of every registered system, in registration order."""
    return system_names()


def load_scenario(source) -> list[ScenarioSpec]:
    """Expand a scenario source into validated specs.

    ``source`` is a ``.json``/``.toml`` path or an already-parsed mapping in
    any of the three document shapes (single scenario, explicit list,
    cartesian matrix — see ``docs/scenarios.md``).
    """
    if isinstance(source, Mapping):
        return scenarios_from_mapping(dict(source))
    return load_scenario_file(source)


def _as_spec(target, fields: dict) -> ScenarioSpec:
    """Normalise run()'s flexible target argument into one validated spec."""
    if isinstance(target, ScenarioSpec):
        return target.with_overrides(**fields) if fields else target.validate()
    if isinstance(target, Mapping):
        return ScenarioSpec.from_mapping({**dict(target), **fields})
    if isinstance(target, str):
        mapping = dict(fields)
        mapping.setdefault("name", target)
        mapping["system"] = target
        return ScenarioSpec.from_mapping(mapping)
    if target is None:
        return ScenarioSpec.from_mapping(fields)
    raise ScenarioError(
        "run() expects a ScenarioSpec, a field mapping, or a system name; got "
        f"{type(target).__name__}"
    )


def run(
    target=None, *, engine: ExperimentEngine | None = None, cache=None, **fields
) -> TrainingHistory:
    """Run one scenario and return its history.

    ``target`` may be a validated :class:`ScenarioSpec`, a plain field
    mapping, a registered system name (``fields`` then override the scenario
    defaults), or ``None`` (``fields`` describe the whole scenario).  Pass an
    :class:`ExperimentEngine` to share dataset memoisation across calls, or
    ``cache="store"`` (a path / :class:`RunStore` also works) to persist the
    run under its content key and reuse an existing record.
    """
    spec = _as_spec(target, fields)
    return _engine_for(engine, cache).run(spec)


def _expand_sources(
    sources, *, overrides: Mapping[str, object] | None = None, verb: str = "sweep"
) -> list[ScenarioSpec]:
    """Expand sweep/search sources into validated specs (overrides applied).

    Each source may be a scenario file path, a parsed document mapping, a
    :class:`ScenarioSpec`, or an iterable of specs; ``overrides`` apply to
    every expanded scenario with capability-gated axis fields dropped for
    systems that do not support them.
    """
    specs: list[ScenarioSpec] = []
    for source in sources:
        if isinstance(source, ScenarioSpec):
            specs.append(source.validate())
        elif isinstance(source, Mapping):
            specs.extend(scenarios_from_mapping(dict(source)))
        elif isinstance(source, Iterable) and not isinstance(source, (str, Path)):
            for spec in source:
                if not isinstance(spec, ScenarioSpec):
                    raise ScenarioError(
                        f"{verb}() iterables must contain ScenarioSpec objects, got "
                        f"{type(spec).__name__}"
                    )
                specs.append(spec.validate())
        else:
            specs.extend(load_scenario_file(source))
    if overrides:
        applied: list[ScenarioSpec] = []
        for spec in specs:
            filtered = filter_unsupported_axes(spec.system, overrides)
            applied.append(spec.with_overrides(**filtered) if filtered else spec)
        specs = applied
    return specs


def sweep(
    *sources,
    engine: ExperimentEngine | None = None,
    cache=None,
    overrides: Mapping[str, object] | None = None,
    title: str | None = None,
) -> tuple[ComparisonResult, list[ScenarioResult]]:
    """Run every scenario expanded from ``sources`` and tabulate the summaries.

    Each source may be a scenario file path, a parsed document mapping, a
    :class:`ScenarioSpec`, or an iterable of specs.  ``overrides`` apply to
    every expanded scenario, with capability-gated axis fields (round modes,
    attacks, defenses) dropped for systems that do not support them.
    Datasets are memoised across the whole sweep by one shared engine, and
    ``cache="store"`` makes the sweep resumable: grid points whose records
    already exist in the store load from disk, only the missing cells
    compute (``repro sweep --resume`` is exactly this).
    """
    specs = _expand_sources(sources, overrides=overrides, verb="sweep")
    if title is None:
        title = f"Scenario sweep ({len(specs)} scenario{'s' if len(specs) != 1 else ''})"
    return _engine_for(engine, cache).sweep_table(specs, title=title)


def compare(
    systems: Iterable[str] | None = None,
    *,
    engine: ExperimentEngine | None = None,
    cache=None,
    per_system: Mapping[str, Mapping[str, object]] | None = None,
    title: str = "System comparison (same workload, same seed)",
    **fields,
) -> tuple[ComparisonResult, list[ScenarioResult]]:
    """Run several systems on one shared workload and tabulate the summaries.

    ``systems`` defaults to every registered system (plugins included).  The
    shared ``fields`` are applied per system through the capability filter —
    e.g. ``round_mode="async"`` reaches only the systems that support round
    modes — and ``per_system`` adds system-specific overrides on top (the
    CLI uses it for FedProx's straggler drop).  Datasets are memoised across
    the comparison; ``cache="store"`` additionally persists/reuses each
    system's run by content key.
    """
    names = tuple(systems) if systems is not None else system_names()
    per_system = per_system or {}
    specs: list[ScenarioSpec] = []
    for name in names:
        get_system(name)  # fail fast with the registry's actionable message
        mapping = filter_unsupported_axes(name, fields)
        mapping.update(per_system.get(name, {}))
        mapping.setdefault("name", name)
        mapping["system"] = name
        specs.append(ScenarioSpec.from_mapping(mapping))
    shared_engine = _engine_for(engine, cache)
    table = ComparisonResult(
        title=title,
        columns=["system", "avg_delay_s", "avg_accuracy", "final_accuracy"],
    )
    results: list[ScenarioResult] = []
    for spec in specs:
        history = shared_engine.run(spec)
        results.append(ScenarioResult(spec=spec, history=history))
        summary = summarize_history(history)
        table.add_row(
            spec.system,
            summary["average_delay"],
            summary["average_accuracy"],
            summary["final_accuracy"],
        )
    return table, results


def search(
    *sources,
    metric="final_accuracy",
    eta: int = 3,
    min_rounds: int | None = None,
    max_rounds: int | None = None,
    engine: ExperimentEngine | None = None,
    cache=None,
    overrides: Mapping[str, object] | None = None,
) -> SearchResult:
    """Adaptive (ASHA / successive-halving) search over a scenario cohort.

    ``sources`` expand exactly like :func:`sweep` (files, mappings, specs —
    a cartesian ``matrix`` document is the natural grid).  Every expanded
    scenario is one trial; trials run at the first rung's fidelity (few
    rounds), are ranked by ``metric`` (``final_accuracy``, ``avg_accuracy``,
    or ``delay`` — validated against the trial systems' registered
    capabilities), and only the top ``1/eta`` fraction is promoted to the
    next rung, up to ``max_rounds`` (default: the largest ``num_rounds``
    among the trials).

    Pass ``cache="store"`` (or a store path / :class:`RunStore`) to make
    promotions cheap and the search durable: every rung evaluation is a
    first-class content-addressed record carrying a resumable checkpoint, so
    a promoted trial *continues* from round ``r`` instead of replaying it,
    a killed search re-run with the same store finishes bit-identically, and
    concurrent searches share rungs.  Without a store the rankings are
    identical but every rung recomputes from round zero.

    Returns a :class:`SearchResult` (rung-by-rung standings, final
    leaderboard, best trial, and the round-evaluation budget actually
    spent vs. the exhaustive grid's).
    """
    specs = _expand_sources(sources, overrides=overrides, verb="search")
    shared_engine = _engine_for(engine, cache)
    return run_search(
        specs,
        engine=shared_engine,
        metric=metric,
        eta=eta,
        min_rounds=min_rounds,
        max_rounds=max_rounds,
    )


def report(
    store: "RunStore | str | Path | None" = None,
    *,
    systems: Iterable[str] | None = None,
    title: str | None = None,
) -> ComparisonResult:
    """Tabulate the runs persisted in a content-addressed store.

    ``store`` is a :class:`RunStore`, a store directory path, or ``None``
    for the default ``results/store/``.  ``systems`` restricts the rows to
    those system names.  The returned :class:`ComparisonResult` renders as
    text (``to_text()``), Markdown (:func:`repro.store.report.to_markdown`),
    or CSV (:func:`repro.core.io.save_comparison_csv`) — the same pipeline
    the ``repro report`` CLI subcommand drives.
    """
    if not isinstance(store, RunStore):
        store = RunStore() if store is None else RunStore(store)
    return report_table(store, systems=tuple(systems) if systems is not None else None, title=title)


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 2,
    store="store",
    isolation: str = "thread",
    max_retries: int = 1,
) -> ReproServer:
    """Boot the experiment service and return the running server.

    The server wraps a shared :class:`ExperimentEngine` and a
    content-addressed :class:`RunStore` behind an HTTP/JSON job queue:
    submissions of already-stored runs answer read-through without
    computing, concurrent identical submissions collapse single-flight into
    one computation, and ``workers`` workers drain the rest (``isolation=
    "process"`` runs each job in a supervised child process, retried up to
    ``max_retries`` times if the child dies).  ``port=0`` binds an ephemeral
    port; read it back from ``server.port`` / ``server.url``.  ``store``
    follows the ``cache`` convention (``"store"``, a path, or a
    :class:`RunStore`).  The server is a context manager; ``close()`` shuts
    it down.  See ``docs/serve.md`` for the endpoint reference.
    """
    server = ReproServer(
        host,
        port,
        store=_resolve_store(store),
        workers=workers,
        isolation=isolation,
        max_retries=max_retries,
    )
    return server.start()


def submit(
    target=None, *, server, wait: bool = True, timeout: float = 120.0, **fields
):
    """Send one scenario to a running experiment server.

    ``target`` and ``fields`` are interpreted exactly like :func:`run`
    (spec, mapping, or system name plus overrides); ``server`` is a base URL
    (``"http://127.0.0.1:8731"``) or a :class:`ReproServer`.  With
    ``wait=True`` (default) this blocks until the job finishes and returns
    its :class:`TrainingHistory` — bit-identical to running the same spec
    locally.  With ``wait=False`` it returns the submission's job payload
    (``job_id``, ``spec_key``, state) immediately; poll or cancel it through
    :class:`ServeClient`.
    """
    spec = _as_spec(target, fields)
    base_url = server.url if isinstance(server, ReproServer) else str(server)
    client = ServeClient(base_url)
    if not wait:
        return client.submit(spec)[0]
    return client.run(spec, timeout=timeout)
