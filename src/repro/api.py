"""The stable public API facade.

``repro.api`` is the one import that benchmarks, the CLI, notebooks, and
downstream scripts should reach for.  It re-exports the declarative scenario
layer and the system registry, and adds five verbs:

* :func:`run` — execute one scenario (spec, mapping, or system name plus
  field overrides) and return its :class:`~repro.fl.history.TrainingHistory`;
* :func:`sweep` — expand scenario files/mappings/spec lists and run every
  grid point through one dataset-memoising engine;
* :func:`compare` — run several systems on one shared workload, applying
  each field only to the systems whose registered capabilities support it;
* :func:`load_scenario` — parse a JSON/TOML file or mapping into validated
  :class:`~repro.runner.scenario.ScenarioSpec` objects;
* :func:`list_systems` — the registered system names (CLI choices, sweep
  axes, and docs derive from the same list).

``__all__`` is the compatibility contract: a snapshot test pins it, so
anything listed here stays importable and call-compatible across releases.

>>> from repro import api
>>> history = api.run("fedavg", num_clients=8, num_samples=400, num_rounds=2)
>>> len(history)
2

Registering a new system (see ``docs/api.md`` and
``examples/custom_system.py``)::

    from repro import api

    class MySystem(api.System):
        name = "my-system"
        capabilities = api.SystemCapabilities(needs_dataset=True)
        def build(self, spec, dataset): ...

    api.register_system(MySystem())
    api.run("my-system", num_rounds=3)
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.core.results import ComparisonResult, summarize_history
from repro.fl.history import TrainingHistory
from repro.runner.engine import ExperimentEngine, ScenarioResult
from repro.runner.scenario import (
    ScenarioError,
    ScenarioMatrix,
    ScenarioSpec,
    load_scenario_file,
    scenarios_from_mapping,
)
from repro.systems import (
    RunResult,
    System,
    SystemCapabilities,
    filter_unsupported_axes,
    get_system,
    load_plugins,
    register_system,
    system_names,
    unregister_system,
)

__all__ = [  # pinned by tests/test_systems_api.py::test_public_api_snapshot
    "ComparisonResult",
    "ExperimentEngine",
    "RunResult",
    "ScenarioError",
    "ScenarioMatrix",
    "ScenarioResult",
    "ScenarioSpec",
    "System",
    "SystemCapabilities",
    "TrainingHistory",
    "compare",
    "get_system",
    "list_systems",
    "load_plugins",
    "load_scenario",
    "register_system",
    "run",
    "sweep",
    "unregister_system",
]


def list_systems() -> tuple[str, ...]:
    """Names of every registered system, in registration order."""
    return system_names()


def load_scenario(source) -> list[ScenarioSpec]:
    """Expand a scenario source into validated specs.

    ``source`` is a ``.json``/``.toml`` path or an already-parsed mapping in
    any of the three document shapes (single scenario, explicit list,
    cartesian matrix — see ``docs/scenarios.md``).
    """
    if isinstance(source, Mapping):
        return scenarios_from_mapping(dict(source))
    return load_scenario_file(source)


def _as_spec(target, fields: dict) -> ScenarioSpec:
    """Normalise run()'s flexible target argument into one validated spec."""
    if isinstance(target, ScenarioSpec):
        return target.with_overrides(**fields) if fields else target.validate()
    if isinstance(target, Mapping):
        return ScenarioSpec.from_mapping({**dict(target), **fields})
    if isinstance(target, str):
        mapping = dict(fields)
        mapping.setdefault("name", target)
        mapping["system"] = target
        return ScenarioSpec.from_mapping(mapping)
    if target is None:
        return ScenarioSpec.from_mapping(fields)
    raise ScenarioError(
        "run() expects a ScenarioSpec, a field mapping, or a system name; got "
        f"{type(target).__name__}"
    )


def run(target=None, *, engine: ExperimentEngine | None = None, **fields) -> TrainingHistory:
    """Run one scenario and return its history.

    ``target`` may be a validated :class:`ScenarioSpec`, a plain field
    mapping, a registered system name (``fields`` then override the scenario
    defaults), or ``None`` (``fields`` describe the whole scenario).  Pass an
    :class:`ExperimentEngine` to share dataset memoisation across calls.
    """
    spec = _as_spec(target, fields)
    return (engine or ExperimentEngine()).run(spec)


def sweep(
    *sources,
    engine: ExperimentEngine | None = None,
    overrides: Mapping[str, object] | None = None,
    title: str | None = None,
) -> tuple[ComparisonResult, list[ScenarioResult]]:
    """Run every scenario expanded from ``sources`` and tabulate the summaries.

    Each source may be a scenario file path, a parsed document mapping, a
    :class:`ScenarioSpec`, or an iterable of specs.  ``overrides`` apply to
    every expanded scenario, with capability-gated axis fields (round modes,
    attacks, defenses) dropped for systems that do not support them.
    Datasets are memoised across the whole sweep by one shared engine.
    """
    specs: list[ScenarioSpec] = []
    for source in sources:
        if isinstance(source, ScenarioSpec):
            specs.append(source.validate())
        elif isinstance(source, Mapping):
            specs.extend(scenarios_from_mapping(dict(source)))
        elif isinstance(source, Iterable) and not isinstance(source, (str, Path)):
            for spec in source:
                if not isinstance(spec, ScenarioSpec):
                    raise ScenarioError(
                        "sweep() iterables must contain ScenarioSpec objects, got "
                        f"{type(spec).__name__}"
                    )
                specs.append(spec.validate())
        else:
            specs.extend(load_scenario_file(source))
    if overrides:
        applied: list[ScenarioSpec] = []
        for spec in specs:
            filtered = filter_unsupported_axes(spec.system, overrides)
            applied.append(spec.with_overrides(**filtered) if filtered else spec)
        specs = applied
    if title is None:
        title = f"Scenario sweep ({len(specs)} scenario{'s' if len(specs) != 1 else ''})"
    return (engine or ExperimentEngine()).sweep_table(specs, title=title)


def compare(
    systems: Iterable[str] | None = None,
    *,
    engine: ExperimentEngine | None = None,
    per_system: Mapping[str, Mapping[str, object]] | None = None,
    title: str = "System comparison (same workload, same seed)",
    **fields,
) -> tuple[ComparisonResult, list[ScenarioResult]]:
    """Run several systems on one shared workload and tabulate the summaries.

    ``systems`` defaults to every registered system (plugins included).  The
    shared ``fields`` are applied per system through the capability filter —
    e.g. ``round_mode="async"`` reaches only the systems that support round
    modes — and ``per_system`` adds system-specific overrides on top (the
    CLI uses it for FedProx's straggler drop).  Datasets are memoised across
    the comparison.
    """
    names = tuple(systems) if systems is not None else system_names()
    per_system = per_system or {}
    specs: list[ScenarioSpec] = []
    for name in names:
        get_system(name)  # fail fast with the registry's actionable message
        mapping = filter_unsupported_axes(name, fields)
        mapping.update(per_system.get(name, {}))
        mapping.setdefault("name", name)
        mapping["system"] = name
        specs.append(ScenarioSpec.from_mapping(mapping))
    shared_engine = engine or ExperimentEngine()
    table = ComparisonResult(
        title=title,
        columns=["system", "avg_delay_s", "avg_accuracy", "final_accuracy"],
    )
    results: list[ScenarioResult] = []
    for spec in specs:
        history = shared_engine.run(spec)
        results.append(ScenarioResult(spec=spec, history=history))
        summary = summarize_history(history)
        table.add_row(
            spec.system,
            summary["average_delay"],
            summary["average_accuracy"],
            summary["final_accuracy"],
        )
    return table, results
