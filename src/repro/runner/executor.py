"""Parallel execution of Procedure I (local updates) across clients.

The seed implementation ran every selected client's local update in a serial
Python list comprehension.  :class:`ParallelExecutor` turns that fan-out into
a pluggable backend:

* ``serial`` — the original loop, bit-identical to the seed behaviour and the
  default everywhere (tests, CLI, benchmarks);
* ``thread`` — a :class:`concurrent.futures.ThreadPoolExecutor`; NumPy releases
  the GIL inside large kernels, so threads overlap the matrix work;
* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`; client
  objects (data shard, scratch model, RNG) are shipped to the workers once at
  pool creation and only the per-round inputs travel per task;
* ``cohort`` — no fan-out at all: the selected clients are grouped into
  same-shape cohorts and trained as stacked ``(clients, batch, features)``
  matrix ops by :class:`~repro.fl.cohort.CohortTrainer`, which removes the
  per-client Python loop entirely (the path that scales to 100k+ clients).

Determinism is preserved across all backends because every stochastic
draw of a local update comes from the *owning client's* private RNG stream
(see :mod:`repro.utils.rng`): streams never interleave, so the execution order
of clients cannot change the numbers.  For the process backend the client RNG
state is shipped with each task and the advanced state is restored onto the
coordinator's client object afterwards, so a process-backed run consumes
exactly the same stream positions as a serial one and histories stay
bit-identical between backends.  The cohort backend draws each client's
permutations from the client's own stream and uses kernels chosen for
bit-identical floating-point results (see :mod:`repro.nn.cohort`), so it
joins the same bit-exactness contract.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.fl.client import ClientUpdate, FLClient, LocalTrainingConfig
from repro.fl.cohort import CohortTrainer

__all__ = ["EXECUTOR_BACKENDS", "ParallelExecutor", "resolve_worker_count"]

#: The supported fan-out backends, in increasing order of isolation; the
#: vectorized ``cohort`` backend replaces fan-out with stacked matrix ops.
EXECUTOR_BACKENDS = ("serial", "thread", "process", "cohort")


def resolve_worker_count(max_workers: int | None) -> int:
    """Resolve ``max_workers`` (``None`` means one worker per available CPU)."""
    if max_workers is None:
        return max(1, os.cpu_count() or 1)
    workers = int(max_workers)
    if workers <= 0:
        raise ValueError(f"max_workers must be positive, got {max_workers}")
    return workers


# -- process-backend worker side ---------------------------------------------
# The pool initializer installs the full client map in each worker process;
# per-task payloads then only carry (client_id, global parameters, RNG state).
_WORKER_CLIENTS: dict[int, FLClient] = {}


def _process_pool_init(clients: dict[int, FLClient]) -> None:
    global _WORKER_CLIENTS
    _WORKER_CLIENTS = clients


def _process_local_update(
    client_id: int,
    global_parameters: np.ndarray,
    rng_state: dict,
    local_config: LocalTrainingConfig,
) -> tuple[ClientUpdate, dict]:
    """Run one client's local update inside a worker process.

    The caller-provided RNG state makes the worker consume exactly the stream
    positions the coordinator's client would have consumed; the advanced state
    travels back so the coordinator can stay in sync.
    """
    client = _WORKER_CLIENTS[client_id]
    client.rng.bit_generator.state = rng_state
    update = client.local_update(global_parameters, local_config)
    return update, client.rng.bit_generator.state


class ParallelExecutor:
    """Fans ``FLClient.local_update`` out over the selected clients.

    Parameters
    ----------
    backend:
        One of :data:`EXECUTOR_BACKENDS`.
    max_workers:
        Worker count for the thread/process backends (default: CPU count).

    Pools are created lazily on first use and reused across rounds; call
    :meth:`close` (or use the executor as a context manager) to release them.
    """

    def __init__(self, backend: str = "serial", max_workers: int | None = None) -> None:
        key = str(backend).strip().lower()
        if key not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r}; expected one of: "
                + ", ".join(EXECUTOR_BACKENDS)
            )
        self.backend = key
        self.max_workers = resolve_worker_count(max_workers)
        self._pool: Executor | None = None
        self._pool_clients_key: int | None = None
        self._cohort: CohortTrainer | None = None

    # ------------------------------------------------------------------
    def run_local_updates(
        self,
        clients: dict[int, FLClient],
        selected: list[int],
        global_parameters: np.ndarray,
        local_config: LocalTrainingConfig,
    ) -> list[ClientUpdate]:
        """Run Procedure I for ``selected`` and return updates in that order."""
        if self.backend == "serial":
            return [
                clients[cid].local_update(global_parameters, local_config)
                for cid in selected
            ]
        if self.backend == "thread":
            pool = self._ensure_thread_pool()
            futures = [
                pool.submit(clients[cid].local_update, global_parameters, local_config)
                for cid in selected
            ]
            return [f.result() for f in futures]
        if self.backend == "cohort":
            return self._ensure_cohort().run_local_updates(
                clients, selected, global_parameters, local_config
            )
        return self._run_process(clients, selected, global_parameters, local_config)

    def iter_update_blocks(
        self,
        clients: dict[int, FLClient],
        selected: list[int],
        global_parameters: np.ndarray,
        local_config: LocalTrainingConfig,
    ):
        """Stream trained :class:`~repro.fl.cohort.CohortBlock` chunks (cohort only).

        The streaming form never materialises one ``ClientUpdate`` per client,
        which is what bounds memory for 100k+-client rounds.
        """
        if self.backend != "cohort":
            raise ValueError(
                f"iter_update_blocks requires the 'cohort' backend, got {self.backend!r}"
            )
        return self._ensure_cohort().iter_update_blocks(
            clients, selected, global_parameters, local_config
        )

    def evaluate_population(
        self,
        clients: dict[int, FLClient],
        selected: list[int],
        parameters: np.ndarray,
    ) -> list[float]:
        """Batched per-client evaluation of shared ``parameters`` (cohort only)."""
        if self.backend != "cohort":
            raise ValueError(
                f"evaluate_population requires the 'cohort' backend, got {self.backend!r}"
            )
        return self._ensure_cohort().evaluate_population(clients, selected, parameters)

    def _run_process(
        self,
        clients: dict[int, FLClient],
        selected: list[int],
        global_parameters: np.ndarray,
        local_config: LocalTrainingConfig,
    ) -> list[ClientUpdate]:
        pool = self._ensure_process_pool(clients)
        futures = [
            pool.submit(
                _process_local_update,
                cid,
                global_parameters,
                clients[cid].rng.bit_generator.state,
                local_config,
            )
            for cid in selected
        ]
        updates: list[ClientUpdate] = []
        for cid, future in zip(selected, futures):
            update, rng_state = future.result()
            # Re-sync the coordinator's client with the stream consumption and
            # bookkeeping that happened in the worker.
            clients[cid].rng.bit_generator.state = rng_state
            clients[cid].rounds_participated += 1
            updates.append(update)
        return updates

    # -- pool management ------------------------------------------------
    def _ensure_cohort(self) -> CohortTrainer:
        if self._cohort is None:
            self._cohort = CohortTrainer()
        return self._cohort

    def _ensure_thread_pool(self) -> Executor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-local-update"
            )
        return self._pool

    def _ensure_process_pool(self, clients: dict[int, FLClient]) -> Executor:
        key = id(clients)
        if self._pool is not None and self._pool_clients_key != key:
            # A different client population: the workers' cached clients are
            # stale, so the pool must be rebuilt.
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=ctx,
                initializer=_process_pool_init,
                initargs=(dict(clients),),
            )
            self._pool_clients_key = key
        return self._pool

    def close(self) -> None:
        """Shut down any worker pool this executor created."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_clients_key = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(backend={self.backend!r}, max_workers={self.max_workers})"
