"""Partial-run checkpointing: stop a trainer at round ``r``, resume it later.

The ASHA search scheduler (:mod:`repro.search`) promotes a scenario from a
low-fidelity rung (few rounds) to a higher one without replaying the rounds it
already ran.  That requires every trainer to be able to (a) serialise its
*complete* resumable state after round ``r`` and (b) restore that state onto a
freshly-built instance so that continuing to round ``R`` is **bit-identical**
to an uninterrupted ``R``-round run.

:class:`CheckpointMixin` implements both generically.  The state capture is
deliberately *exclusion-based* — it pickles everything in the trainer's
``__dict__`` except the attributes named by :attr:`~CheckpointMixin.CHECKPOINT_EXCLUDE`
(the dataset, worker pools, and other objects the constructor rebuilds
deterministically) — so a subclass that adds state (e.g. the momentum buffer
of ``examples/custom_system.py``) is checkpointed correctly without opting in.
Clients are the one special case: an ``FLClient`` holds a data shard (large,
rebuildable), so only its *evolving* state travels — the private RNG stream
state, the participation counter, and the accumulated reward — and is
restored onto the freshly-built client objects.

Why pickling the whole graph in one blob matters: trainers share objects
(FAIR-BFL's miners all reference the one :class:`~repro.crypto.keystore.KeyStore`;
the event kernel's cached broadcast networks share the kernel's RNG).  A
single ``pickle.dumps`` preserves that aliasing, so the restored graph has
exactly the sharing structure of the live one.

Determinism across executor backends comes for free: every stochastic draw in
a round is made either from a trainer-owned RNG stream or from the owning
client's private stream, and the process backend ships/restores client RNG
states onto the coordinator after each round — so the coordinator-side state
captured here is authoritative for ``serial``/``thread``/``process``/``cohort``
alike (see ``tests/test_checkpoint.py``).
"""

from __future__ import annotations

import pickle

__all__ = ["CHECKPOINT_SCHEMA_VERSION", "CheckpointError", "CheckpointMixin"]

#: Version stamped into every checkpoint blob.  Restoring a blob with a
#: different version raises :class:`CheckpointError`, which resume paths
#: treat as "no usable checkpoint" (the run recomputes from scratch).
CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint blob cannot be restored onto this trainer."""


class CheckpointMixin:
    """Capture/restore the full resumable state of a round-based trainer.

    Requirements on the host class:

    * ``self.history`` is the :class:`~repro.fl.history.TrainingHistory`
      accumulated so far (``rounds_completed()`` is its length);
    * ``run(num_rounds=k)`` executes ``k`` *additional* rounds, continuing
      the round indices from ``len(self.history)``;
    * attributes listed in :attr:`CHECKPOINT_EXCLUDE` are rebuilt
      deterministically by ``__init__`` from the same spec/dataset.
    """

    #: Attributes rebuilt by the constructor (or unpicklable) and therefore
    #: excluded from the state blob.  The default covers all built-in
    #: trainers; subclasses may extend it.
    CHECKPOINT_EXCLUDE: tuple[str, ...] = (
        "dataset",
        "clients",
        "_clients_by_id",
        "executor",
        "_model_factory",
        "config",
    )

    # ------------------------------------------------------------------
    def _checkpoint_client_map(self) -> dict | None:
        """Mapping ``client_id -> FLClient`` for per-client state, or None.

        Trainers without federated clients (the vanilla blockchain) return
        None; the FL trainers return their client lookup so the mixin can
        capture and restore each client's RNG stream and counters.
        """
        return None

    def rounds_completed(self) -> int:
        """Number of communication rounds this trainer has executed."""
        return len(self.history)

    # ------------------------------------------------------------------
    def checkpoint_state(self) -> bytes:
        """Serialise the trainer's complete resumable state into one blob."""
        exclude = set(self.CHECKPOINT_EXCLUDE)
        attrs = {k: v for k, v in self.__dict__.items() if k not in exclude}
        clients = self._checkpoint_client_map()
        client_state = None
        if clients is not None:
            client_state = {
                int(cid): {
                    "rng": client.rng.bit_generator.state,
                    "rounds_participated": int(client.rounds_participated),
                    "total_reward": float(client.total_reward),
                }
                for cid, client in clients.items()
            }
        payload = {
            "version": CHECKPOINT_SCHEMA_VERSION,
            "trainer": type(self).__qualname__,
            "rounds": self.rounds_completed(),
            "attrs": attrs,
            "clients": client_state,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def restore_state(self, blob: bytes) -> None:
        """Restore a :meth:`checkpoint_state` blob onto this (fresh) instance.

        Raises :class:`CheckpointError` on a version/trainer-class mismatch or
        a client population that no longer matches — all signatures of a blob
        produced by different code or a different spec, which resume paths
        treat as a miss rather than a corruption to propagate.
        """
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # pickle raises a zoo of types
            raise CheckpointError(f"checkpoint blob cannot be unpickled: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint schema version {payload.get('version') if isinstance(payload, dict) else '?'!r} "
                f"does not match {CHECKPOINT_SCHEMA_VERSION}"
            )
        if payload.get("trainer") != type(self).__qualname__:
            raise CheckpointError(
                f"checkpoint was written by {payload.get('trainer')!r}, "
                f"cannot restore onto {type(self).__qualname__!r}"
            )
        clients = self._checkpoint_client_map()
        client_state = payload.get("clients")
        if (clients is None) != (client_state is None):
            raise CheckpointError("checkpoint client state does not match this trainer")
        if clients is not None and set(client_state) != {int(c) for c in clients}:
            raise CheckpointError("checkpoint client population does not match this trainer")
        for name, value in payload["attrs"].items():
            setattr(self, name, value)
        if clients is not None:
            for cid, state in client_state.items():
                client = clients[cid]
                client.rng.bit_generator.state = state["rng"]
                client.rounds_participated = int(state["rounds_participated"])
                client.total_reward = float(state["total_reward"])

    # ------------------------------------------------------------------
    def run_until(self, total_rounds: int):
        """Continue running until ``total_rounds`` rounds exist in the history.

        A no-op when the trainer is already there; raises
        :class:`CheckpointError` when asked to run *backwards* (the caller
        resumed from a rung beyond the requested fidelity).
        """
        total_rounds = int(total_rounds)
        done = self.rounds_completed()
        if total_rounds < done:
            raise CheckpointError(
                f"cannot run to round {total_rounds}: trainer already completed {done}"
            )
        if total_rounds > done:
            self.run(num_rounds=total_rounds - done)
        return self.history
