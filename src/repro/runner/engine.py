"""The experiment engine: one entry point for every run in the repository.

The engine turns a validated :class:`~repro.runner.scenario.ScenarioSpec`
into a run of the *registered* system it names: it resolves the spec's
``system`` through the registry (:mod:`repro.systems`), builds the federated
dataset only when the system's capabilities declare it needs one, and
executes ``system.build(spec, dataset).run()`` — so adding a system is a
registration, not an engine patch.  Federated datasets are memoised by their
generating fields, so a sweep that varies only algorithmic knobs (learning
rate, strategy, miner count, ...) partitions the data exactly once.

The heavy lifting of a round stays in the trainers (e.g.
:mod:`repro.core.procedures`); the engine's job is wiring (registry → dataset
→ run) plus the scenario-level conveniences: :meth:`ExperimentEngine.run_many`
for scenario lists and :meth:`ExperimentEngine.sweep_table` for the
Figure-style summary tables the benchmarks print.  Prefer the stable facade
:mod:`repro.api` (``run``/``sweep``/``compare``) for new call sites.

Attach a content-addressed :class:`~repro.store.runstore.RunStore` to make
runs persistent: every computed result is written under its spec's content
key, and (with ``reuse_cached=True``, the default) a scenario whose record
already exists is loaded instead of recomputed — the mechanism behind
``repro sweep --resume`` and the opt-in ``cache="store"`` of
:mod:`repro.api`.  The ``runs_computed`` / ``cache_hits`` counters make the
split observable (and testable).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.experiment import build_federated_dataset
from repro.core.results import ComparisonResult, summarize_history
from repro.datasets.federated import FederatedDataset
from repro.fl.history import TrainingHistory
from repro.runner.checkpoint import CheckpointError
from repro.runner.scenario import ScenarioError, ScenarioSpec
from repro.systems.registry import RunResult, get_system

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.store.runstore import RunStore

__all__ = ["RunCancelled", "ScenarioResult", "ExperimentEngine", "run_scenario"]


class RunCancelled(RuntimeError):
    """A streaming run was cancelled cooperatively between rounds.

    Raised by :meth:`ExperimentEngine.run_streaming` when its ``should_stop``
    callable returns True; the rounds computed so far are accounted in
    ``round_evaluations`` but no record is stored and ``runs_computed`` does
    not move.
    """


@dataclass(frozen=True)
class ScenarioResult:
    """One executed scenario: the spec, its history, and the trainer label."""

    spec: ScenarioSpec
    history: TrainingHistory

    @property
    def summary(self) -> dict:
        """The standard one-line summary of the run."""
        return summarize_history(self.history)


@dataclass
class ExperimentEngine:
    """Executes scenarios through the system registry, memoising datasets.

    Attributes
    ----------
    cache_datasets:
        When True (default) federated datasets are reused across scenarios
        that share the same generating fields (clients, samples, scheme,
        noise, seed), matching the benchmark suite's behaviour.  Systems
        whose registered capabilities set ``needs_dataset=False`` (the
        vanilla blockchain) never trigger a dataset build at all.
    store:
        Optional content-addressed :class:`~repro.store.runstore.RunStore`.
        When set, every computed run is persisted under its spec's content
        key; with ``reuse_cached`` also True, a spec whose record already
        exists is loaded from disk instead of recomputed.
    reuse_cached:
        Whether the store is consulted before computing (True, the resume
        path) or written through only (False — persist everything but
        recompute regardless, the CLI's default sweep behaviour).
    runs_computed:
        Number of scenarios this engine actually executed (cache misses
        included); together with ``cache_hits`` this makes resume behaviour
        assertable.
    cache_hits:
        Number of scenarios served from the store without computation.

    All three counters are updated through :meth:`tally` under one internal
    lock, so an engine shared across server worker threads (``repro serve``)
    never loses an increment to a read-modify-write race.
    round_evaluations:
        Total *simulated communication rounds actually computed* by this
        engine (cache hits and checkpoint-resumed prefixes cost zero) — the
        budget an adaptive search spends, and the quantity
        ``benchmarks/bench_search_efficiency.py`` compares against an
        exhaustive grid.
    """

    cache_datasets: bool = True
    store: "RunStore | None" = None
    reuse_cached: bool = True
    runs_computed: int = 0
    cache_hits: int = 0
    round_evaluations: int = 0
    _dataset_cache: dict[tuple, FederatedDataset] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    # ------------------------------------------------------------------
    def tally(self, *, runs: int = 0, rounds: int = 0, hits: int = 0) -> None:
        """Atomically bump the engine counters (thread-safe).

        Plain ``+=`` on the counter attributes is a read-modify-write that
        loses increments when the engine is shared across threads (the
        ``repro serve`` worker pool); every internal counter update routes
        through here, and external executors (the serve layer's subprocess
        isolation mode) use it to account work computed on the engine's
        behalf in another process.
        """
        with self._lock:
            self.runs_computed += runs
            self.round_evaluations += rounds
            self.cache_hits += hits

    def dataset_for(self, spec: ScenarioSpec) -> FederatedDataset:
        """Build (or fetch the memoised) federated dataset for ``spec``."""
        key = spec.dataset_key()
        if not self.cache_datasets:
            return self._build_dataset(spec)
        with self._lock:
            dataset = self._dataset_cache.get(key)
        if dataset is None:
            # Built outside the lock (builds are slow and deterministic);
            # concurrent builders race benignly — setdefault keeps one winner.
            built = self._build_dataset(spec)
            with self._lock:
                dataset = self._dataset_cache.setdefault(key, built)
        return dataset

    @staticmethod
    def _build_dataset(spec: ScenarioSpec) -> FederatedDataset:
        return build_federated_dataset(
            num_clients=spec.num_clients,
            num_samples=spec.num_samples,
            scheme=spec.scheme,
            seed=spec.seed,
            noise_std=spec.noise_std,
            low_quality_fraction=spec.low_quality_fraction,
            distinct_shards=spec.distinct_shards,
        )

    # ------------------------------------------------------------------
    def run_result(self, spec: ScenarioSpec) -> RunResult:
        """Execute one scenario and return the system's typed :class:`RunResult`.

        With a :attr:`store` attached, the result is served from disk when a
        record for the spec's content key exists (and ``reuse_cached`` is
        True), and persisted after computation otherwise.
        """
        spec.validate()
        if self.store is not None and self.reuse_cached:
            cached = self.store.get(spec)
            if cached is not None:
                self.tally(hits=1)
                return cached
        system = get_system(spec.system)
        dataset = self.dataset_for(spec) if system.capabilities.needs_dataset else None
        result = system.build(spec, dataset).run()
        result.history.label = spec.name
        self.tally(runs=1, rounds=len(result.history))
        if self.store is not None:
            self.store.put(spec, result)
        return result

    def run_partial(
        self,
        spec: ScenarioSpec,
        rounds: int | None = None,
        *,
        resume_from: tuple[int, ...] = (),
        checkpoint: bool = True,
    ) -> RunResult:
        """Run ``spec`` to a fidelity of ``rounds`` rounds, resuming when possible.

        The partial run is a first-class record: it is stored under (and
        served from) the content key of ``spec.with_overrides(num_rounds=rounds)``
        — ``num_rounds`` is purely a loop bound in every trainer, so an
        ``r``-round record is *exactly* the record a plain ``r``-round sweep
        would produce, and rungs are shared between adaptive searches and
        ordinary sweeps with no extra key machinery.

        ``resume_from`` lists lower fidelities whose records may carry a
        checkpoint (an ASHA rung ladder); they are tried highest-first, and a
        hit restores the trainer's full state so only ``rounds - r`` new
        rounds are computed (``round_evaluations`` counts exactly those).
        With ``checkpoint=True`` (default, store attached) the finished run's
        own resumable state is persisted for the next promotion.

        Raises :class:`~repro.runner.scenario.ScenarioError` for systems
        whose trainer does not implement the checkpoint protocol
        (:class:`~repro.runner.checkpoint.CheckpointMixin`).
        """
        spec.validate()
        target = (
            spec
            if rounds is None or int(rounds) == spec.num_rounds
            else spec.with_overrides(num_rounds=int(rounds))
        )
        if self.store is not None and self.reuse_cached:
            cached = self.store.get(target)
            if cached is not None:
                self.tally(hits=1)
                return cached
        system = get_system(target.system)
        dataset = self.dataset_for(target) if system.capabilities.needs_dataset else None
        runner = system.build(target, dataset)
        trainer = getattr(runner, "trainer", None)
        if trainer is None or not callable(getattr(trainer, "run_until", None)):
            raise ScenarioError(
                f"system {target.system!r} does not support partial runs: its "
                "build() result exposes no checkpointable trainer (see "
                "repro.runner.checkpoint.CheckpointMixin)"
            )
        start = 0
        if self.store is not None and self.reuse_cached:
            candidates = sorted(
                {int(r) for r in resume_from if 0 < int(r) < target.num_rounds},
                reverse=True,
            )
            for prior in candidates:
                blob = self.store.get_checkpoint(target.with_overrides(num_rounds=prior))
                if blob is None:
                    continue
                try:
                    trainer.restore_state(blob)
                except CheckpointError:
                    continue  # stale/foreign blob: fall through to lower rungs
                start = trainer.rounds_completed()
                break
        try:
            trainer.run_until(target.num_rounds)
            blob = (
                trainer.checkpoint_state()
                if checkpoint and self.store is not None
                else None
            )
        finally:
            close = getattr(trainer, "close", None)
            if callable(close):
                close()
        history = trainer.history
        history.label = spec.name
        result = RunResult(
            system=system.name,
            history=history,
            extras=dict(getattr(runner, "extras", {})),
        )
        self.tally(runs=1, rounds=target.num_rounds - start)
        if self.store is not None:
            self.store.put(target, result, checkpoint=blob)
        return result

    def run_streaming(
        self,
        spec: ScenarioSpec,
        *,
        progress=None,
        should_stop=None,
    ) -> RunResult:
        """Run ``spec`` one round at a time, reporting progress between rounds.

        ``progress(rounds_done, total_rounds)`` is called after every
        simulated communication round (and once, immediately, on a store
        hit), which is how the experiment service streams per-round progress
        into its job status endpoint.  ``should_stop()`` is polled between
        rounds; when it returns True the run stops and :class:`RunCancelled`
        is raised — the rounds already computed are counted in
        ``round_evaluations``, nothing is stored, and ``runs_computed`` does
        not move.

        The stepping reuses the checkpoint machinery's ``run_until`` (the
        same incremental path an ASHA promotion resumes through), so the
        resulting history is bit-identical to an uninterrupted
        :meth:`run_result` of the same spec.  Systems whose trainer does not
        implement the checkpoint protocol fall back to one non-interruptible
        :meth:`run_result` call with a single final progress report.
        """
        spec.validate()
        total = int(spec.num_rounds)
        if self.store is not None and self.reuse_cached:
            cached = self.store.get(spec)
            if cached is not None:
                self.tally(hits=1)
                if progress is not None:
                    progress(total, total)
                return cached
        system = get_system(spec.system)
        dataset = self.dataset_for(spec) if system.capabilities.needs_dataset else None
        runner = system.build(spec, dataset)
        trainer = getattr(runner, "trainer", None)
        if trainer is None or not callable(getattr(trainer, "run_until", None)):
            result = self._run_prebuilt(spec, runner)
            if progress is not None:
                progress(total, total)
            return result
        done = 0
        try:
            for target_round in range(1, total + 1):
                if should_stop is not None and should_stop():
                    raise RunCancelled(
                        f"run of {spec.name!r} cancelled after {done}/{total} rounds"
                    )
                trainer.run_until(target_round)
                done = target_round
                if progress is not None:
                    progress(done, total)
        finally:
            self.tally(rounds=done)
            close = getattr(trainer, "close", None)
            if callable(close):
                close()
        history = trainer.history
        history.label = spec.name
        result = RunResult(
            system=system.name,
            history=history,
            extras=dict(getattr(runner, "extras", {})),
        )
        self.tally(runs=1)
        if self.store is not None:
            self.store.put(spec, result)
        return result

    def _run_prebuilt(self, spec: ScenarioSpec, runner) -> RunResult:
        """Execute an already-built run object with the standard accounting."""
        result = runner.run()
        result.history.label = spec.name
        self.tally(runs=1, rounds=len(result.history))
        if self.store is not None:
            self.store.put(spec, result)
        return result

    def run(self, spec: ScenarioSpec) -> TrainingHistory:
        """Execute one scenario end-to-end and return its history."""
        return self.run_result(spec).history

    def run_many(self, specs: list[ScenarioSpec]) -> list[ScenarioResult]:
        """Execute a list of scenarios (e.g. an expanded matrix) in order."""
        return [ScenarioResult(spec=spec, history=self.run(spec)) for spec in specs]

    def sweep_table(
        self,
        specs: list[ScenarioSpec],
        *,
        title: str = "Scenario sweep",
    ) -> tuple[ComparisonResult, list[ScenarioResult]]:
        """Run ``specs`` and tabulate the per-scenario summaries."""
        results = self.run_many(specs)
        table = ComparisonResult(
            title=title,
            columns=["scenario", "system", "rounds", "avg_delay_s", "avg_accuracy", "final_accuracy"],
        )
        for result in results:
            summary = result.summary
            table.add_row(
                result.spec.name,
                result.spec.system,
                summary["rounds"],
                summary["average_delay"],
                summary["average_accuracy"],
                summary["final_accuracy"],
            )
        return table, results


def run_scenario(spec: ScenarioSpec) -> TrainingHistory:
    """Convenience wrapper: execute one scenario with a throwaway engine."""
    return ExperimentEngine().run(spec)
