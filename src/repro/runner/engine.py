"""The experiment engine: one entry point for every run in the repository.

The engine turns a validated :class:`~repro.runner.scenario.ScenarioSpec`
into a run of the *registered* system it names: it resolves the spec's
``system`` through the registry (:mod:`repro.systems`), builds the federated
dataset only when the system's capabilities declare it needs one, and
executes ``system.build(spec, dataset).run()`` — so adding a system is a
registration, not an engine patch.  Federated datasets are memoised by their
generating fields, so a sweep that varies only algorithmic knobs (learning
rate, strategy, miner count, ...) partitions the data exactly once.

The heavy lifting of a round stays in the trainers (e.g.
:mod:`repro.core.procedures`); the engine's job is wiring (registry → dataset
→ run) plus the scenario-level conveniences: :meth:`ExperimentEngine.run_many`
for scenario lists and :meth:`ExperimentEngine.sweep_table` for the
Figure-style summary tables the benchmarks print.  Prefer the stable facade
:mod:`repro.api` (``run``/``sweep``/``compare``) for new call sites.

Attach a content-addressed :class:`~repro.store.runstore.RunStore` to make
runs persistent: every computed result is written under its spec's content
key, and (with ``reuse_cached=True``, the default) a scenario whose record
already exists is loaded instead of recomputed — the mechanism behind
``repro sweep --resume`` and the opt-in ``cache="store"`` of
:mod:`repro.api`.  The ``runs_computed`` / ``cache_hits`` counters make the
split observable (and testable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.experiment import build_federated_dataset
from repro.core.results import ComparisonResult, summarize_history
from repro.datasets.federated import FederatedDataset
from repro.fl.history import TrainingHistory
from repro.runner.scenario import ScenarioSpec
from repro.systems.registry import RunResult, get_system

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.store.runstore import RunStore

__all__ = ["ScenarioResult", "ExperimentEngine", "run_scenario"]


@dataclass(frozen=True)
class ScenarioResult:
    """One executed scenario: the spec, its history, and the trainer label."""

    spec: ScenarioSpec
    history: TrainingHistory

    @property
    def summary(self) -> dict:
        """The standard one-line summary of the run."""
        return summarize_history(self.history)


@dataclass
class ExperimentEngine:
    """Executes scenarios through the system registry, memoising datasets.

    Attributes
    ----------
    cache_datasets:
        When True (default) federated datasets are reused across scenarios
        that share the same generating fields (clients, samples, scheme,
        noise, seed), matching the benchmark suite's behaviour.  Systems
        whose registered capabilities set ``needs_dataset=False`` (the
        vanilla blockchain) never trigger a dataset build at all.
    store:
        Optional content-addressed :class:`~repro.store.runstore.RunStore`.
        When set, every computed run is persisted under its spec's content
        key; with ``reuse_cached`` also True, a spec whose record already
        exists is loaded from disk instead of recomputed.
    reuse_cached:
        Whether the store is consulted before computing (True, the resume
        path) or written through only (False — persist everything but
        recompute regardless, the CLI's default sweep behaviour).
    runs_computed:
        Number of scenarios this engine actually executed (cache misses
        included); together with ``cache_hits`` this makes resume behaviour
        assertable.
    cache_hits:
        Number of scenarios served from the store without computation.
    """

    cache_datasets: bool = True
    store: "RunStore | None" = None
    reuse_cached: bool = True
    runs_computed: int = 0
    cache_hits: int = 0
    _dataset_cache: dict[tuple, FederatedDataset] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def dataset_for(self, spec: ScenarioSpec) -> FederatedDataset:
        """Build (or fetch the memoised) federated dataset for ``spec``."""
        key = spec.dataset_key()
        if not self.cache_datasets:
            return self._build_dataset(spec)
        if key not in self._dataset_cache:
            self._dataset_cache[key] = self._build_dataset(spec)
        return self._dataset_cache[key]

    @staticmethod
    def _build_dataset(spec: ScenarioSpec) -> FederatedDataset:
        return build_federated_dataset(
            num_clients=spec.num_clients,
            num_samples=spec.num_samples,
            scheme=spec.scheme,
            seed=spec.seed,
            noise_std=spec.noise_std,
            low_quality_fraction=spec.low_quality_fraction,
            distinct_shards=spec.distinct_shards,
        )

    # ------------------------------------------------------------------
    def run_result(self, spec: ScenarioSpec) -> RunResult:
        """Execute one scenario and return the system's typed :class:`RunResult`.

        With a :attr:`store` attached, the result is served from disk when a
        record for the spec's content key exists (and ``reuse_cached`` is
        True), and persisted after computation otherwise.
        """
        spec.validate()
        if self.store is not None and self.reuse_cached:
            cached = self.store.get(spec)
            if cached is not None:
                self.cache_hits += 1
                return cached
        system = get_system(spec.system)
        dataset = self.dataset_for(spec) if system.capabilities.needs_dataset else None
        result = system.build(spec, dataset).run()
        result.history.label = spec.name
        self.runs_computed += 1
        if self.store is not None:
            self.store.put(spec, result)
        return result

    def run(self, spec: ScenarioSpec) -> TrainingHistory:
        """Execute one scenario end-to-end and return its history."""
        return self.run_result(spec).history

    def run_many(self, specs: list[ScenarioSpec]) -> list[ScenarioResult]:
        """Execute a list of scenarios (e.g. an expanded matrix) in order."""
        return [ScenarioResult(spec=spec, history=self.run(spec)) for spec in specs]

    def sweep_table(
        self,
        specs: list[ScenarioSpec],
        *,
        title: str = "Scenario sweep",
    ) -> tuple[ComparisonResult, list[ScenarioResult]]:
        """Run ``specs`` and tabulate the per-scenario summaries."""
        results = self.run_many(specs)
        table = ComparisonResult(
            title=title,
            columns=["scenario", "system", "rounds", "avg_delay_s", "avg_accuracy", "final_accuracy"],
        )
        for result in results:
            summary = result.summary
            table.add_row(
                result.spec.name,
                result.spec.system,
                summary["rounds"],
                summary["average_delay"],
                summary["average_accuracy"],
                summary["final_accuracy"],
            )
        return table, results


def run_scenario(spec: ScenarioSpec) -> TrainingHistory:
    """Convenience wrapper: execute one scenario with a throwaway engine."""
    return ExperimentEngine().run(spec)
