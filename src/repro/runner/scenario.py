"""Declarative experiment scenarios.

A :class:`ScenarioSpec` is the single description of one experiment: which
system runs (FAIR-BFL, a baseline, or the vanilla blockchain), the workload
shape (clients, samples, rounds, partitioning), the algorithmic knobs
(strategy, flexibility mode, attack/defense mix, incentive parameters) and the
execution backend.  Scenarios are plain data — they can be written as JSON or
TOML files, swept as cartesian grids through :class:`ScenarioMatrix`, and
executed by :class:`repro.runner.engine.ExperimentEngine` — so every benchmark
and CLI subcommand drives through one engine instead of hand-rolled wiring.

Validation is derived from the system registry
(:mod:`repro.systems.registry`): :meth:`ScenarioSpec.validate` resolves the
``system`` field through :func:`~repro.systems.registry.get_system`, applies
the capability-derived axis checks (``round_mode``/``attacks``/``defense``
only where the registered system supports them), and asks the system to
build its authoritative config (:class:`repro.core.config.FairBFLConfig` and
friends) — so a scenario file can never drift from what the registered
systems accept, and a plugin-registered system validates exactly like a
built-in.  All scenario problems are raised as :class:`ScenarioError` (a
:class:`ValueError`) with the offending field named.

See ``docs/scenarios.md`` for the field-by-field reference and
``scenarios/`` for example files.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path

from repro.attacks.gradient_attacks import ATTACKS
from repro.core.config import FairBFLConfig
from repro.core.flexibility import OperatingMode
from repro.fl.client import LocalTrainingConfig
from repro.fl.robust import check_defense
from repro.fl.fedavg import FedAvgConfig
from repro.fl.fedprox import FedProxConfig
from repro.incentive.contribution import ContributionConfig
from repro.net.topology import TOPOLOGIES
from repro.runner.executor import EXECUTOR_BACKENDS
from repro.sim.rounds import ROUND_MODES
from repro.sim.vanilla_blockchain import VanillaBlockchainConfig
from repro.systems.registry import (
    SystemRegistryError,
    check_spec_axes,
    get_system,
    system_names,
)

__all__ = [
    "SCENARIO_SYSTEMS",
    "ScenarioError",
    "ScenarioSpec",
    "ScenarioMatrix",
    "scenarios_from_mapping",
    "load_scenario_file",
]

_PARTITION_SCHEMES = ("iid", "shard", "dirichlet")


def __getattr__(name: str):
    # Kept for backwards compatibility: the runnable systems used to be a
    # hardcoded tuple here; they are now whatever the registry holds.
    if name == "SCENARIO_SYSTEMS":
        return system_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ScenarioError(ValueError):
    """A scenario file or mapping is malformed or fails validation."""


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified experiment (see ``docs/scenarios.md``).

    Field defaults deliberately match the laptop-scale defaults of
    :class:`repro.core.experiment.ExperimentSuite`, so a scenario that sets
    nothing but ``system`` reproduces the benchmark harness's baseline
    workload.
    """

    # -- identity -------------------------------------------------------
    name: str = "scenario"
    system: str = "fairbfl"
    seed: int = 0
    # -- workload shape -------------------------------------------------
    num_clients: int = 20
    num_samples: int = 1500
    num_rounds: int = 10
    participation: float = 0.5
    scheme: str = "dirichlet"
    noise_std: float = 0.4
    low_quality_fraction: float = 0.0
    #: Number of *distinct* client shards to synthesise; the remaining clients
    #: share them cyclically (array views, no copies), which is how 100k+-client
    #: populations fit in memory.  0 means every client gets its own shard.
    distinct_shards: int = 0
    # -- model / local training ----------------------------------------
    model_name: str = "logreg"
    hidden_sizes: tuple[int, ...] = (64,)
    epochs: int = 2
    batch_size: int = 10
    learning_rate: float = 0.05
    proximal_mu: float = 0.01
    drop_percent: float = 0.0
    # -- blockchain / flexibility --------------------------------------
    miners: int = 2
    mode: str = "bfl"
    round_mode: str = "sync"
    straggler_deadline: float = 6.0
    async_quorum: float = 0.5
    staleness_decay: float = 0.5
    verify_signatures: bool = True
    use_real_pow: bool = True
    pow_difficulty: float = 16.0
    # -- network substrate (see repro.net) ------------------------------
    topology: str = "global"
    peer_k: int = 2
    partition: str = "none"
    churn: str = "none"
    # -- incentive ------------------------------------------------------
    strategy: str = "keep"
    use_fair_aggregation: bool = True
    clustering: str = "dbscan"
    dbscan_eps: float = 0.7
    dbscan_min_samples: int = 3
    base_reward: float = 1.0
    # -- attacks --------------------------------------------------------
    attacks: bool = False
    attack_name: str = "sign_flip"
    min_attackers: int = 1
    max_attackers: int = 3
    # -- defenses -------------------------------------------------------
    defense: str = "none"
    defense_fraction: float = 0.2
    # -- execution ------------------------------------------------------
    backend: str = "serial"
    max_workers: int | None = None

    # ------------------------------------------------------------------
    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """All settable scenario fields, in declaration order."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_mapping(cls, mapping: dict) -> "ScenarioSpec":
        """Build and validate a spec from a plain mapping (JSON/TOML payload).

        Unknown keys are rejected (with the misspelt key named) rather than
        silently ignored, and scalar values are coerced to the field types.
        """
        if not isinstance(mapping, dict):
            raise ScenarioError(
                f"a scenario must be a mapping of fields, got {type(mapping).__name__}"
            )
        known = {f.name: f for f in fields(cls)}
        values: dict[str, object] = {}
        for key, raw in mapping.items():
            if key not in known:
                raise ScenarioError(
                    f"unknown scenario field {key!r}; valid fields: "
                    + ", ".join(sorted(known))
                )
            values[key] = _coerce(key, raw, cls.__dataclass_fields__[key].type)
        spec = cls(**values)
        spec.validate()
        return spec

    def to_mapping(self) -> dict:
        """The spec as a JSON/TOML-serialisable mapping."""
        out: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            if value is None:
                continue
            out[f.name] = value
        return out

    def canonical_mapping(self) -> dict:
        """The *complete* field mapping in canonical form, for content hashing.

        Unlike :meth:`to_mapping` (a round-trippable document that drops
        ``None`` values), this mapping lists **every** field — so adding a
        field to :class:`ScenarioSpec` changes the canonical form, and any
        run cached under the old form is correctly invalidated — with values
        normalised through the same coercion the file loader applies
        (``participation=1`` and ``participation=1.0`` hash identically) and
        tuples rendered as lists.  :func:`repro.store.keys.spec_key` hashes
        this mapping (minus the presentation-only ``name``) into the run
        store's content address.
        """
        out: dict[str, object] = {}
        for f in fields(self):
            value = _coerce(f.name, getattr(self, f.name), f.type)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy of this spec with ``overrides`` applied (and re-validated)."""
        spec = replace(self, **overrides)
        spec.validate()
        return spec

    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Validate the spec against the registered system's config and axes."""
        try:
            system = get_system(self.system)
        except SystemRegistryError as exc:
            raise ScenarioError(str(exc)) from exc
        if self.scheme not in _PARTITION_SCHEMES:
            raise ScenarioError(
                f"unknown partition scheme {self.scheme!r}; expected one of: "
                + ", ".join(_PARTITION_SCHEMES)
            )
        if self.backend not in EXECUTOR_BACKENDS:
            raise ScenarioError(
                f"unknown backend {self.backend!r}; expected one of: "
                + ", ".join(EXECUTOR_BACKENDS)
            )
        if self.round_mode not in ROUND_MODES:
            raise ScenarioError(
                f"unknown round_mode {self.round_mode!r}; expected one of: "
                + ", ".join(ROUND_MODES)
            )
        # Checked here (not only via FairBFLConfig) so scenarios for the
        # baseline systems — including blockchain, whose config ignores the
        # FL axes — fail fast too, with a clean ScenarioError.
        if self.attack_name not in ATTACKS:
            raise ScenarioError(
                f"unknown attack {self.attack_name!r}; expected one of: "
                + ", ".join(ATTACKS)
            )
        if not (0.0 <= self.defense_fraction < 0.5):
            raise ScenarioError(
                f"defense_fraction must lie in [0, 0.5), got {self.defense_fraction}"
            )
        try:
            check_defense(self.defense, self.defense_fraction)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from exc
        if self.straggler_deadline <= 0.0:
            raise ScenarioError(
                f"straggler_deadline must be positive, got {self.straggler_deadline}"
            )
        if not (0.0 < self.async_quorum <= 1.0):
            raise ScenarioError(f"async_quorum must lie in (0, 1], got {self.async_quorum}")
        if self.staleness_decay < 0.0:
            raise ScenarioError(f"staleness_decay must be >= 0, got {self.staleness_decay}")
        for field_name in ("num_clients", "num_samples"):
            if int(getattr(self, field_name)) <= 0:
                raise ScenarioError(
                    f"{field_name} must be positive, got {getattr(self, field_name)}"
                )
        if self.max_workers is not None and int(self.max_workers) <= 0:
            raise ScenarioError(f"max_workers must be positive, got {self.max_workers}")
        if not (0 <= int(self.distinct_shards) <= int(self.num_clients)):
            raise ScenarioError(
                f"distinct_shards must lie in [0, num_clients={self.num_clients}], "
                f"got {self.distinct_shards}"
            )
        if not (0.0 <= self.low_quality_fraction <= 1.0):
            raise ScenarioError(
                f"low_quality_fraction must be in [0, 1], got {self.low_quality_fraction}"
            )
        # Checked here (not only via FairBFLConfig) so every system rejects a
        # misspelt topology, and the non-net systems reject the net axes with
        # a clean message before the capability check fires.
        if self.topology not in TOPOLOGIES:
            raise ScenarioError(
                f"unknown topology {self.topology!r}; expected one of: "
                + ", ".join(TOPOLOGIES)
            )
        if self.topology == "global":
            for axis in ("partition", "churn"):
                if (getattr(self, axis) or "none") != "none":
                    raise ScenarioError(
                        f"{axis}={getattr(self, axis)!r} requires a non-'global' "
                        "topology (the single-network path cannot split)"
                    )
        # Capability-derived applicability: engaging round_mode/attacks/defense
        # on a system whose registration does not support the axis fails here.
        try:
            check_spec_axes(system, self)
        except SystemRegistryError as exc:
            raise ScenarioError(str(exc)) from exc
        try:
            # The registered system builds its authoritative config, which
            # carries the real validation rules — scenario validation stays in
            # lockstep with core/config.py (and with plugin config classes).
            system.validate(self)
        except ScenarioError:
            raise
        except (ValueError, TypeError) as exc:
            raise ScenarioError(f"invalid scenario {self.name!r}: {exc}") from exc
        return self

    # -- config builders ------------------------------------------------
    def local_config(self) -> LocalTrainingConfig:
        """The local-training hyper-parameters (``E``, ``B``, ``η``)."""
        return LocalTrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
        )

    def contribution_config(self) -> ContributionConfig:
        """Algorithm 2 configuration derived from the incentive fields."""
        return ContributionConfig(
            algorithm=self.clustering,
            eps=self.dbscan_eps,
            min_samples=self.dbscan_min_samples,
            base_reward=self.base_reward,
            seed=self.seed,
        )

    def fairbfl_config(self) -> FairBFLConfig:
        """The :class:`FairBFLConfig` this scenario describes."""
        strategy = "discard" if self.system == "fairbfl-discard" else self.strategy
        return FairBFLConfig(
            num_miners=self.miners,
            num_rounds=self.num_rounds,
            participation_fraction=self.participation,
            local=self.local_config(),
            model_name=self.model_name,
            hidden_sizes=self.hidden_sizes,
            contribution=self.contribution_config(),
            strategy=strategy,
            use_fair_aggregation=self.use_fair_aggregation,
            mode=OperatingMode.parse(self.mode),
            round_mode=self.round_mode,
            straggler_deadline=self.straggler_deadline,
            async_quorum=self.async_quorum,
            staleness_decay=self.staleness_decay,
            enable_attacks=self.attacks,
            attack_name=self.attack_name,
            min_attackers=self.min_attackers,
            max_attackers=self.max_attackers,
            defense=self.defense,
            defense_fraction=self.defense_fraction,
            verify_signatures=self.verify_signatures,
            use_real_pow=self.use_real_pow,
            pow_difficulty=self.pow_difficulty,
            topology=self.topology,
            peer_k=self.peer_k,
            partition=self.partition,
            churn=self.churn,
            executor_backend=self.backend,
            executor_workers=self.max_workers,
            seed=self.seed,
        )

    def fedavg_config(self) -> FedAvgConfig:
        """The :class:`FedAvgConfig` this scenario describes."""
        return FedAvgConfig(
            num_rounds=self.num_rounds,
            participation_fraction=self.participation,
            local=self.local_config(),
            defense=self.defense,
            defense_fraction=self.defense_fraction,
            model_name=self.model_name,
            hidden_sizes=self.hidden_sizes,
            executor_backend=self.backend,
            executor_workers=self.max_workers,
            seed=self.seed,
        )

    def fedprox_config(self) -> FedProxConfig:
        """The :class:`FedProxConfig` this scenario describes."""
        return FedProxConfig.from_fedavg(
            self.fedavg_config(),
            proximal_mu=self.proximal_mu,
            drop_percent=self.drop_percent,
        )

    def blockchain_config(self) -> VanillaBlockchainConfig:
        """The :class:`VanillaBlockchainConfig` this scenario describes."""
        return VanillaBlockchainConfig(
            num_workers=self.num_clients,
            num_miners=self.miners,
            num_rounds=self.num_rounds,
            seed=self.seed,
        )

    def dataset_key(self) -> tuple:
        """The fields that determine the federated dataset (cache key)."""
        return (
            self.num_clients,
            self.num_samples,
            self.scheme,
            self.noise_std,
            self.low_quality_fraction,
            self.distinct_shards,
            self.seed,
        )


def _coerce(key: str, value: object, annotation: str) -> object:
    """Coerce a JSON/TOML scalar to the annotated field type."""
    try:
        if annotation == "int":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(f"expected an integer, got {value!r}")
            if float(value) != int(value):
                raise TypeError(f"expected an integer, got {value!r}")
            return int(value)
        if annotation == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(f"expected a number, got {value!r}")
            return float(value)
        if annotation == "bool":
            if not isinstance(value, bool):
                raise TypeError(f"expected a boolean, got {value!r}")
            return value
        if annotation == "str":
            if not isinstance(value, str):
                raise TypeError(f"expected a string, got {value!r}")
            return value
        if annotation.startswith("tuple"):
            if not isinstance(value, (list, tuple)):
                raise TypeError(f"expected a list, got {value!r}")
            return tuple(int(v) for v in value)
        if annotation == "int | None":
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(f"expected an integer or null, got {value!r}")
            return int(value)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"invalid value for scenario field {key!r}: {exc}") from exc
    return value


@dataclass(frozen=True)
class ScenarioMatrix:
    """A cartesian sweep: one base spec plus per-field value lists.

    ``expand()`` produces one named :class:`ScenarioSpec` per grid point, e.g.
    a matrix over ``learning_rate = [0.01, 0.05]`` and ``strategy = ["keep",
    "discard"]`` yields four scenarios named
    ``base[learning_rate=0.01,strategy=keep]`` and so on.
    """

    base: ScenarioSpec
    grid: dict

    def expand(self) -> list[ScenarioSpec]:
        """All grid points as validated specs (base order × declaration order)."""
        if not isinstance(self.grid, dict):
            raise ScenarioError(
                f"matrix must map field names to value lists, got {type(self.grid).__name__}"
            )
        axes: list[tuple[str, list]] = []
        valid = set(ScenarioSpec.field_names())
        for key, values in self.grid.items():
            if key not in valid:
                raise ScenarioError(
                    f"unknown matrix field {key!r}; valid fields: " + ", ".join(sorted(valid))
                )
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise ScenarioError(
                    f"matrix field {key!r} must map to a non-empty list of values"
                )
            axes.append((key, list(values)))
        if not axes:
            return [self.base.validate()]
        specs: list[ScenarioSpec] = []
        base_map = self.base.to_mapping()
        for combo in itertools.product(*(values for _, values in axes)):
            point = dict(zip((k for k, _ in axes), combo))
            label = ",".join(f"{k}={v}" for k, v in point.items())
            merged = {**base_map, **point, "name": f"{self.base.name}[{label}]"}
            specs.append(ScenarioSpec.from_mapping(merged))
        return specs


def scenarios_from_mapping(data: dict, *, default_name: str = "scenario") -> list[ScenarioSpec]:
    """Expand a parsed scenario document into a list of validated specs.

    Three document shapes are accepted:

    * a flat mapping of :class:`ScenarioSpec` fields — one scenario;
    * ``{"base": {...}, "matrix": {field: [values, ...]}}`` — a cartesian sweep;
    * ``{"base": {...}, "scenarios": [{...}, ...]}`` — an explicit list, each
      entry overriding the shared base.
    """
    if not isinstance(data, dict):
        raise ScenarioError(
            f"a scenario document must be a mapping, got {type(data).__name__}"
        )
    if "scenarios" in data and "matrix" in data:
        raise ScenarioError("a scenario document cannot have both 'scenarios' and 'matrix'")
    if "scenarios" in data:
        entries = data["scenarios"]
        if not isinstance(entries, list) or not entries:
            raise ScenarioError("'scenarios' must be a non-empty list of scenario mappings")
        base = data.get("base", {})
        if not isinstance(base, dict):
            raise ScenarioError("'base' must be a mapping of scenario fields")
        # Top-level keys other than the structural ones are shared fields too,
        # exactly as in the matrix shape below.
        extra = {k: v for k, v in data.items() if k not in {"base", "scenarios", "name"}}
        prefix = str(data.get("name", default_name))
        specs = []
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise ScenarioError(f"scenario entry {index} must be a mapping")
            merged = {**extra, **base, **entry}
            merged.setdefault("name", f"{prefix}-{index}")
            specs.append(ScenarioSpec.from_mapping(merged))
        return specs
    if "matrix" in data:
        base_fields = dict(data.get("base", {}))
        if not isinstance(data.get("base", {}), dict):
            raise ScenarioError("'base' must be a mapping of scenario fields")
        extra = {k: v for k, v in data.items() if k not in {"base", "matrix"}}
        base_fields = {**extra, **base_fields}
        base_fields.setdefault("name", default_name)
        base = ScenarioSpec.from_mapping(base_fields)
        return ScenarioMatrix(base, data["matrix"]).expand()
    mapping = dict(data)
    mapping.setdefault("name", default_name)
    return [ScenarioSpec.from_mapping(mapping)]


def load_scenario_file(path: str | Path) -> list[ScenarioSpec]:
    """Load and expand a ``.json`` or ``.toml`` scenario file."""
    p = Path(path)
    if not p.exists():
        raise ScenarioError(f"scenario file not found: {p}")
    suffix = p.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(p.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid JSON in {p}: {exc}") from exc
    elif suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:  # Python < 3.11: fall back to the tomli shim
            try:
                import tomli as tomllib  # type: ignore[no-redef]
            except ModuleNotFoundError as exc:
                raise ScenarioError(
                    "TOML scenario files need Python >= 3.11 (stdlib tomllib) "
                    "or the third-party 'tomli' package; alternatively use the "
                    "equivalent .json scenario form"
                ) from exc

        try:
            data = tomllib.loads(p.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"invalid TOML in {p}: {exc}") from exc
    else:
        raise ScenarioError(
            f"unsupported scenario file type {suffix!r} for {p}; use .json or .toml"
        )
    return scenarios_from_mapping(data, default_name=p.stem)
