"""Parallel, config-driven experiment engine.

Three layers (see ``docs/architecture.md``):

* :mod:`repro.runner.executor` — :class:`ParallelExecutor`, the fan-out for
  Procedure I (serial / thread / process backends with deterministic
  per-client RNG streams);
* :mod:`repro.runner.scenario` — :class:`ScenarioSpec` /
  :class:`ScenarioMatrix`, the declarative JSON/TOML experiment layer;
* :mod:`repro.runner.engine` — :class:`ExperimentEngine`, which executes
  scenarios against memoised datasets by dispatching through the system
  registry (:mod:`repro.systems`); systems that declare
  ``needs_dataset=False`` never trigger a dataset build.

All symbols are re-exported lazily (PEP 562): the trainers import
``repro.runner.executor`` while the scenario/engine layers import the
trainers, so an eager package ``__init__`` would create an import cycle.
"""

from __future__ import annotations

import importlib

__all__ = [
    "EXECUTOR_BACKENDS",
    "ParallelExecutor",
    "resolve_worker_count",
    "SCENARIO_SYSTEMS",
    "ScenarioError",
    "ScenarioMatrix",
    "ScenarioSpec",
    "load_scenario_file",
    "scenarios_from_mapping",
    "ExperimentEngine",
    "ScenarioResult",
    "run_scenario",
]

_EXPORTS = {
    "EXECUTOR_BACKENDS": "repro.runner.executor",
    "ParallelExecutor": "repro.runner.executor",
    "resolve_worker_count": "repro.runner.executor",
    "SCENARIO_SYSTEMS": "repro.runner.scenario",
    "ScenarioError": "repro.runner.scenario",
    "ScenarioMatrix": "repro.runner.scenario",
    "ScenarioSpec": "repro.runner.scenario",
    "load_scenario_file": "repro.runner.scenario",
    "scenarios_from_mapping": "repro.runner.scenario",
    "ExperimentEngine": "repro.runner.engine",
    "ScenarioResult": "repro.runner.engine",
    "run_scenario": "repro.runner.engine",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
