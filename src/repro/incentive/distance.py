"""Distance computations for the incentive mechanism.

Algorithm 2 scores each high-contributing client by the cosine distance
θ_i between its uploaded vector and the global update.  The helper below
computes all θ_i in one vectorised pass.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cosine_distance_to_reference"]


def cosine_distance_to_reference(
    matrix: np.ndarray, reference: np.ndarray, *, eps: float = 1e-12
) -> np.ndarray:
    """Cosine distance of every row of ``matrix`` to ``reference``.

    Parameters
    ----------
    matrix:
        ``(k, d)`` matrix of uploaded vectors.
    reference:
        ``(d,)`` reference vector (the global update ``w_{r+1}``).

    Returns
    -------
    numpy.ndarray
        Length-``k`` vector of distances in ``[0, 2]``; rows or references that
        are (near-)zero vectors are treated as orthogonal (distance 1).
    """
    m = np.asarray(matrix, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64).ravel()
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D matrix of row vectors, got ndim={m.ndim}")
    if m.shape[1] != r.shape[0]:
        raise ValueError(
            f"dimension mismatch: matrix has {m.shape[1]} columns, reference has "
            f"{r.shape[0]} elements"
        )
    row_norms = np.linalg.norm(m, axis=1)
    ref_norm = np.linalg.norm(r)
    sims = np.zeros(m.shape[0], dtype=np.float64)
    if ref_norm >= eps:
        # One mat-vec over the full stacked matrix (no fancy-index copy);
        # near-zero rows keep similarity 0 ("orthogonal") via the mask.
        valid = row_norms >= eps
        dots = m @ r
        sims[valid] = np.clip(dots[valid] / (row_norms[valid] * ref_norm), -1.0, 1.0)
    return 1.0 - sims
