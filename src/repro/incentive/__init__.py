"""Contribution-based incentive mechanism (the paper's Algorithm 2).

The winning miner clusters the round's gradient set (global update included),
labels clients in the global update's cluster as high-contribution and the
rest as low-contribution, computes cosine-distance contribution scores,
apportions a base reward, and applies a strategy (keep everything or discard
the low-contributing gradients and re-aggregate).

Modules
-------
* :mod:`repro.incentive.distance` — cosine distance utilities;
* :mod:`repro.incentive.clustering` — DBSCAN (the paper's default) and KMeans
  implemented from scratch;
* :mod:`repro.incentive.contribution` — Algorithm 2 itself;
* :mod:`repro.incentive.rewards` — reward apportioning and bookkeeping;
* :mod:`repro.incentive.strategies` — the keep / discard strategies.
"""

from repro.incentive.clustering import ClusteringResult, DBSCAN, KMeans, make_clusterer
from repro.incentive.contribution import (
    ContributionConfig,
    ContributionReport,
    identify_contributions,
)
from repro.incentive.distance import cosine_distance_to_reference
from repro.incentive.fairness import (
    fairness_report,
    gini_coefficient,
    jains_index,
    reward_contribution_correlation,
)
from repro.incentive.rewards import RewardEntry, RewardLedger, apportion_rewards
from repro.incentive.strategies import DiscardStrategy, KeepAllStrategy, Strategy, make_strategy

__all__ = [
    "ClusteringResult",
    "DBSCAN",
    "KMeans",
    "make_clusterer",
    "ContributionConfig",
    "ContributionReport",
    "identify_contributions",
    "cosine_distance_to_reference",
    "fairness_report",
    "gini_coefficient",
    "jains_index",
    "reward_contribution_correlation",
    "RewardEntry",
    "RewardLedger",
    "apportion_rewards",
    "DiscardStrategy",
    "KeepAllStrategy",
    "Strategy",
    "make_strategy",
]
