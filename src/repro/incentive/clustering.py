"""Clustering algorithms used by Algorithm 2.

The paper states "any suitable clustering algorithm can be used here as
needed" and adopts DBSCAN by default "because it is efficient and
straightforward".  Both DBSCAN and KMeans are implemented from scratch here
(scikit-learn is not available in this environment) over either cosine or
Euclidean distances on the stacked gradient vectors.

The clusterers return a :class:`ClusteringResult` with integer labels
(`-1` marks DBSCAN noise points) so downstream code is independent of which
algorithm produced the grouping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.vectors import pairwise_cosine_distance, pairwise_euclidean_distance

__all__ = ["ClusteringResult", "DBSCAN", "KMeans", "make_clusterer"]

NOISE_LABEL = -1


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of clustering ``k`` vectors.

    Attributes
    ----------
    labels:
        Length-``k`` integer array; ``-1`` marks noise (DBSCAN only).
    num_clusters:
        Number of distinct non-noise clusters.
    """

    labels: np.ndarray
    num_clusters: int

    def members(self, cluster_label: int) -> np.ndarray:
        """Indices of the vectors assigned to ``cluster_label``."""
        return np.flatnonzero(self.labels == cluster_label)

    def cluster_of(self, index: int) -> int:
        """Label of the vector at ``index``."""
        return int(self.labels[int(index)])

    def same_cluster(self, index_a: int, index_b: int) -> bool:
        """True when both indices share a (non-noise) cluster."""
        la = self.cluster_of(index_a)
        lb = self.cluster_of(index_b)
        return la == lb and la != NOISE_LABEL


def _distance_matrix(vectors: np.ndarray, metric: str) -> np.ndarray:
    v = np.asarray(vectors, dtype=np.float64)
    if v.ndim != 2 or v.shape[0] == 0:
        raise ValueError(f"expected a non-empty (k, d) matrix, got shape {v.shape}")
    if metric == "cosine":
        return pairwise_cosine_distance(v)
    if metric == "euclidean":
        return pairwise_euclidean_distance(v)
    raise ValueError(f"unknown metric {metric!r}; expected 'cosine' or 'euclidean'")


class DBSCAN:
    """Density-based spatial clustering (Ester et al., 1996).

    Parameters
    ----------
    eps:
        Neighbourhood radius in the chosen metric.
    min_samples:
        Minimum neighbourhood size (including the point itself) for a core point.
    metric:
        ``"cosine"`` (default, appropriate for gradient direction comparison)
        or ``"euclidean"``.
    """

    def __init__(self, eps: float = 0.5, min_samples: int = 3, metric: str = "cosine") -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.eps = float(eps)
        self.min_samples = int(min_samples)
        self.metric = metric

    def fit(self, vectors: np.ndarray) -> ClusteringResult:
        """Cluster the rows of ``vectors`` and return the labelling."""
        distances = _distance_matrix(vectors, self.metric)
        n = distances.shape[0]
        neighbours = [np.flatnonzero(distances[i] <= self.eps) for i in range(n)]
        is_core = np.array([len(nb) >= self.min_samples for nb in neighbours])

        labels = np.full(n, NOISE_LABEL, dtype=np.int64)
        cluster_id = 0
        for seed in range(n):
            if labels[seed] != NOISE_LABEL or not is_core[seed]:
                continue
            # Breadth-first expansion from this core point.
            labels[seed] = cluster_id
            frontier = list(neighbours[seed])
            while frontier:
                point = int(frontier.pop())
                if labels[point] == NOISE_LABEL:
                    labels[point] = cluster_id
                    if is_core[point]:
                        frontier.extend(int(x) for x in neighbours[point] if labels[x] == NOISE_LABEL)
                elif labels[point] != cluster_id and not is_core[point]:
                    # Border point already claimed by another cluster; leave it.
                    continue
            cluster_id += 1
        return ClusteringResult(labels=labels, num_clusters=cluster_id)


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation.

    Provided as the alternative clusterer for the ablation called out in
    DESIGN.md; operates in Euclidean space (vectors are L2-normalised first
    when ``metric="cosine"`` so that Euclidean closeness approximates angular
    closeness).
    """

    def __init__(
        self,
        num_clusters: int = 2,
        *,
        metric: str = "cosine",
        max_iterations: int = 100,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if metric not in {"cosine", "euclidean"}:
            raise ValueError(f"unknown metric {metric!r}; expected 'cosine' or 'euclidean'")
        self.num_clusters = int(num_clusters)
        self.metric = metric
        self.max_iterations = int(max_iterations)
        self.seed = int(seed)

    def fit(self, vectors: np.ndarray) -> ClusteringResult:
        """Cluster the rows of ``vectors`` and return the labelling."""
        v = np.asarray(vectors, dtype=np.float64)
        if v.ndim != 2 or v.shape[0] == 0:
            raise ValueError(f"expected a non-empty (k, d) matrix, got shape {v.shape}")
        if self.metric == "cosine":
            norms = np.linalg.norm(v, axis=1, keepdims=True)
            v = v / np.where(norms < 1e-12, 1.0, norms)
        n = v.shape[0]
        k = min(self.num_clusters, n)
        rng = np.random.default_rng(self.seed)

        # k-means++ seeding.
        centers = [v[rng.integers(0, n)]]
        while len(centers) < k:
            dist2 = np.min(
                np.stack([np.sum((v - c) ** 2, axis=1) for c in centers], axis=0), axis=0
            )
            total = dist2.sum()
            if total <= 0:
                centers.append(v[rng.integers(0, n)])
                continue
            probs = dist2 / total
            centers.append(v[rng.choice(n, p=probs)])
        centroids = np.stack(centers, axis=0)

        labels = np.zeros(n, dtype=np.int64)
        for _ in range(self.max_iterations):
            dists = np.sum((v[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
            new_labels = np.argmin(dists, axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for c in range(k):
                members = v[labels == c]
                if members.shape[0] > 0:
                    centroids[c] = members.mean(axis=0)
        return ClusteringResult(labels=labels, num_clusters=int(len(np.unique(labels))))


def make_clusterer(
    name: str,
    *,
    eps: float = 0.5,
    min_samples: int = 3,
    num_clusters: int = 2,
    metric: str = "cosine",
    seed: int = 0,
):
    """Factory resolving a clustering algorithm by name (``"dbscan"`` or ``"kmeans"``)."""
    key = name.strip().lower()
    if key == "dbscan":
        return DBSCAN(eps=eps, min_samples=min_samples, metric=metric)
    if key == "kmeans":
        return KMeans(num_clusters=num_clusters, metric=metric, seed=seed)
    raise ValueError(f"unknown clustering algorithm {name!r}; expected 'dbscan' or 'kmeans'")
