"""Reward apportioning and bookkeeping.

A high-contribution client ``C_i`` receives ``θ_i / Σθ_k · base`` (paper
Section 3.2): the base reward of the round is split among the high
contributors in proportion to their cosine-distance contribution scores.  The
⟨client, reward⟩ pairs form the round's *reward list*, which the winning miner
records in the new block as reward transactions; the :class:`RewardLedger`
accumulates the per-client totals across rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fl.aggregation import contribution_weights
from repro.utils.validation import check_non_negative

__all__ = ["RewardEntry", "apportion_rewards", "RewardLedger"]


@dataclass(frozen=True)
class RewardEntry:
    """One ⟨client, reward⟩ pair of a round's reward list."""

    client_id: int
    reward: float
    theta: float
    label: str = "high"


def apportion_rewards(
    client_ids: list[int] | np.ndarray,
    thetas: np.ndarray,
    *,
    base_reward: float = 1.0,
) -> list[RewardEntry]:
    """Split ``base_reward`` among ``client_ids`` proportionally to their θ values.

    Degenerate all-zero θ vectors (every upload identical to the global
    update) fall back to an equal split, mirroring
    :func:`repro.fl.aggregation.contribution_weights`.
    """
    ids = [int(c) for c in np.asarray(client_ids).ravel()]
    t = np.asarray(thetas, dtype=np.float64).ravel()
    if len(ids) != t.shape[0]:
        raise ValueError(
            f"client_ids and thetas must align, got {len(ids)} ids and {t.shape[0]} thetas"
        )
    base_reward = check_non_negative("base_reward", base_reward)
    if not ids:
        return []
    weights = contribution_weights(t)
    return [
        RewardEntry(client_id=cid, reward=float(w * base_reward), theta=float(theta))
        for cid, w, theta in zip(ids, weights, t)
    ]


@dataclass
class RewardLedger:
    """Accumulates issued rewards per client across communication rounds."""

    totals: dict[int, float] = field(default_factory=dict)
    history: list[tuple[int, RewardEntry]] = field(default_factory=list)

    def record_round(self, round_index: int, entries: list[RewardEntry]) -> None:
        """Credit every entry of a round's reward list."""
        for entry in entries:
            self.totals[entry.client_id] = self.totals.get(entry.client_id, 0.0) + entry.reward
            self.history.append((int(round_index), entry))

    def total_for(self, client_id: int) -> float:
        """Total reward accumulated by ``client_id``."""
        return float(self.totals.get(int(client_id), 0.0))

    def total_issued(self) -> float:
        """Total reward issued across all clients and rounds."""
        return float(sum(self.totals.values()))

    def top_clients(self, k: int = 5) -> list[tuple[int, float]]:
        """The ``k`` clients with the largest accumulated rewards."""
        ranked = sorted(self.totals.items(), key=lambda kv: kv[1], reverse=True)
        return [(int(c), float(v)) for c, v in ranked[: max(0, k)]]
