"""Algorithm 2: Client's Contribution Identification.

Given the round's gradient set ``W^k_{r+1}`` (one uploaded vector per
participating client) and the aggregated global update ``w_{r+1}``, the
algorithm:

1. clusters ``W ∪ {w_{r+1}}`` with the configured clustering algorithm
   (DBSCAN by default);
2. labels clients that share the global update's cluster as *high
   contribution* and everyone else as *low contribution*;
3. scores each high contributor by the cosine distance θ_i to the global
   update and apportions the round's base reward as ``θ_i / Σθ_k · base``;
4. hands the low-contribution set to the configured strategy (keep or
   discard).

One practical detail the paper leaves implicit: with DBSCAN the global update
itself may be labelled as noise (no cluster dense enough around it).  In that
case we fall back to treating the *largest* cluster as the high-contribution
group — the behaviour that keeps the mechanism usable rather than rejecting
every client — and record the fallback in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.incentive.clustering import ClusteringResult, DBSCAN, NOISE_LABEL, make_clusterer
from repro.incentive.distance import cosine_distance_to_reference
from repro.incentive.rewards import RewardEntry, apportion_rewards

__all__ = ["ContributionConfig", "ContributionReport", "identify_contributions"]


@dataclass(frozen=True)
class ContributionConfig:
    """Configuration of Algorithm 2.

    Attributes
    ----------
    algorithm:
        ``"dbscan"`` (paper default) or ``"kmeans"``.
    eps, min_samples:
        DBSCAN parameters (cosine-distance radius and core-point threshold).
    num_clusters:
        KMeans cluster count (ignored for DBSCAN).
    metric:
        Distance metric for clustering.
    base_reward:
        The per-round base reward split among high contributors.
    """

    algorithm: str = "dbscan"
    eps: float = 0.7
    min_samples: int = 3
    num_clusters: int = 2
    metric: str = "cosine"
    base_reward: float = 1.0
    seed: int = 0

    def make_clusterer(self):
        """Instantiate the configured clustering algorithm."""
        return make_clusterer(
            self.algorithm,
            eps=self.eps,
            min_samples=self.min_samples,
            num_clusters=self.num_clusters,
            metric=self.metric,
            seed=self.seed,
        )


@dataclass
class ContributionReport:
    """The outcome of running Algorithm 2 on one round's gradient set.

    Attributes
    ----------
    high_contributors / low_contributors:
        Client IDs labelled high / low contribution.
    thetas:
        Mapping from high-contributor client ID to its cosine distance θ_i.
    reward_list:
        The round's ⟨client, reward⟩ entries (high contributors only).
    clustering:
        The raw clustering result over ``W ∪ {w_{r+1}}`` (the global update is
        the final row).
    used_fallback:
        True when the global update was DBSCAN noise and the largest cluster
        was used as the high-contribution group instead.
    """

    high_contributors: list[int]
    low_contributors: list[int]
    thetas: dict[int, float]
    reward_list: list[RewardEntry]
    clustering: ClusteringResult
    used_fallback: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def all_clients(self) -> list[int]:
        """Every client considered this round, high first then low."""
        return list(self.high_contributors) + list(self.low_contributors)

    def is_high(self, client_id: int) -> bool:
        """True when ``client_id`` was labelled high contribution."""
        return int(client_id) in set(self.high_contributors)


def identify_contributions(
    updates: np.ndarray,
    client_ids: list[int] | np.ndarray,
    global_update: np.ndarray,
    config: ContributionConfig | None = None,
) -> ContributionReport:
    """Run Algorithm 2 on one round's uploaded vectors.

    Parameters
    ----------
    updates:
        ``(k, d)`` matrix of the uploaded vectors (one row per client).
    client_ids:
        Length-``k`` list of the owning client IDs (row-aligned with ``updates``).
    global_update:
        The aggregated global vector ``w_{r+1}`` (computed with simple
        averaging before this call, per Algorithm 1 line 24).
    config:
        Clustering / reward configuration (defaults to the paper's DBSCAN
        setup).

    Returns
    -------
    ContributionReport
    """
    cfg = config or ContributionConfig()
    m = np.asarray(updates, dtype=np.float64)
    ids = [int(c) for c in np.asarray(client_ids).ravel()]
    g = np.asarray(global_update, dtype=np.float64).ravel()
    if m.ndim != 2 or m.shape[0] == 0:
        raise ValueError(f"expected a non-empty (k, d) update matrix, got shape {m.shape}")
    if len(ids) != m.shape[0]:
        raise ValueError(
            f"client_ids must align with updates rows, got {len(ids)} ids for {m.shape[0]} rows"
        )
    if m.shape[1] != g.shape[0]:
        raise ValueError(
            f"global_update dimension {g.shape[0]} does not match updates dimension {m.shape[1]}"
        )

    # Cluster W ∪ {w_{r+1}}; the global update is appended as the last row
    # (Algorithm 1 line 25 / Algorithm 2 line 1).
    stacked = np.vstack([m, g[None, :]])
    clusterer = cfg.make_clusterer()
    clustering = clusterer.fit(stacked)
    global_label = clustering.cluster_of(stacked.shape[0] - 1)

    used_fallback = False
    if global_label == NOISE_LABEL:
        # The global update sits in no dense cluster; fall back to the largest
        # client cluster so the mechanism still designates a high group.
        client_labels = clustering.labels[:-1]
        non_noise = client_labels[client_labels != NOISE_LABEL]
        if non_noise.size > 0:
            values, counts = np.unique(non_noise, return_counts=True)
            global_label = int(values[np.argmax(counts)])
            used_fallback = True
        else:
            # Everything is noise: treat every client as high contribution
            # (equivalent to falling back to simple averaging and equal reward).
            global_label = NOISE_LABEL
            used_fallback = True

    client_labels = clustering.labels[:-1]
    if global_label == NOISE_LABEL and used_fallback:
        high_mask = np.ones(len(ids), dtype=bool)
    else:
        high_mask = client_labels == global_label

    # Mask-based selection over the stacked matrix: ids, θ scores, and the
    # reward apportioning all derive from one vectorised distance pass.
    ids_arr = np.asarray(ids, dtype=np.int64)
    high_ids = [int(c) for c in ids_arr[high_mask]]
    low_ids = [int(c) for c in ids_arr[~high_mask]]

    thetas_all = cosine_distance_to_reference(m, g)
    high_thetas = thetas_all[high_mask]
    thetas = {cid: float(t) for cid, t in zip(high_ids, high_thetas)}
    reward_list = apportion_rewards(high_ids, high_thetas, base_reward=cfg.base_reward)

    return ContributionReport(
        high_contributors=high_ids,
        low_contributors=low_ids,
        thetas=thetas,
        reward_list=reward_list,
        clustering=clustering,
        used_fallback=used_fallback,
        extras={"global_cluster_label": int(global_label)},
    )
