"""Fairness metrics over the reward distribution.

The paper claims its aggregation and incentive redesign comes "with guaranteed
fairness".  These metrics quantify the fairness of the rewards actually issued
by the mechanism:

* :func:`jains_index` — Jain's fairness index in ``(0, 1]``; 1 means perfectly
  equal allocations, ``1/k`` means one participant captured everything;
* :func:`gini_coefficient` — Gini inequality coefficient in ``[0, 1)``;
  0 means perfect equality;
* :func:`reward_contribution_correlation` — Pearson correlation between the
  per-client contribution scores (θ) and the rewards received; a fair
  contribution-based mechanism should correlate strongly, while a self-reported
  data-size mechanism need not.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "jains_index",
    "gini_coefficient",
    "reward_contribution_correlation",
    "fairness_report",
]


def _as_rewards(values) -> np.ndarray:
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("at least one reward value is required")
    if np.any(arr < 0):
        raise ValueError("rewards must be non-negative")
    return arr


def jains_index(rewards) -> float:
    """Jain's fairness index ``(Σx)² / (k·Σx²)``.

    Returns 1.0 for an all-zero allocation (no reward was issued, so nobody was
    treated unequally).
    """
    x = _as_rewards(rewards)
    sum_sq = float(np.sum(x * x))
    if sum_sq == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / (x.size * sum_sq)


def gini_coefficient(rewards) -> float:
    """Gini coefficient of the reward distribution (0 = perfectly equal)."""
    x = np.sort(_as_rewards(rewards))
    total = float(x.sum())
    if total == 0.0:
        return 0.0
    n = x.size
    # Standard formulation via the order statistics.
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * x)) / (n * total) - (n + 1.0) / n)


def reward_contribution_correlation(contributions, rewards) -> float:
    """Pearson correlation between contribution scores and issued rewards.

    Degenerate inputs (constant contributions or constant rewards) return 0.0,
    since no linear association is measurable.
    """
    c = np.asarray(list(contributions), dtype=np.float64).ravel()
    r = _as_rewards(rewards)
    if c.shape != r.shape:
        raise ValueError(
            f"contributions and rewards must align, got {c.shape} vs {r.shape}"
        )
    if c.size < 2 or np.std(c) == 0.0 or np.std(r) == 0.0:
        return 0.0
    return float(np.corrcoef(c, r)[0, 1])


def fairness_report(rewards_by_client: dict[int, float], contributions_by_client: dict[int, float] | None = None) -> dict:
    """Summarise the fairness of an accumulated reward distribution.

    Parameters
    ----------
    rewards_by_client:
        Mapping of client ID to total reward (e.g.
        ``RewardLedger.totals`` or ``TrainingHistory.total_rewards()``).
    contributions_by_client:
        Optional mapping of client ID to an aggregate contribution score; when
        provided, the reward/contribution correlation is included.
    """
    if not rewards_by_client:
        raise ValueError("rewards_by_client must not be empty")
    clients = sorted(rewards_by_client)
    rewards = [float(rewards_by_client[c]) for c in clients]
    report = {
        "num_clients": len(clients),
        "total_reward": float(sum(rewards)),
        "jains_index": jains_index(rewards),
        "gini_coefficient": gini_coefficient(rewards),
        "max_share": float(max(rewards) / sum(rewards)) if sum(rewards) > 0 else 0.0,
    }
    if contributions_by_client is not None:
        contributions = [float(contributions_by_client.get(c, 0.0)) for c in clients]
        report["reward_contribution_correlation"] = reward_contribution_correlation(
            contributions, rewards
        )
    return report
