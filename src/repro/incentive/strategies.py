"""Post-identification strategies: keep everything or discard low contributors.

Algorithm 2 ends by applying a "predetermined strategy" to the gradient set:

* *keep all gradients* — the global update stays as computed; rewards are
  still uneven (FAIR in the figures);
* *discard* — low-contributing local gradients are removed and the global
  update is recomputed from the survivors (FAIR-Discard in the figures).  The
  discarded clients also sit out the following round (client selection side
  effect, handled by
  :class:`repro.fl.selection.ContributionBasedSelector`).

Both strategies operate on the stacked update matrix and the contribution
report, returning the (possibly re-aggregated) global update together with the
indices that survived.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fl.aggregation import fair_aggregate, simple_average
from repro.incentive.contribution import ContributionReport

__all__ = ["StrategyOutcome", "Strategy", "KeepAllStrategy", "DiscardStrategy", "make_strategy"]


@dataclass(frozen=True)
class StrategyOutcome:
    """Result of applying a strategy to one round's gradient set.

    Attributes
    ----------
    global_update:
        The (possibly recomputed) global vector ``w_{r+1}``.
    kept_client_ids:
        Clients whose gradients contribute to the final global update.
    discarded_client_ids:
        Clients whose gradients were removed (empty for the keep strategy).
    """

    global_update: np.ndarray
    kept_client_ids: list[int]
    discarded_client_ids: list[int]


class Strategy:
    """Base class for Algorithm 2 strategies."""

    name: str = "base"

    def apply(
        self,
        updates: np.ndarray,
        client_ids: list[int],
        global_update: np.ndarray,
        report: ContributionReport,
        *,
        use_fair_aggregation: bool = True,
        aggregation_thetas: dict[int, float] | np.ndarray | None = None,
    ) -> StrategyOutcome:
        """Apply the strategy to one round's gradient set.

        ``aggregation_thetas`` optionally supplies the θ values used for the
        Equation (1) weights; when omitted the report's (reward) θ values are
        reused.  The orchestrator passes θ computed on the uploaded parameter
        vectors here while the report's θ come from the update directions —
        see :mod:`repro.core.procedures` for the rationale.
        """
        raise NotImplementedError


def _aggregate(
    updates: np.ndarray,
    client_ids: list[int],
    report: ContributionReport,
    *,
    use_fair_aggregation: bool,
    aggregation_thetas: dict[int, float] | np.ndarray | None = None,
) -> np.ndarray:
    """Aggregate ``updates`` with Equation (1) weights (or plain averaging).

    ``aggregation_thetas`` may be a length-``k`` vector row-aligned with
    ``client_ids`` (the vectorised fast path used by the orchestrator) or a
    ``{client_id: θ}`` mapping; absent entries default to 0.
    """
    if not use_fair_aggregation:
        return simple_average(updates)
    source = aggregation_thetas if aggregation_thetas is not None else report.thetas
    if isinstance(source, np.ndarray):
        thetas = np.asarray(source, dtype=np.float64).ravel()
        if thetas.shape[0] != len(client_ids):
            raise ValueError(
                f"aggregation_thetas must align with client_ids, got {thetas.shape[0]} "
                f"values for {len(client_ids)} clients"
            )
    else:
        thetas = np.array([source.get(int(cid), 0.0) for cid in client_ids], dtype=np.float64)
    if thetas.sum() <= 0:
        return simple_average(updates)
    return fair_aggregate(updates, thetas)


class KeepAllStrategy(Strategy):
    """Keep every gradient; re-aggregate with fairness weights over all clients."""

    name = "keep"

    def apply(
        self,
        updates: np.ndarray,
        client_ids: list[int],
        global_update: np.ndarray,
        report: ContributionReport,
        *,
        use_fair_aggregation: bool = True,
        aggregation_thetas: dict[int, float] | np.ndarray | None = None,
    ) -> StrategyOutcome:
        ids = [int(c) for c in client_ids]
        new_global = _aggregate(
            np.asarray(updates, dtype=np.float64),
            ids,
            report,
            use_fair_aggregation=use_fair_aggregation,
            aggregation_thetas=aggregation_thetas,
        )
        return StrategyOutcome(
            global_update=new_global, kept_client_ids=ids, discarded_client_ids=[]
        )


class DiscardStrategy(Strategy):
    """Drop low-contribution gradients and recompute the global update.

    If the report marks *every* client as low contribution (possible when the
    clustering degenerates), the strategy keeps everything rather than
    producing an undefined global update.
    """

    name = "discard"

    def apply(
        self,
        updates: np.ndarray,
        client_ids: list[int],
        global_update: np.ndarray,
        report: ContributionReport,
        *,
        use_fair_aggregation: bool = True,
        aggregation_thetas: dict[int, float] | np.ndarray | None = None,
    ) -> StrategyOutcome:
        m = np.asarray(updates, dtype=np.float64)
        ids = [int(c) for c in client_ids]
        high = set(report.high_contributors)
        keep_mask = np.array([cid in high for cid in ids], dtype=bool)
        if not keep_mask.any():
            outcome = KeepAllStrategy().apply(
                m,
                ids,
                global_update,
                report,
                use_fair_aggregation=use_fair_aggregation,
                aggregation_thetas=aggregation_thetas,
            )
            return outcome
        ids_arr = np.asarray(ids, dtype=np.int64)
        kept_ids = [int(c) for c in ids_arr[keep_mask]]
        dropped_ids = [int(c) for c in ids_arr[~keep_mask]]
        kept_thetas = aggregation_thetas
        if isinstance(kept_thetas, np.ndarray):
            # Row-aligned vector: subset it alongside the update matrix.
            kept_thetas = np.asarray(kept_thetas, dtype=np.float64).ravel()[keep_mask]
        new_global = _aggregate(
            m[keep_mask],
            kept_ids,
            report,
            use_fair_aggregation=use_fair_aggregation,
            aggregation_thetas=kept_thetas,
        )
        return StrategyOutcome(
            global_update=new_global,
            kept_client_ids=kept_ids,
            discarded_client_ids=dropped_ids,
        )


def make_strategy(name: str) -> Strategy:
    """Factory resolving a strategy by name (``"keep"`` or ``"discard"``)."""
    key = name.strip().lower()
    if key in {"keep", "keep_all", "keepall"}:
        return KeepAllStrategy()
    if key == "discard":
        return DiscardStrategy()
    raise ValueError(f"unknown strategy {name!r}; expected 'keep' or 'discard'")
