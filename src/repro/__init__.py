"""FAIR-BFL reproduction library.

A full, from-scratch Python implementation of "FAIR-BFL: Flexible and
Incentive Redesign for Blockchain-based Federated Learning" (ICPP 2022),
including every substrate the paper depends on: a NumPy neural-network
framework, a synthetic MNIST-like dataset with federated partitioning, RSA
signing, a proof-of-work blockchain, FedAvg/FedProx baselines, the
clustering-based contribution/incentive mechanism, attack models, and the
delay simulation behind the paper's latency figures.

Quickstart
----------
>>> from repro.core import ExperimentSuite, run_fairbfl
>>> suite = ExperimentSuite(num_clients=10, num_samples=600, num_rounds=3)
>>> trainer, history = run_fairbfl(suite.dataset(), config=suite.fairbfl_config())
>>> history.average_delay() > 0
True
"""

from repro.core.config import FairBFLConfig
from repro.core.experiment import (
    ExperimentSuite,
    build_federated_dataset,
    run_fairbfl,
    run_fedavg,
    run_fedprox,
    run_vanilla_blockchain,
)
from repro.core.fairbfl import FairBFLTrainer
from repro.core.flexibility import OperatingMode
from repro.fl.fedavg import FedAvgConfig, FedAvgTrainer
from repro.fl.fedprox import FedProxConfig, FedProxTrainer
from repro.fl.history import TrainingHistory
from repro.runner.engine import ExperimentEngine
from repro.runner.executor import ParallelExecutor
from repro.runner.scenario import ScenarioMatrix, ScenarioSpec

__version__ = "1.1.0"

__all__ = [
    "FairBFLConfig",
    "FairBFLTrainer",
    "OperatingMode",
    "ExperimentSuite",
    "build_federated_dataset",
    "run_fairbfl",
    "run_fedavg",
    "run_fedprox",
    "run_vanilla_blockchain",
    "FedAvgConfig",
    "FedAvgTrainer",
    "FedProxConfig",
    "FedProxTrainer",
    "TrainingHistory",
    "ExperimentEngine",
    "ParallelExecutor",
    "ScenarioMatrix",
    "ScenarioSpec",
    "__version__",
]
