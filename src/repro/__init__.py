"""FAIR-BFL reproduction library.

A full, from-scratch Python implementation of "FAIR-BFL: Flexible and
Incentive Redesign for Blockchain-based Federated Learning" (ICPP 2022),
including every substrate the paper depends on: a NumPy neural-network
framework, a synthetic MNIST-like dataset with federated partitioning, RSA
signing, a proof-of-work blockchain, FedAvg/FedProx baselines, the
clustering-based contribution/incentive mechanism, attack models, and the
delay simulation behind the paper's latency figures.

Quickstart
----------
>>> from repro import api
>>> history = api.run("fairbfl", num_clients=10, num_samples=600, num_rounds=3)
>>> history.average_delay() > 0
True

:mod:`repro.api` is the stable public facade (``run``/``sweep``/``compare``/
``load_scenario``/``list_systems``); systems are pluggable through the
registry in :mod:`repro.systems` (see ``docs/api.md``).
"""

from repro.core.config import FairBFLConfig
from repro.core.experiment import (
    ExperimentSuite,
    build_federated_dataset,
    run_fairbfl,
    run_fedavg,
    run_fedprox,
    run_vanilla_blockchain,
)
from repro.core.fairbfl import FairBFLTrainer
from repro.core.flexibility import OperatingMode
from repro.fl.fedavg import FedAvgConfig, FedAvgTrainer
from repro.fl.fedprox import FedProxConfig, FedProxTrainer
from repro.fl.history import TrainingHistory
from repro.runner.engine import ExperimentEngine
from repro.runner.executor import ParallelExecutor
from repro.runner.scenario import ScenarioMatrix, ScenarioSpec
from repro.systems import System, SystemCapabilities, register_system, system_names
from repro import api

__version__ = "1.2.0"

__all__ = [
    "api",
    "System",
    "SystemCapabilities",
    "register_system",
    "system_names",
    "FairBFLConfig",
    "FairBFLTrainer",
    "OperatingMode",
    "ExperimentSuite",
    "build_federated_dataset",
    "run_fairbfl",
    "run_fedavg",
    "run_fedprox",
    "run_vanilla_blockchain",
    "FedAvgConfig",
    "FedAvgTrainer",
    "FedProxConfig",
    "FedProxTrainer",
    "TrainingHistory",
    "ExperimentEngine",
    "ParallelExecutor",
    "ScenarioMatrix",
    "ScenarioSpec",
    "__version__",
]
