"""A thin stdlib client for the experiment service.

:class:`ServeClient` wraps the JSON protocol of :mod:`repro.serve.protocol`
over ``urllib`` so the CLI (``repro run --server URL`` /
``repro sweep --server URL``), :func:`repro.api.submit`, the tests, and the
throughput benchmark all speak to the daemon the same way.  Histories come
back **bit-identical** to a local run: the result endpoint serves the
store's full-fidelity record with every round field inlined, and
:meth:`ServeClient.history` rebuilds it through the same
:func:`repro.store.records.history_from_payload` the store itself uses.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Mapping

from repro.fl.history import TrainingHistory
from repro.runner.scenario import ScenarioSpec
from repro.serve.protocol import TERMINAL_STATES
from repro.store.records import history_from_payload

__all__ = ["ServeClientError", "JobFailed", "ServeClient"]


class ServeClientError(RuntimeError):
    """The server answered an error (carries ``status`` and the error body)."""

    def __init__(self, message: str, *, status: int = 0):
        super().__init__(message)
        self.status = int(status)


class JobFailed(ServeClientError):
    """A waited-on job finished as ``failed`` or ``cancelled``."""


class ServeClient:
    """Talk to a running ``repro serve`` daemon.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8731"`` (scheme + host + port, no path).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- transport ------------------------------------------------------
    def _request(self, method: str, path: str, payload: Mapping | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or str(exc)
            raise ServeClientError(message, status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"cannot reach experiment server at {self.base_url}: {exc.reason}"
            ) from exc
        except OSError as exc:  # raw socket errors (reset, timeout mid-read)
            raise ServeClientError(
                f"connection to experiment server at {self.base_url} failed: {exc}"
            ) from exc

    # -- protocol verbs -------------------------------------------------
    def submit(self, document: "Mapping | ScenarioSpec") -> list[dict]:
        """Submit a scenario document (or one spec); returns the job payloads."""
        if isinstance(document, ScenarioSpec):
            document = document.to_mapping()
        response = self._request("POST", "/v1/runs", dict(document))
        return list(response["jobs"])

    def status(self, job_id: str) -> dict:
        """The current job payload for ``job_id``."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """Request cancellation of ``job_id`` (raises 409 via ServeClientError if finished)."""
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", {})

    def result(self, key: str) -> dict:
        """The full-fidelity run record stored under content ``key``."""
        return self._request("GET", f"/v1/results/{key}")

    def health(self) -> dict:
        """The healthz payload (queue depth, worker liveness, counters)."""
        return self._request("GET", "/v1/healthz")

    # -- conveniences ---------------------------------------------------
    def wait(self, job_id: str, *, timeout: float = 120.0, poll: float = 0.05) -> dict:
        """Poll ``job_id`` until it reaches a terminal state; returns the payload.

        Raises :class:`ServeClientError` when ``timeout`` elapses first — the
        client-side watchdog the stress tests lean on.
        """
        deadline = time.monotonic() + float(timeout)
        while True:
            payload = self.status(job_id)
            if payload["state"] in TERMINAL_STATES:
                return payload
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} did not finish within {timeout} s "
                    f"(last state: {payload['state']}, "
                    f"{payload['rounds_done']}/{payload['total_rounds']} rounds)"
                )
            time.sleep(poll)

    def history(self, key: str) -> TrainingHistory:
        """The :class:`TrainingHistory` reconstructed from the record at ``key``."""
        record = self.result(key)
        return history_from_payload(record["history"])

    def run(
        self, document: "Mapping | ScenarioSpec", *, timeout: float = 120.0
    ) -> TrainingHistory:
        """Submit one scenario, wait for it, and return its history.

        The remote analogue of :func:`repro.api.run`: identical inputs yield
        a bit-identical history (possibly without computing anything, when
        the server already holds the record).  Raises :class:`JobFailed`
        when the job ends ``failed``/``cancelled``.
        """
        jobs = self.submit(document)
        if len(jobs) != 1:
            raise ServeClientError(
                f"run() submits exactly one scenario, but the document expanded "
                f"to {len(jobs)} jobs; use submit() for batches"
            )
        job = self.wait(jobs[0]["job_id"], timeout=timeout)
        if job["state"] != "done":
            raise JobFailed(
                f"job {job['job_id']} ({job['name']}) finished as {job['state']}: "
                f"{job.get('error') or 'no error recorded'}"
            )
        return self.history(job["result_key"])
