"""The job queue: admission, single-flight dedup, and lifecycle tracking.

Every accepted submission becomes a :class:`Job` keyed by its scenario's
content address (:func:`repro.store.keys.spec_key`).  The queue sits *in
front of* the write-through run store and enforces the two serving
guarantees:

* **read-through** — a spec whose record already exists in the store is
  admitted as an already-``done`` job (``cached=True``) without touching a
  worker, so a stored run costs one store lookup;
* **single-flight** — while a job for key ``K`` is queued or running, every
  further submission of ``K`` returns *that* job (``deduped=True``) instead
  of enqueuing another computation.  The in-flight registry is keyed by
  content address, so "identical" means identical in every field that can
  affect the result (seed and system capability fingerprint included).

All state transitions happen under one lock, so the worker pool
(:mod:`repro.serve.workers`) and the HTTP handler threads
(:mod:`repro.serve.server`) can share the queue freely.  Cancellation is
cooperative for running jobs: :meth:`JobQueue.cancel` flags the job and the
executing worker observes the flag between rounds (or terminates its child
process), then reports the terminal state back through :meth:`JobQueue.finish`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.runner.scenario import ScenarioSpec
from repro.serve.protocol import JOB_STATES, TERMINAL_STATES
from repro.store.keys import spec_key

__all__ = ["Job", "JobQueue"]


@dataclass
class Job:
    """One tracked unit of work: a scenario submission and its lifecycle."""

    id: str
    spec: ScenarioSpec
    key: str
    state: str = "queued"
    error: str | None = None
    rounds_done: int = 0
    total_rounds: int = 0
    attempts: int = 0
    #: True when the job was answered read-through from the store (no compute).
    cached: bool = False
    #: PID of the subprocess currently computing this job (process isolation
    #: only) — exposed through the status endpoint so fault-injection tests
    #: can target the right process.
    worker_pid: int | None = None
    #: Set by :meth:`JobQueue.cancel`; workers observe it between rounds.
    cancel_requested: bool = False
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in TERMINAL_STATES


class JobQueue:
    """Thread-safe FIFO of jobs with content-key single-flight dedup.

    Parameters
    ----------
    store:
        The server's :class:`~repro.store.runstore.RunStore`.  Consulted at
        admission for the read-through path; may be ``None`` in tests, which
        disables read-through (every submission computes).
    """

    def __init__(self, store=None):
        self._store = store
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: deque[Job] = deque()
        self._jobs: dict[str, Job] = {}
        #: Content key -> the queued/running job computing it (single-flight).
        self._inflight: dict[str, Job] = {}
        self._seq = 0
        #: Submissions collapsed onto an in-flight identical job.
        self.singleflight_hits = 0
        #: Submissions answered read-through from the store at admission.
        self.readthrough_hits = 0

    # -- admission ------------------------------------------------------
    def submit(self, spec: ScenarioSpec) -> tuple[Job, bool]:
        """Admit ``spec``; returns ``(job, deduped)``.

        ``deduped`` is True when the returned job is an existing in-flight
        one for the same content key (the submission joined it instead of
        enqueuing a second computation).
        """
        key = spec_key(spec)
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self.singleflight_hits += 1
                return existing, True
            job = self._new_job(spec, key)
            if self._store is not None and self._store.contains(spec):
                job.state = "done"
                job.cached = True
                job.rounds_done = job.total_rounds
                job.done_event.set()
                self.readthrough_hits += 1
                return job, False
            self._inflight[key] = job
            self._pending.append(job)
            self._not_empty.notify()
            return job, False

    def _new_job(self, spec: ScenarioSpec, key: str) -> Job:
        self._seq += 1
        job = Job(
            id=f"job-{self._seq:06d}",
            spec=spec,
            key=key,
            total_rounds=int(spec.num_rounds),
        )
        self._jobs[job.id] = job
        return job

    # -- worker side ----------------------------------------------------
    def next_job(self, timeout: float | None = None) -> Job | None:
        """Pop the next queued job (blocking up to ``timeout``), mark it running."""
        with self._not_empty:
            if not self._pending:
                self._not_empty.wait(timeout)
            if not self._pending:
                return None
            job = self._pending.popleft()
            job.state = "running"
            job.attempts += 1
            return job

    def requeue(self, job: Job) -> None:
        """Put a crashed job back at the front of the queue for a retry."""
        with self._lock:
            job.state = "queued"
            job.worker_pid = None
            job.rounds_done = 0
            self._pending.appendleft(job)
            self._not_empty.notify()

    def finish(self, job: Job, state: str, *, error: str | None = None) -> None:
        """Move ``job`` to a terminal ``state`` and release its flight slot."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, got {state!r}")
        with self._lock:
            job.state = state
            job.error = error
            job.worker_pid = None
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            job.done_event.set()
            self._not_empty.notify_all()

    # -- client side ----------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        """The job with ``job_id``, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job: Job) -> str:
        """Request cancellation; returns the outcome.

        ``"cancelled"``: the job was still queued and is terminally cancelled
        now.  ``"cancelling"``: the job is running; its worker observes the
        flag between rounds (or terminates its child process) and finishes it
        as cancelled shortly.  ``"finished"``: the job already reached a
        terminal state — nothing to cancel (the HTTP layer answers 409).
        Note a job deduped across several submitters is one computation:
        cancelling it cancels it for all of them.
        """
        with self._lock:
            if job.finished:
                return "finished"
            job.cancel_requested = True
            if job.state == "queued":
                try:
                    self._pending.remove(job)
                except ValueError:
                    pass  # a worker popped it concurrently; treat as running
                else:
                    job.state = "cancelled"
                    if self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                    job.done_event.set()
                    self._not_empty.notify_all()
                    return "cancelled"
            return "cancelling"

    # -- observability --------------------------------------------------
    def depth(self) -> int:
        """Number of jobs waiting for a worker."""
        with self._lock:
            return len(self._pending)

    def counts(self) -> dict[str, int]:
        """Job count per lifecycle state (all states present, zeros included)."""
        out = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] += 1
        return out

    def drain(self, timeout: float) -> bool:
        """Wait until no job is queued or running; True on success.

        The 60-second watchdogs of the stress tests are ``drain(60)`` — a
        deadlock anywhere in the queue/worker handshake fails the call
        instead of hanging the suite.
        """
        deadline = threading.TIMEOUT_MAX if timeout is None else timeout
        waiter = threading.Event()
        end = _monotonic() + deadline
        while _monotonic() < end:
            with self._lock:
                active = self._pending or any(
                    j.state in ("queued", "running") for j in self._jobs.values()
                )
            if not active:
                return True
            waiter.wait(0.02)
        return False


def _monotonic() -> float:
    import time

    return time.monotonic()
