"""The experiment service: serve runs over HTTP with a job queue and dedup.

``repro serve`` turns the one-shot CLI into a long-running daemon: the
content-addressed :class:`~repro.store.runstore.RunStore` is the system of
record, a :class:`~repro.serve.jobs.JobQueue` admits submissions with
read-through and single-flight dedup, a :class:`~repro.serve.workers.WorkerPool`
drains it through one shared (lock-counted) engine, and a stdlib HTTP server
speaks the JSON protocol of :mod:`repro.serve.protocol`.

Layout: ``protocol`` (wire contract), ``jobs`` (queue + lifecycle),
``workers`` (thread/process execution), ``server`` (HTTP daemon),
``client`` (thin stdlib client the CLI's ``--server`` flag uses).
See ``docs/serve.md``.
"""

from repro.serve.client import JobFailed, ServeClient, ServeClientError
from repro.serve.jobs import Job, JobQueue
from repro.serve.protocol import ENDPOINTS, JOB_STATES, PROTOCOL_VERSION, ProtocolError
from repro.serve.server import ReproServer
from repro.serve.workers import ISOLATION_MODES, WorkerPool

__all__ = [
    "ENDPOINTS",
    "ISOLATION_MODES",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "Job",
    "JobFailed",
    "JobQueue",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeClientError",
    "WorkerPool",
]
