"""The worker pool: N workers draining the job queue.

Each worker is a thread that pops jobs from the :class:`~repro.serve.jobs.JobQueue`
and executes them through the shared :class:`~repro.runner.engine.ExperimentEngine`
(whose counters are lock-protected precisely so this sharing is safe).  Two
isolation modes:

``thread`` (default)
    The job runs inline in the worker thread via
    :meth:`~repro.runner.engine.ExperimentEngine.run_streaming` — lowest
    latency, shared dataset memoisation, cooperative cancellation between
    rounds.

``process``
    The worker thread supervises one child **process** per job (spawn
    context, so no fork-with-threads hazards).  The child computes the run
    with its own engine, writes the record into the shared content-addressed
    store, and streams per-round progress over a pipe.  A child that dies
    mid-job (killed, OOM, crash) is detected by the supervisor: the job is
    requeued up to ``max_retries`` times and then reported ``failed`` with
    the exit signal in the error message — never left hanging.  Cancellation
    terminates the child.

Either way the record lands in the store under the job's content key, so
the HTTP layer serves results identically in both modes.
"""

from __future__ import annotations

import multiprocessing as mp
import threading

from repro.runner.engine import ExperimentEngine, RunCancelled
from repro.serve.jobs import Job, JobQueue

__all__ = ["ISOLATION_MODES", "WorkerCrash", "WorkerPool"]

#: How a worker executes a job: inline in its thread, or in a child process.
ISOLATION_MODES = ("thread", "process")


class WorkerCrash(RuntimeError):
    """A job's worker process died before reporting a result."""


def _subprocess_job(store_root: str, spec_mapping: dict, conn) -> None:
    """Child-process entry point: compute one run, write-through to the store.

    Runs in a spawned interpreter, so everything arrives picklable: the
    store root as a path and the spec as its mapping form.  Progress events
    ``("progress", done, total)`` stream over ``conn``; the final
    ``("done", rounds)`` message tells the supervisor the record was
    persisted (the write happens *before* the message, so a kill between
    them at worst recomputes).
    """
    from repro.runner.scenario import ScenarioSpec
    from repro.store.runstore import RunStore

    spec = ScenarioSpec.from_mapping(spec_mapping)
    engine = ExperimentEngine(store=RunStore(store_root), reuse_cached=True)

    def progress(done: int, total: int) -> None:
        try:
            conn.send(("progress", done, total))
        except (BrokenPipeError, OSError):  # supervisor went away; keep computing
            pass

    engine.run_streaming(spec, progress=progress)
    conn.send(("done", engine.runs_computed, engine.round_evaluations, engine.cache_hits))
    conn.close()


class WorkerPool:
    """N worker threads executing queue jobs through one shared engine."""

    def __init__(
        self,
        queue: JobQueue,
        engine: ExperimentEngine,
        *,
        workers: int = 2,
        isolation: str = "thread",
        max_retries: int = 1,
    ):
        if isolation not in ISOLATION_MODES:
            raise ValueError(
                f"unknown isolation mode {isolation!r}; expected one of: "
                + ", ".join(ISOLATION_MODES)
            )
        if int(workers) <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if isolation == "process" and engine.store is None:
            raise ValueError(
                "process isolation requires the engine to have a run store: "
                "child processes ship results through it"
            )
        self.queue = queue
        self.engine = engine
        self.isolation = isolation
        self.max_retries = int(max_retries)
        self.workers = int(workers)
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the workers.

        Running jobs observe the stop flag through their cancellation check
        (thread mode) or child termination (process mode) and finish as
        cancelled.
        """
        self._stopping.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    def alive_workers(self) -> int:
        """Number of worker threads currently alive (healthz liveness)."""
        return sum(1 for t in self._threads if t.is_alive())

    # -- execution ------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            job = self.queue.next_job(timeout=0.1)
            if job is None:
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        try:
            if self.isolation == "process":
                self._run_in_subprocess(job)
            else:
                self._run_inline(job)
        except RunCancelled:
            self.queue.finish(job, "cancelled", error="cancelled by request")
        except WorkerCrash as exc:
            if job.attempts <= self.max_retries and not job.cancel_requested:
                self.queue.requeue(job)
            else:
                self.queue.finish(
                    job,
                    "failed",
                    error=f"{exc} (after {job.attempts} attempt(s))",
                )
        except Exception as exc:  # noqa: BLE001 - a job failure must never kill the worker
            self.queue.finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
        else:
            self.queue.finish(job, "done")

    def _run_inline(self, job: Job) -> None:
        def progress(done: int, total: int) -> None:
            job.rounds_done = done
            job.total_rounds = total

        def should_stop() -> bool:
            return job.cancel_requested or self._stopping.is_set()

        self.engine.run_streaming(job.spec, progress=progress, should_stop=should_stop)
        job.rounds_done = job.total_rounds

    def _run_in_subprocess(self, job: Job) -> None:
        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_subprocess_job,
            args=(str(self.engine.store.root), job.spec.to_mapping(), child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        job.worker_pid = process.pid
        child_counts: tuple[int, int, int] | None = None
        try:
            while True:
                if job.cancel_requested or self._stopping.is_set():
                    process.terminate()
                    process.join(5.0)
                    raise RunCancelled(f"job {job.id} cancelled; child terminated")
                if parent_conn.poll(0.05):
                    try:
                        message = parent_conn.recv()
                    except EOFError:
                        break  # pipe hit EOF: the child is gone for good
                    if message[0] == "progress":
                        job.rounds_done, job.total_rounds = int(message[1]), int(message[2])
                    elif message[0] == "done":
                        child_counts = (int(message[1]), int(message[2]), int(message[3]))
                        break
                elif not process.is_alive():
                    break  # died without buffered output (poll drained first)
            process.join(10.0)
        finally:
            parent_conn.close()
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.kill()
                process.join(5.0)
        if child_counts is None:
            raise WorkerCrash(
                f"worker process for job {job.id} died mid-job "
                f"(exit code {process.exitcode})"
            )
        # The child computed with its own engine; absorb its exact counters
        # into the shared one so healthz stays truthful across isolation modes.
        runs, rounds, hits = child_counts
        self.engine.tally(runs=runs, rounds=rounds, hits=hits)
        job.rounds_done = job.total_rounds
