"""The HTTP/JSON wire protocol of the experiment service.

One module owns everything both sides of the wire must agree on: the
endpoint table (:data:`ENDPOINTS` — ``tools/check_docs.py`` fails CI when an
endpoint is missing from ``docs/serve.md``), the job lifecycle states
(:data:`JOB_STATES`), the request parsers, and the response payload
builders.  The server (:mod:`repro.serve.server`) routes by this table and
the client (:mod:`repro.serve.client`) addresses it, so neither can drift
from the documented surface.

Request bodies and responses are plain JSON.  A submission body is any of
the three scenario document shapes the rest of the repository already
accepts (a flat field mapping, an explicit ``scenarios`` list, or a
cartesian ``matrix`` — see ``docs/scenarios.md``); it expands into one job
per scenario.  Errors are :class:`ProtocolError` values carrying the HTTP
status to respond with and the same actionable message the scenario layer
and system registry raise locally — a capability violation over HTTP reads
exactly like one from ``repro run``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

from repro.runner.scenario import ScenarioError, ScenarioSpec, scenarios_from_mapping

__all__ = [
    "PROTOCOL_VERSION",
    "Endpoint",
    "ENDPOINTS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ProtocolError",
    "parse_submit_document",
    "job_payload",
    "error_payload",
]

#: Version stamped into every response envelope; bump on incompatible change.
PROTOCOL_VERSION = 1

# -- job lifecycle ----------------------------------------------------------

#: Every state a job can be in.  ``queued -> running -> done`` is the happy
#: path; ``failed`` ends a job whose computation raised (or whose worker
#: process died past its retry budget) and ``cancelled`` ends one stopped by
#: ``POST /v1/jobs/{job_id}/cancel`` before it finished.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves; ``wait()``/drain loops poll for these.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass(frozen=True)
class Endpoint:
    """One HTTP endpoint: its short name, method, and path template."""

    name: str
    method: str
    path: str
    description: str


#: The complete endpoint surface, by short name.  ``{job_id}`` / ``{key}``
#: are path parameters; everything else is literal.
ENDPOINTS: Mapping[str, Endpoint] = {
    "submit": Endpoint(
        "submit",
        "POST",
        "/v1/runs",
        "submit a scenario document (single spec, list, or matrix); one job per scenario",
    ),
    "job_status": Endpoint(
        "job_status",
        "GET",
        "/v1/jobs/{job_id}",
        "job state plus streamed per-round progress",
    ),
    "job_cancel": Endpoint(
        "job_cancel",
        "POST",
        "/v1/jobs/{job_id}/cancel",
        "cancel a queued or running job",
    ),
    "result": Endpoint(
        "result",
        "GET",
        "/v1/results/{key}",
        "full-fidelity run record from the content-addressed store",
    ),
    "healthz": Endpoint(
        "healthz",
        "GET",
        "/v1/healthz",
        "queue depth, worker liveness, and cache-hit counters",
    ),
}

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class ProtocolError(ValueError):
    """A request the server must reject, carrying the HTTP status to use."""

    def __init__(self, message: str, *, status: int = 400):
        super().__init__(message)
        self.status = int(status)


def validate_result_key(key: str) -> str:
    """Check a ``/v1/results/{key}`` path parameter is a plausible content key."""
    if not _KEY_RE.match(key):
        raise ProtocolError(
            f"malformed result key {key!r}: expected 64 lowercase hex digits "
            "(a repro.api.spec_key content address)",
            status=400,
        )
    return key


def parse_submit_document(payload: object) -> list[ScenarioSpec]:
    """Expand a ``POST /v1/runs`` body into validated scenario specs.

    The body must be a JSON object in one of the three scenario document
    shapes.  Validation failures — unknown fields, unknown systems,
    capability-invalid axes — surface as :class:`ProtocolError` 422 with the
    registry's actionable message intact, so the HTTP client reads the same
    guidance a local ``repro run`` would print.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            "a submission body must be a JSON object holding a scenario "
            f"document (see docs/scenarios.md), got {type(payload).__name__}",
            status=400,
        )
    try:
        specs = scenarios_from_mapping(dict(payload), default_name="submitted")
    except ScenarioError as exc:
        raise ProtocolError(str(exc), status=422) from exc
    if not specs:
        raise ProtocolError("the submitted document expands to zero scenarios", status=422)
    return specs


def job_payload(job) -> dict:
    """The JSON form of one job (the ``GET /v1/jobs/{job_id}`` body).

    ``job`` is a :class:`repro.serve.jobs.Job`; the payload carries identity
    (``job_id``, ``spec_key``, scenario name and system), lifecycle
    (``state``, ``error``, ``attempts``), streamed progress
    (``rounds_done`` / ``total_rounds``), and the dedup provenance flags
    (``deduped`` — collapsed onto an in-flight identical submission;
    ``cached`` — served read-through from the store without computing).
    ``result_key`` appears once the job is done and names the record
    ``GET /v1/results/{key}`` serves.
    """
    payload = {
        "job_id": job.id,
        "spec_key": job.key,
        "name": job.spec.name,
        "system": job.spec.system,
        "state": job.state,
        "rounds_done": job.rounds_done,
        "total_rounds": job.total_rounds,
        "attempts": job.attempts,
        "cached": job.cached,
        "error": job.error,
        "worker_pid": job.worker_pid,
    }
    if job.state == "done":
        payload["result_key"] = job.key
    return payload


def error_payload(message: str, *, status: int) -> dict:
    """The JSON body of every error response."""
    return {"error": str(message), "status": int(status)}
