"""The experiment service: a long-running HTTP daemon over engine + store.

:class:`ReproServer` assembles the pieces this repository already has into a
serving stack:

* the **content-addressed run store** is the system of record — results are
  durable, restart-safe, and shared with the CLI/benchmarks;
* the **job queue** admits submissions with read-through (stored runs answer
  without computing) and single-flight dedup (concurrent identical
  submissions collapse into one computation);
* the **worker pool** drains the queue through one shared, lock-counted
  :class:`~repro.runner.engine.ExperimentEngine`;
* a stdlib :class:`~http.server.ThreadingHTTPServer` speaks the JSON
  protocol of :mod:`repro.serve.protocol` (endpoint table, job lifecycle,
  error shapes) with HTTP/1.1 keep-alive, and keeps a small in-memory cache
  of rendered result payloads — records are content-addressed and immutable,
  so a byte cache keyed by content key can never serve stale data, and a
  stored-run request stays sub-millisecond.

``repro serve --port N --workers K`` is the CLI face;
:func:`repro.api.serve` boots one in-process (the pattern the tests and the
throughput benchmark use).  See ``docs/serve.md`` for the endpoint
reference and dedup semantics.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.runner.engine import ExperimentEngine
from repro.systems.registry import (
    SystemCapabilities,
    capability_fingerprint,
    get_system,
    system_names,
)
from repro.serve.jobs import JobQueue
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_payload,
    job_payload,
    parse_submit_document,
    validate_result_key,
)
from repro.serve.workers import WorkerPool
from repro.store.records import run_record_payload
from repro.store.runstore import RunStore, RunStoreError

__all__ = ["ReproServer"]

#: Rendered result payloads kept in memory (immutable, content-addressed).
_RESULT_CACHE_SIZE = 256


class ReproServer:
    """The HTTP/JSON experiment service (see ``docs/serve.md``).

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` — the tests and the benchmark do).
    store:
        The content-addressed store results live in: a
        :class:`~repro.store.runstore.RunStore`, a directory path, or
        ``None`` for the default ``results/store/``.
    workers:
        Worker count draining the job queue.
    isolation:
        ``"thread"`` (inline execution) or ``"process"`` (one supervised
        child process per job) — :mod:`repro.serve.workers`.
    max_retries:
        How many times a job whose worker process died is requeued before
        being reported ``failed`` (process isolation only).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store: "RunStore | str | Path | None" = None,
        workers: int = 2,
        isolation: str = "thread",
        max_retries: int = 1,
    ):
        if not isinstance(store, RunStore):
            store = RunStore() if store is None else RunStore(store)
        self.store = store
        self.engine = ExperimentEngine(store=store, reuse_cached=True)
        self.queue = JobQueue(store=store)
        self.pool = WorkerPool(
            self.queue,
            self.engine,
            workers=workers,
            isolation=isolation,
            max_retries=max_retries,
        )
        self._result_cache: OrderedDict[str, bytes] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._started = False
        self._server_thread: threading.Thread | None = None

        app = self

        class Handler(_RequestHandler):
            server_app = app

        self.httpd = _HTTPServer((host, int(port)), Handler)
        self.host = self.httpd.server_address[0]
        self.port = int(self.httpd.server_address[1])

    # -- lifecycle ------------------------------------------------------
    @property
    def url(self) -> str:
        """The base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Start the worker pool and serve HTTP in a background thread."""
        if self._started:
            return self
        self.pool.start()
        self._server_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-http",
            daemon=True,
        )
        self._server_thread.start()
        self._started = True
        return self

    def serve_forever(self) -> None:
        """Start and block until :meth:`close` (or KeyboardInterrupt) — the CLI path."""
        self.pool.start()
        self._started = True
        self.httpd.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        """Shut down the HTTP listener and stop the workers (idempotent)."""
        self.httpd.shutdown()
        self.pool.stop()
        self.httpd.server_close()
        if self._server_thread is not None:
            self._server_thread.join(5.0)
            self._server_thread = None
        self._started = False

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling (called from handler threads) ------------------
    def handle_submit(self, payload: object) -> tuple[int, dict]:
        specs = parse_submit_document(payload)
        jobs = []
        for spec in specs:
            job, deduped = self.queue.submit(spec)
            entry = job_payload(job)
            entry["deduped"] = deduped
            jobs.append(entry)
        body = {"protocol_version": PROTOCOL_VERSION, "jobs": jobs}
        if len(jobs) == 1:
            body["job_id"] = jobs[0]["job_id"]
        return 202, body

    def handle_job_status(self, job_id: str) -> tuple[int, dict]:
        job = self.queue.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}", status=404)
        return 200, job_payload(job)

    def handle_job_cancel(self, job_id: str) -> tuple[int, dict]:
        job = self.queue.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}", status=404)
        outcome = self.queue.cancel(job)
        if outcome == "finished":
            raise ProtocolError(
                f"job {job_id} already finished as {job.state!r}; nothing to cancel",
                status=409,
            )
        body = job_payload(job)
        body["cancel"] = outcome
        return 202, body

    def handle_result(self, key: str) -> bytes:
        """The rendered record for ``key`` (bytes, served from the hot cache)."""
        validate_result_key(key)
        with self._cache_lock:
            cached = self._result_cache.get(key)
            if cached is not None:
                self._result_cache.move_to_end(key)
                return cached
        try:
            stored = self.store.load(key)
        except RunStoreError as exc:
            raise ProtocolError(str(exc), status=404) from exc
        # Re-render with everything inline (no .npz references) so the record
        # is self-contained on the wire and reconstructable client-side.
        payload = run_record_payload(
            stored.spec,
            stored.result,
            key=stored.key,
            fingerprint=stored.fingerprint,
            offload=None,
        )
        payload["protocol_version"] = PROTOCOL_VERSION
        rendered = json.dumps(payload, sort_keys=True).encode("utf-8")
        with self._cache_lock:
            self._result_cache[key] = rendered
            while len(self._result_cache) > _RESULT_CACHE_SIZE:
                self._result_cache.popitem(last=False)
        return rendered

    def handle_healthz(self) -> tuple[int, dict]:
        counts = self.queue.counts()
        # The registered-system roster with capability fingerprints: a thin
        # client can check, before submitting, that the server runs the same
        # system implementations it validated against (a fingerprint drift
        # means cached results over there would not match local recomputes).
        systems = {
            name: {
                "fingerprint": capability_fingerprint(name),
                "capabilities": {
                    f.name: getattr(get_system(name).capabilities, f.name)
                    for f in dataclasses.fields(SystemCapabilities)
                },
            }
            for name in system_names()
        }
        return 200, {
            "status": "ok",
            "systems": systems,
            "protocol_version": PROTOCOL_VERSION,
            "queue_depth": self.queue.depth(),
            "jobs": counts,
            "workers": {
                "total": self.pool.workers,
                "alive": self.pool.alive_workers(),
                "isolation": self.pool.isolation,
            },
            "engine": {
                "runs_computed": self.engine.runs_computed,
                "cache_hits": self.engine.cache_hits,
                "round_evaluations": self.engine.round_evaluations,
            },
            "singleflight_hits": self.queue.singleflight_hits,
            "readthrough_hits": self.queue.readthrough_hits,
            "store_root": str(self.store.root),
        }


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The stdlib default backlog (5) resets connections under a burst of
    # simultaneous clients; the stress tests open 16 at once.
    request_queue_size = 128


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning :class:`ReproServer` (keep-alive)."""

    server_app: ReproServer  # set by the ReproServer-local subclass
    protocol_version = "HTTP/1.1"
    # Headers and body leave as separate small writes; with Nagle on, the
    # second write stalls ~40 ms behind the peer's delayed ACK on keep-alive
    # connections — three orders of magnitude over the read-latency budget.
    disable_nagle_algorithm = True

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the caller's business, not stderr's

    def _send_json(self, status: int, body: dict) -> None:
        self._send_bytes(status, json.dumps(body).encode("utf-8"))

    def _send_bytes(self, status: int, rendered: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(rendered)))
        self.end_headers()
        self.wfile.write(rendered)

    def _read_json_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ProtocolError("request body is empty; expected a JSON object", status=400)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}", status=400) from exc

    def _dispatch(self, method: str) -> None:
        app = self.server_app
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if method == "GET" and parts == ["v1", "healthz"]:
                status, body = app.handle_healthz()
            elif method == "GET" and len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                status, body = app.handle_job_status(parts[2])
            elif (
                method == "POST"
                and len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "cancel"
            ):
                self._read_optional_body()
                status, body = app.handle_job_cancel(parts[2])
            elif method == "GET" and len(parts) == 3 and parts[:2] == ["v1", "results"]:
                self._send_bytes(200, app.handle_result(parts[2]))
                return
            elif method == "POST" and parts == ["v1", "runs"]:
                status, body = app.handle_submit(self._read_json_body())
            else:
                raise ProtocolError(
                    f"no such endpoint: {method} {self.path} (see docs/serve.md)",
                    status=404,
                )
        except ProtocolError as exc:
            self._send_json(exc.status, error_payload(str(exc), status=exc.status))
            return
        except Exception as exc:  # noqa: BLE001 - a handler bug must answer 500, not hang
            self._send_json(500, error_payload(f"{type(exc).__name__}: {exc}", status=500))
            return
        self._send_json(status, body)

    def _read_optional_body(self) -> None:
        """Drain a cancel request's (ignored) body so keep-alive stays in sync."""
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._dispatch("POST")
