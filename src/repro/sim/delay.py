"""Stochastic delay models (Section 4.6 of the paper).

The overall FAIR-BFL round delay is ``T(n, m) = T_local + T_up + T_ex + T_gl +
T_bl``.  Each component is modelled with a simple parametric distribution whose
mean matches the structural dependence described in the paper:

* ``T_local`` — local SGD time; proportional to ``E · ceil(|D_i| / B)``
  batches, executed in parallel on all clients, so the round pays the slowest
  client (max over per-client draws).
* ``T_up`` — gradient upload; clients are at the network edge with noisy
  channels, so this is the dominant communication term.  Uploads are parallel,
  the round pays the slowest one.
* ``T_ex`` — miner gradient-set exchange; miners are few and well connected,
  so this term is small and grows mildly with ``m``.
* ``T_gl`` — global update + clustering (Algorithm 2); grows linearly with the
  number of gradients clustered.
* ``T_bl`` — proof-of-work mining and consensus; the winner's solve time is
  exponentially distributed around a difficulty-controlled block interval, plus
  a broadcast cost growing with ``m``.  For the *vanilla* blockchain baseline
  the round additionally pays one block interval per extra block required to
  drain the per-gradient transaction queue and a fork-merge penalty whose
  frequency grows with the miner count.

The default parameter values (see :class:`DelayParameters`) are calibrated so
the headline numbers land in the paper's reported ranges (FedAvg ≈ 5–7 s,
FAIR-BFL ≈ 9–11 s, vanilla blockchain ≈ 14–16 s per round for n=100, m=2);
the *shape* conclusions are insensitive to the exact constants.

Since the discrete-event refactor, :class:`DelayModel` is a thin adapter over
the event kernel: the per-component *samplers* stay here (they are the
calibrated primitives), but the round *compositions* (``fairbfl_round``,
``fl_round``, ``vanilla_blockchain_round``) run one
:class:`~repro.sim.rounds.EventRoundSimulator` round and report its stage
boundaries as the familiar :class:`RoundDelayBreakdown`.  The original
closed-form compositions live on in :class:`AnalyticDelayModel`, which the
parity tests hold the kernel against (``tests/test_delay_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blockchain.consensus import ForkModel
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "DelayParameters",
    "RoundDelayBreakdown",
    "DelayModel",
    "AnalyticDelayModel",
]


@dataclass(frozen=True)
class DelayParameters:
    """Calibration constants of the delay model (all times in seconds)."""

    #: Compute time for one mini-batch gradient step on a client device.
    compute_time_per_batch: float = 0.05
    #: Log-normal sigma of per-client compute speed variation (stragglers).
    compute_jitter: float = 0.25
    #: Mean one-way upload latency for one client's gradient.
    upload_mean: float = 1.6
    #: Log-normal sigma of upload latency variation (edge-network noise).
    upload_jitter: float = 0.45
    #: Receiver-side handling cost per uploaded gradient (signature check,
    #: deserialisation); makes the upload term mildly sensitive to how many
    #: clients actually participate, which is what the discard strategy saves.
    upload_processing_per_client: float = 0.12
    #: Fixed cost of the miner gradient-set exchange.
    exchange_base: float = 0.08
    #: Additional exchange cost per miner.
    exchange_per_miner: float = 0.04
    #: Fixed cost of computing the global update.
    aggregation_base: float = 0.05
    #: Clustering cost per gradient vector (Algorithm 2, DBSCAN is O(k log k)
    #: at this scale; a linear model is accurate for k <= a few hundred).
    clustering_per_gradient: float = 0.012
    #: Mean proof-of-work winner solve time (difficulty-controlled interval).
    block_interval: float = 2.2
    #: Block broadcast/verification cost per miner.
    block_broadcast_per_miner: float = 0.06
    #: Central-server aggregation time for the FL baselines.
    server_aggregation_time: float = 0.08
    #: Per-transaction handling cost in the vanilla blockchain (validation,
    #: mempool insertion, per-transaction broadcast).
    tx_processing_time: float = 0.1
    #: Number of gradient transactions that fit in one vanilla-BFL block.
    transactions_per_block: int = 100
    #: Fork behaviour of the vanilla PoW chain (calibrated so the fork-merge
    #: cost produces the sharp delay growth with miner count seen in Fig. 6b).
    fork_model: ForkModel = field(
        default_factory=lambda: ForkModel(base_fork_probability=0.08, merge_cost=12.0)
    )

    def __post_init__(self) -> None:
        check_positive("compute_time_per_batch", self.compute_time_per_batch)
        check_non_negative("compute_jitter", self.compute_jitter)
        check_positive("upload_mean", self.upload_mean)
        check_non_negative("upload_jitter", self.upload_jitter)
        check_non_negative("upload_processing_per_client", self.upload_processing_per_client)
        check_non_negative("exchange_base", self.exchange_base)
        check_non_negative("exchange_per_miner", self.exchange_per_miner)
        check_non_negative("aggregation_base", self.aggregation_base)
        check_non_negative("clustering_per_gradient", self.clustering_per_gradient)
        check_positive("block_interval", self.block_interval)
        check_non_negative("block_broadcast_per_miner", self.block_broadcast_per_miner)
        check_non_negative("server_aggregation_time", self.server_aggregation_time)
        check_non_negative("tx_processing_time", self.tx_processing_time)
        if self.transactions_per_block <= 0:
            raise ValueError(
                f"transactions_per_block must be positive, got {self.transactions_per_block}"
            )


@dataclass(frozen=True)
class RoundDelayBreakdown:
    """The five delay components of one round and their total."""

    t_local: float = 0.0
    t_up: float = 0.0
    t_ex: float = 0.0
    t_gl: float = 0.0
    t_bl: float = 0.0

    @property
    def total(self) -> float:
        """T(n, m) = T_local + T_up + T_ex + T_gl + T_bl."""
        return self.t_local + self.t_up + self.t_ex + self.t_gl + self.t_bl

    def as_dict(self) -> dict[str, float]:
        """Components plus total as a plain dictionary (for round extras)."""
        return {
            "t_local": self.t_local,
            "t_up": self.t_up,
            "t_ex": self.t_ex,
            "t_gl": self.t_gl,
            "t_bl": self.t_bl,
            "total": self.total,
        }


class DelayModel:
    """Samples per-round delays for FAIR-BFL, the FL baselines, and vanilla blockchain.

    The component samplers below are the calibrated primitives of Section 4.6;
    the round compositions delegate to the discrete-event kernel
    (:class:`~repro.sim.rounds.EventRoundSimulator`), so one scheduler owns
    every simulated second.  Use :class:`AnalyticDelayModel` for the original
    closed-form compositions.

    Parameters
    ----------
    params:
        Calibration constants.
    rng:
        Generator for all stochastic draws.
    """

    def __init__(self, params: DelayParameters, rng: np.random.Generator) -> None:
        self.params = params
        self.rng = rng
        self._simulator = None

    @property
    def simulator(self):
        """The kernel-backed round simulator (lazily built, shares ``rng``)."""
        if self._simulator is None:
            # Imported here: repro.sim.rounds imports this module's dataclasses.
            from repro.sim.rounds import EventRoundSimulator

            self._simulator = EventRoundSimulator(self.params, self.rng)
        return self._simulator

    # -- individual components -------------------------------------------------
    def local_training_delay(
        self, num_participants: int, batches_per_epoch: float, epochs: int
    ) -> float:
        """T_local: slowest participant's E · ceil(D_i/B) batch computations."""
        if num_participants <= 0:
            return 0.0
        mean = self.params.compute_time_per_batch * float(batches_per_epoch) * int(epochs)
        draws = mean * self.rng.lognormal(0.0, self.params.compute_jitter, size=num_participants)
        return float(draws.max())

    def upload_delay(self, num_participants: int) -> float:
        """T_up: slowest parallel client->miner upload plus receiver-side handling."""
        if num_participants <= 0:
            return 0.0
        draws = self.params.upload_mean * self.rng.lognormal(
            0.0, self.params.upload_jitter, size=num_participants
        )
        processing = self.params.upload_processing_per_client * num_participants
        return float(draws.max()) + processing

    def exchange_delay(self, num_miners: int) -> float:
        """T_ex: all-pairs gradient-set exchange among the miners."""
        if num_miners <= 1:
            return 0.0
        return self.params.exchange_base + self.params.exchange_per_miner * (num_miners - 1)

    def aggregation_delay(self, num_gradients: int, *, with_clustering: bool = True) -> float:
        """T_gl: global update computation, optionally including Algorithm 2 clustering."""
        delay = self.params.aggregation_base
        if with_clustering:
            delay += self.params.clustering_per_gradient * max(0, int(num_gradients))
        return delay

    def mining_delay(self, num_miners: int) -> float:
        """T_bl: winner solve time plus block broadcast/verification.

        The proof-of-work difficulty is assumed to be retargeted to the network
        hash power (as in deployed chains), so the *winner's* expected solve
        time equals the configured block interval regardless of ``m``; only the
        broadcast term grows with the miner count.
        """
        solve = float(self.rng.exponential(self.params.block_interval))
        broadcast = self.params.block_broadcast_per_miner * max(0, num_miners - 1)
        return solve + broadcast

    def fork_delay(self, num_miners: int) -> tuple[int, float]:
        """Sample (fork_count, merge_delay) for one vanilla-chain mining competition."""
        return self.params.fork_model.sample_fork_delay(self.rng, num_miners)

    # -- per-protocol round compositions (kernel-backed) -------------------------
    def fairbfl_round(
        self,
        *,
        num_participants: int,
        num_miners: int,
        batches_per_epoch: float,
        epochs: int,
        with_clustering: bool = True,
    ) -> RoundDelayBreakdown:
        """One FAIR-BFL round: all five components, one block, no forks (Assumptions 1+2)."""
        return self.simulator.fairbfl_round(
            client_ids=num_participants,
            num_miners=num_miners,
            batches_per_epoch=batches_per_epoch,
            epochs=epochs,
            with_clustering=with_clustering,
        ).breakdown

    def fl_round(
        self,
        *,
        num_participants: int,
        batches_per_epoch: float,
        epochs: int,
    ) -> RoundDelayBreakdown:
        """One FedAvg/FedProx round: local training + upload + server aggregation."""
        return self.simulator.fl_round(
            client_ids=num_participants,
            batches_per_epoch=batches_per_epoch,
            epochs=epochs,
        ).breakdown

    def vanilla_blockchain_round(
        self,
        *,
        num_transactions: int,
        num_miners: int,
        include_learning: bool = False,
        num_participants: int = 0,
        batches_per_epoch: float = 0.0,
        epochs: int = 0,
    ) -> RoundDelayBreakdown:
        """One vanilla-blockchain round recording every gradient on-chain.

        The round must mine ``ceil(num_transactions / transactions_per_block)``
        blocks (queueing, Section 3.1), pays per-transaction processing, and
        risks a fork on every mined block.  When ``include_learning`` is True
        (vanilla *BFL*), the FL-side components are added as well; the pure
        blockchain baseline of Fig. 4a leaves them out.
        """
        return self.simulator.vanilla_round(
            num_transactions=num_transactions,
            num_miners=num_miners,
            include_learning=include_learning,
            client_ids=num_participants,
            batches_per_epoch=batches_per_epoch,
            epochs=epochs,
        ).breakdown


class AnalyticDelayModel(DelayModel):
    """The original closed-form compositions of Section 4.6.

    Kept as the calibration reference: ``tests/test_delay_parity.py`` asserts
    the kernel-simulated means of :class:`DelayModel` land inside the ranges
    this model defines.  Use it when a cheap scalar sample is enough and no
    per-client arrival information is needed.
    """

    def fairbfl_round(
        self,
        *,
        num_participants: int,
        num_miners: int,
        batches_per_epoch: float,
        epochs: int,
        with_clustering: bool = True,
    ) -> RoundDelayBreakdown:
        """Closed form: the five components summed independently."""
        return RoundDelayBreakdown(
            t_local=self.local_training_delay(num_participants, batches_per_epoch, epochs),
            t_up=self.upload_delay(num_participants),
            t_ex=self.exchange_delay(num_miners),
            t_gl=self.aggregation_delay(num_participants, with_clustering=with_clustering),
            t_bl=self.mining_delay(num_miners),
        )

    def fl_round(
        self,
        *,
        num_participants: int,
        batches_per_epoch: float,
        epochs: int,
    ) -> RoundDelayBreakdown:
        """Closed form: local training + upload + fixed server aggregation."""
        return RoundDelayBreakdown(
            t_local=self.local_training_delay(num_participants, batches_per_epoch, epochs),
            t_up=self.upload_delay(num_participants),
            t_gl=self.params.server_aggregation_time,
        )

    def vanilla_blockchain_round(
        self,
        *,
        num_transactions: int,
        num_miners: int,
        include_learning: bool = False,
        num_participants: int = 0,
        batches_per_epoch: float = 0.0,
        epochs: int = 0,
    ) -> RoundDelayBreakdown:
        """Closed form: queued blocks, per-transaction handling, fork merges."""
        if num_transactions < 0:
            raise ValueError(f"num_transactions must be >= 0, got {num_transactions}")
        blocks_required = max(
            1, int(np.ceil(num_transactions / self.params.transactions_per_block))
        )
        t_bl = 0.0
        for _ in range(blocks_required):
            t_bl += self.mining_delay(num_miners)
            _forks, merge_delay = self.fork_delay(num_miners)
            t_bl += merge_delay
        t_up = self.params.tx_processing_time * num_transactions
        t_local = 0.0
        if include_learning:
            t_local = self.local_training_delay(num_participants, batches_per_epoch, epochs)
            t_up += self.upload_delay(num_participants)
        return RoundDelayBreakdown(t_local=t_local, t_up=t_up, t_bl=t_bl)
