"""Event-driven round simulation on the discrete-event kernel.

This module replaces the closed-form composition of the Section 4.6 delay
model with an actual simulation: one :class:`EventRoundSimulator` builds an
:class:`~repro.sim.events.EventKernel` per round and lets the system's actors
schedule their work on it —

* every selected **client** is a named process that finishes local SGD after a
  sampled compute time and then uploads its gradient (a delivery event);
* the receiving **miner** verifies uploads as serialised events;
* **miners** exchange gradient sets through a
  :class:`~repro.blockchain.network.BroadcastNetwork` whose deliveries are
  kernel events, compute the global update, and race to solve the proof of
  work (the earliest solve event wins and cancels the runners-up);
* in the vanilla baseline the **mempool** is drained one
  :meth:`~repro.blockchain.mempool.Mempool.take_block` per solve event, and
  fork merges are scheduled as serialised reorganisation events.

The per-component distributions are exactly those of
:class:`~repro.sim.delay.DelayParameters`, so under the synchronous round mode
the simulated breakdown means match the analytic model (asserted by
``tests/test_delay_parity.py``).  The kernel additionally unlocks round modes
a closed form cannot express:

* ``sync`` — the upload window opens only after the slowest client finishes
  local training (the paper's additive ``T_local + T_up`` decomposition) and
  closes when every upload has arrived;
* ``semi_sync`` — clients upload as soon as they finish (pipelined) and the
  window closes at ``straggler_deadline`` simulated seconds; later arrivals
  are stragglers, excluded from this round's aggregation;
* ``async`` — pipelined uploads, and the window closes as soon as a quorum
  fraction of arrivals is in; the rest arrive stale and are folded into a
  later aggregation with staleness-decayed weights
  (:func:`repro.fl.aggregation.staleness_weights`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.blockchain.consensus import ForkModel
from repro.blockchain.network import BroadcastNetwork
from repro.sim.delay import DelayParameters, RoundDelayBreakdown
from repro.sim.events import EventKernel

__all__ = [
    "ROUND_MODES",
    "ClientArrival",
    "RoundTiming",
    "EventRoundSimulator",
]

#: Supported round synchronisation modes.
ROUND_MODES = ("sync", "semi_sync", "async")

#: Stage names understood by the simulator (mirror Procedures I-V).
_STAGES = ("local", "upload", "exchange", "global", "mining")


def _schedule_serial_chain(kernel: EventKernel, durations, name: str, on_done) -> None:
    """Fire one named event per duration, back to back, then call ``on_done``.

    The shared shape of every serialised pipeline in a round — upload
    verification, per-transaction handling, block broadcast, fork merges:
    event ``i+1`` is scheduled when event ``i`` fires, and ``on_done`` runs at
    the final event's timestamp (immediately if ``durations`` is empty).
    """
    queue = [float(d) for d in durations]
    if not queue:
        on_done()
        return

    def step(index: int) -> None:
        if index + 1 == len(queue):
            on_done()
        else:
            kernel.schedule(queue[index + 1], (lambda: step(index + 1)), name=name)

    kernel.schedule(queue[0], (lambda: step(0)), name=name)


@dataclass(frozen=True)
class ClientArrival:
    """When one client's gradient became available to its miner."""

    client_id: int
    compute_done: float
    arrival: float
    on_time: bool


@dataclass(frozen=True)
class RoundTiming:
    """The outcome of one simulated round.

    ``breakdown`` preserves the paper's five-component decomposition (the
    stage boundaries of the event timeline); ``arrivals`` exposes the
    per-client upload arrivals the round modes act on.
    """

    breakdown: RoundDelayBreakdown
    arrivals: tuple[ClientArrival, ...]
    on_time_ids: tuple[int, ...]
    late_ids: tuple[int, ...]
    winning_miner: int | None
    blocks_mined: int
    fork_count: int
    events_processed: int
    trace_digest: str | None

    @property
    def total(self) -> float:
        """Total simulated round delay."""
        return self.breakdown.total


class EventRoundSimulator:
    """Simulates rounds on the event kernel using the calibrated delay constants.

    Parameters
    ----------
    params:
        Calibration constants shared with the analytic model.
    rng:
        Generator for every stochastic draw (compute/upload jitter, solve
        times, fork collisions) *and* the kernel's tie-breaking seed, so one
        stream reproduces the full event timeline.
    round_mode:
        ``sync`` | ``semi_sync`` | ``async`` (see module docstring).
    straggler_deadline:
        Upload-window close time in simulated seconds (``semi_sync`` only).
        If no upload has arrived by the deadline the window stays open until
        the first one (a round always aggregates at least one gradient).
    async_quorum:
        Fraction of selected clients whose arrival closes the window
        (``async`` only); clamped to at least one client.
    record_trace:
        Record the fired-event trace and report its SHA-256 digest in
        :attr:`RoundTiming.trace_digest` (used by determinism tests).
    """

    def __init__(
        self,
        params: DelayParameters,
        rng: np.random.Generator,
        *,
        round_mode: str = "sync",
        straggler_deadline: float = 6.0,
        async_quorum: float = 0.5,
        record_trace: bool = False,
    ) -> None:
        if round_mode not in ROUND_MODES:
            raise ValueError(
                f"unknown round_mode {round_mode!r}; expected one of: " + ", ".join(ROUND_MODES)
            )
        if straggler_deadline <= 0.0:
            raise ValueError(f"straggler_deadline must be positive, got {straggler_deadline}")
        if not (0.0 < async_quorum <= 1.0):
            raise ValueError(f"async_quorum must lie in (0, 1], got {async_quorum}")
        self.params = params
        self.rng = rng
        self.round_mode = round_mode
        self.straggler_deadline = float(straggler_deadline)
        self.async_quorum = float(async_quorum)
        self.record_trace = bool(record_trace)
        # Miner exchange topologies are deterministic per miner count; build
        # each complete graph once per simulator, not once per round.
        self._exchange_networks: dict[int, BroadcastNetwork] = {}

    # -- public compositions --------------------------------------------------
    def fairbfl_round(
        self,
        *,
        client_ids: Sequence[int] | int,
        num_miners: int,
        batches_per_epoch: float | Mapping[int, float],
        epochs: int,
        with_clustering: bool = True,
        stages: Iterable[str] = _STAGES,
        num_gradients: int | None = None,
    ) -> RoundTiming:
        """One FAIR-BFL round (any subset of Procedures I-V via ``stages``)."""

        def global_duration(on_time_count: int) -> float:
            count = on_time_count if num_gradients is None else int(num_gradients)
            duration = self.params.aggregation_base
            if with_clustering:
                duration += self.params.clustering_per_gradient * max(0, count)
            return duration

        return self._simulate(
            client_ids=client_ids,
            num_miners=num_miners,
            batches_per_epoch=batches_per_epoch,
            epochs=epochs,
            stages=frozenset(stages),
            global_duration=global_duration,
        )

    def fl_round(
        self,
        *,
        client_ids: Sequence[int] | int,
        batches_per_epoch: float | Mapping[int, float],
        epochs: int,
    ) -> RoundTiming:
        """One FedAvg/FedProx round: local training, upload, server aggregation."""
        return self._simulate(
            client_ids=client_ids,
            num_miners=0,
            batches_per_epoch=batches_per_epoch,
            epochs=epochs,
            stages=frozenset(("local", "upload", "global")),
            global_duration=lambda _count: self.params.server_aggregation_time,
        )

    def vanilla_round(
        self,
        *,
        num_transactions: int,
        num_miners: int,
        include_learning: bool = False,
        client_ids: Sequence[int] | int = 0,
        batches_per_epoch: float | Mapping[int, float] = 0.0,
        epochs: int = 0,
        mempool=None,
        on_block: Callable[[list, int], None] | None = None,
        miners: Sequence | None = None,
    ) -> RoundTiming:
        """One vanilla-blockchain round: drain the transaction queue into blocks.

        When ``mempool`` is given it must already hold the round's
        transactions; each solve event drains one ``take_block`` batch and
        ``on_block`` receives ``(batch, winner_index)`` (this is how
        :class:`~repro.sim.vanilla_blockchain.VanillaBlockchainSimulator`
        builds real blocks at event time).  Without a mempool the queueing is
        simulated with uniformly sized stand-in transactions, reproducing the
        analytic ``ceil(n / transactions_per_block)`` block count.  Passing
        real ``miners`` makes each of them schedule its own solve event via
        :meth:`~repro.blockchain.miner.Miner.schedule_solve`.

        Vanilla rounds are always synchronous — the baseline has no straggler
        handling; that is FAIR-BFL's advantage to demonstrate.
        """
        if num_transactions < 0:
            raise ValueError(f"num_transactions must be >= 0, got {num_transactions}")
        return self._simulate(
            client_ids=client_ids if include_learning else 0,
            num_miners=num_miners,
            batches_per_epoch=batches_per_epoch,
            epochs=epochs,
            stages=frozenset(("local", "upload") if include_learning else ()),
            global_duration=None,
            vanilla_tx_count=int(num_transactions),
            mempool=mempool,
            on_block=on_block,
            miners=miners,
            force_sync=True,
        )

    # -- the simulation -------------------------------------------------------
    def _simulate(
        self,
        *,
        client_ids: Sequence[int] | int,
        num_miners: int,
        batches_per_epoch: float | Mapping[int, float],
        epochs: int,
        stages: frozenset,
        global_duration: Callable[[int], float] | None,
        vanilla_tx_count: int | None = None,
        mempool=None,
        on_block: Callable[[list, int], None] | None = None,
        miners: Sequence | None = None,
        force_sync: bool = False,
    ) -> RoundTiming:
        unknown = stages - set(_STAGES)
        if unknown:
            raise ValueError(f"unknown simulation stages: {sorted(unknown)}")
        params = self.params
        mode = "sync" if force_sync else self.round_mode
        ids = list(range(client_ids)) if isinstance(client_ids, int) else [int(c) for c in client_ids]
        n = len(ids)

        kernel = EventKernel(
            seed=int(self.rng.integers(0, 2**63)), record_trace=self.record_trace
        )

        # -- per-client draws (vectorised, like the analytic model) ----------
        if "local" in stages and n:
            if isinstance(batches_per_epoch, Mapping):
                means = np.array(
                    [
                        params.compute_time_per_batch * float(batches_per_epoch[cid]) * int(epochs)
                        for cid in ids
                    ]
                )
            else:
                means = np.full(
                    n, params.compute_time_per_batch * float(batches_per_epoch) * int(epochs)
                )
            compute = means * self.rng.lognormal(0.0, params.compute_jitter, size=n)
        else:
            compute = np.zeros(n)
        if "upload" in stages and n:
            upload = params.upload_mean * self.rng.lognormal(0.0, params.upload_jitter, size=n)
        else:
            upload = np.zeros(n)

        # Mutable round state shared by the event callbacks below.
        state = {
            "arrived": [],  # list[(client_id, compute_done, arrival)]
            "window_closed": False,
            "awaiting_first": False,
            "verify_end": 0.0,
            "exchange_end": 0.0,
            "global_end": 0.0,
            "mining_end": 0.0,
            "winner": None,
            "blocks": 0,
            "forks": 0,
            "on_time": [],
        }
        quorum = max(1, int(np.ceil(self.async_quorum * n))) if n else 0
        barrier = kernel.signal("upload-window-open")

        # -- Procedure I + II: client processes ------------------------------
        def client_process(index: int, cid: int):
            yield float(compute[index])
            done = kernel.now
            if "upload" not in stages:
                state["arrived"].append((cid, done, done))
                maybe_close_window()
                return
            if mode == "sync":
                yield barrier
            yield float(upload[index])
            state["arrived"].append((cid, done, kernel.now))
            maybe_close_window()

        def maybe_close_window() -> None:
            if state["window_closed"] or not n:
                return
            arrived = len(state["arrived"])
            if mode == "sync":
                if arrived == n:
                    close_window()
            elif mode == "async":
                if arrived >= quorum:
                    close_window()
            else:  # semi_sync
                if arrived == n or (state["awaiting_first"] and arrived >= 1):
                    close_window()

        def close_window() -> None:
            state["window_closed"] = True
            state["on_time"] = [cid for cid, _done, _arr in state["arrived"]]
            start_verification()

        if n:
            for index, cid in enumerate(ids):
                kernel.spawn(f"client-{cid}", client_process(index, cid))
            if mode == "sync":
                # The window opens when the slowest client finishes Procedure I
                # (the barrier behind the paper's additive decomposition).
                kernel.schedule_at(
                    float(compute.max()), barrier.fire, name="local-phase:complete"
                )
            elif mode == "semi_sync":
                barrier.fire()

                def deadline_hit() -> None:
                    if state["window_closed"]:
                        return
                    if state["arrived"]:
                        close_window()
                    else:
                        state["awaiting_first"] = True

                kernel.schedule(
                    self.straggler_deadline, deadline_hit, name="straggler-deadline"
                )
            else:
                barrier.fire()
        else:
            state["window_closed"] = True

        # -- Procedure II (receiver side): serialised upload verification ----
        def start_verification() -> None:
            count = len(state["on_time"]) if "upload" in stages else 0

            def done() -> None:
                state["verify_end"] = kernel.now
                after_uploads()

            _schedule_serial_chain(
                kernel,
                [params.upload_processing_per_client] * count,
                "miner:verify-upload",
                done,
            )

        def after_uploads() -> None:
            if vanilla_tx_count is not None:
                start_tx_processing()
            else:
                start_exchange()

        # -- vanilla: per-transaction handling then block mining --------------
        def start_tx_processing() -> None:
            def done() -> None:
                state["verify_end"] = kernel.now
                start_vanilla_mining()

            _schedule_serial_chain(
                kernel,
                [params.tx_processing_time] * vanilla_tx_count,
                "mempool:process-tx",
                done,
            )

        fork_model: ForkModel = params.fork_model

        def start_vanilla_mining() -> None:
            state["exchange_end"] = kernel.now
            state["global_end"] = kernel.now
            pool = mempool
            if pool is None:
                # Uniform stand-in transactions reproduce the analytic
                # ceil(n / transactions_per_block) queueing behaviour.
                pending = {"blocks": max(1, -(-vanilla_tx_count // params.transactions_per_block))}

                def take_batch() -> bool:
                    pending["blocks"] -= 1
                    return pending["blocks"] > 0

            else:

                def take_batch() -> bool:
                    batch = pool.take_block()
                    if on_block is not None:
                        on_block(batch, int(state["winner"] or 0))
                    return pool.pending_count > 0

            def mine_next_block() -> None:
                run_competition(on_won=lambda: after_block(take_batch()))

            def after_block(more: bool) -> None:
                state["blocks"] += 1
                collisions = fork_model.sample_collisions(self.rng, num_miners)
                state["forks"] += collisions
                _schedule_serial_chain(
                    kernel,
                    fork_model.merge_schedule(collisions),
                    "fork:merge",
                    (lambda: finish_or_continue(more)),
                )

            def finish_or_continue(more: bool) -> None:
                if more:
                    mine_next_block()
                else:
                    state["mining_end"] = kernel.now

            mine_next_block()

        # -- Procedure III: gradient-set exchange over the network ------------
        def start_exchange() -> None:
            if "exchange" not in stages or num_miners <= 1:
                state["exchange_end"] = kernel.now
                start_global()
                return
            network = self._exchange_networks.get(num_miners)
            if network is None:
                latency = params.exchange_base + params.exchange_per_miner * (num_miners - 1)
                network = BroadcastNetwork(
                    node_ids=[f"miner-{k}" for k in range(num_miners)],
                    rng=self.rng,
                    base_latency=latency,
                    jitter=0.0,
                )
                self._exchange_networks[num_miners] = network
            remaining = {"count": num_miners * (num_miners - 1)}

            def delivered(_msg) -> None:
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    state["exchange_end"] = kernel.now
                    start_global()

            for name in network.node_ids:
                network.broadcast_via(kernel, name, payload="gradient-set", on_deliver=delivered)

        # -- Procedure IV: global update -------------------------------------
        def start_global() -> None:
            if "global" not in stages or global_duration is None:
                state["global_end"] = kernel.now
                start_mining()
                return
            duration = float(global_duration(len(state["on_time"])))

            def done() -> None:
                state["global_end"] = kernel.now
                start_mining()

            kernel.schedule(duration, done, name="miner:global-update")

        # -- Procedure V: mining competition ----------------------------------
        def run_competition(on_won: Callable[[], None]) -> None:
            solves = self.rng.exponential(params.block_interval * num_miners, size=num_miners)
            events = []
            race = {"decided": False}

            def solved(winner_index: int) -> None:
                if race["decided"]:
                    return
                race["decided"] = True
                state["winner"] = winner_index
                for event in events:
                    event.cancel()
                broadcast_block(on_won)

            if miners is not None:
                # Real miner actors register their own solve events.
                for k, miner in enumerate(miners):
                    events.append(
                        miner.schedule_solve(
                            kernel, float(solves[k]), on_solve=(lambda _m, k=k: solved(k))
                        )
                    )
            else:
                for k in range(num_miners):
                    events.append(
                        kernel.schedule(
                            float(solves[k]),
                            (lambda k=k: solved(k)),
                            name=f"miner-{k}:pow-solve",
                        )
                    )

        def broadcast_block(on_done: Callable[[], None]) -> None:
            peers = max(0, num_miners - 1)
            _schedule_serial_chain(
                kernel,
                [params.block_broadcast_per_miner] * peers,
                "block:broadcast",
                on_done,
            )

        def start_mining() -> None:
            if "mining" not in stages or num_miners <= 0:
                state["mining_end"] = kernel.now
                return
            run_competition(on_won=lambda: _finish_single_block())

        def _finish_single_block() -> None:
            state["blocks"] += 1
            state["mining_end"] = kernel.now

        # Kick the pipeline off for client-less rounds (pure chain timing);
        # rounds with clients start via the client arrivals above.
        if not n:
            kernel.schedule(0.0, after_uploads, name="round:start")

        kernel.run()

        # -- assemble the timing result ---------------------------------------
        arrived_ids = {cid for cid, _d, _a in state["arrived"]}
        on_time = list(state["on_time"]) if n else []
        on_time_set = set(on_time)
        arrival_by_id = {cid: (done, arr) for cid, done, arr in state["arrived"]}
        arrivals = []
        for index, cid in enumerate(ids):
            if cid in arrival_by_id:
                done, arr = arrival_by_id[cid]
            else:  # event-budget edge: never arrived (should not happen)
                done, arr = float(compute[index]), float("inf")
            arrivals.append(
                ClientArrival(
                    client_id=cid,
                    compute_done=done,
                    arrival=arr,
                    on_time=cid in on_time_set,
                )
            )
        late = [cid for cid in ids if cid not in on_time_set and cid in arrived_ids]

        t_local = max(
            (a.compute_done for a in arrivals if a.on_time), default=0.0
        ) if "local" in stages else 0.0
        if "upload" in stages:
            t_up = max(0.0, state["verify_end"] - t_local)
        elif vanilla_tx_count is not None:
            t_up = state["verify_end"]
        else:
            t_up = 0.0
        t_ex = max(0.0, state["exchange_end"] - state["verify_end"])
        t_gl = max(0.0, state["global_end"] - state["exchange_end"])
        t_bl = max(0.0, state["mining_end"] - state["global_end"])
        breakdown = RoundDelayBreakdown(
            t_local=t_local, t_up=t_up, t_ex=t_ex, t_gl=t_gl, t_bl=t_bl
        )
        return RoundTiming(
            breakdown=breakdown,
            arrivals=tuple(arrivals),
            on_time_ids=tuple(on_time),
            late_ids=tuple(late),
            winning_miner=state["winner"],
            blocks_mined=int(state["blocks"]),
            fork_count=int(state["forks"]),
            events_processed=kernel.events_processed,
            trace_digest=kernel.trace_digest() if self.record_trace else None,
        )
