"""System/timing simulation.

The paper's latency results are driven by five delay components
(Section 4.6): local training T_local, gradient upload T_up, miner exchange
T_ex, global-update computation T_gl, and block mining/consensus T_bl.  This
package provides:

* :mod:`repro.sim.delay` — stochastic models for each component and their
  composition into per-round delays for FAIR-BFL, FedAvg/FedProx, and the
  vanilla blockchain;
* :mod:`repro.sim.forking` — fork-frequency/merge-cost accounting reused from
  :mod:`repro.blockchain.consensus`;
* :mod:`repro.sim.vanilla_blockchain` — the vanilla-blockchain baseline used
  in Figures 4a, 6a, 6b and 7a: every local gradient becomes an on-chain
  transaction, blocks have a fixed size, and rounds only finish when all
  transactions are recorded.
"""

from repro.sim.delay import DelayModel, DelayParameters, RoundDelayBreakdown
from repro.sim.vanilla_blockchain import VanillaBlockchainConfig, VanillaBlockchainSimulator

__all__ = [
    "DelayModel",
    "DelayParameters",
    "RoundDelayBreakdown",
    "VanillaBlockchainConfig",
    "VanillaBlockchainSimulator",
]
