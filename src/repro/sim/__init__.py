"""System/timing simulation.

The paper's latency results are driven by five delay components
(Section 4.6): local training T_local, gradient upload T_up, miner exchange
T_ex, global-update computation T_gl, and block mining/consensus T_bl.  This
package provides:

* :mod:`repro.sim.events` — the deterministic discrete-event kernel
  (priority-queue scheduler, simulated clock, named processes, seeded
  tie-breaking) that owns every simulated second in the repository;
* :mod:`repro.sim.rounds` — event-driven round simulation: clients, miners,
  the broadcast network, and the mempool act as kernel processes, with
  ``sync`` / ``semi_sync`` / ``async`` round modes;
* :mod:`repro.sim.delay` — the calibrated per-component samplers and the
  :class:`~repro.sim.delay.DelayModel` adapter that reports kernel rounds as
  the paper's ``T(n, m)`` breakdown (plus the closed-form
  :class:`~repro.sim.delay.AnalyticDelayModel` calibration reference);
* :mod:`repro.sim.vanilla_blockchain` — the vanilla-blockchain baseline used
  in Figures 4a, 6a, 6b and 7a: every local gradient becomes an on-chain
  transaction, blocks have a fixed size, and rounds only finish when all
  transactions are recorded.
"""

from repro.sim.delay import (
    AnalyticDelayModel,
    DelayModel,
    DelayParameters,
    RoundDelayBreakdown,
)
from repro.sim.events import EventKernel, EventKernelError, ScheduledEvent, Signal
from repro.sim.rounds import (
    ROUND_MODES,
    ClientArrival,
    EventRoundSimulator,
    RoundTiming,
)
from repro.sim.vanilla_blockchain import VanillaBlockchainConfig, VanillaBlockchainSimulator

__all__ = [
    "AnalyticDelayModel",
    "DelayModel",
    "DelayParameters",
    "RoundDelayBreakdown",
    "EventKernel",
    "EventKernelError",
    "ScheduledEvent",
    "Signal",
    "ROUND_MODES",
    "ClientArrival",
    "EventRoundSimulator",
    "RoundTiming",
    "VanillaBlockchainConfig",
    "VanillaBlockchainSimulator",
]
