"""The vanilla-blockchain baseline.

"Blockchain" in the paper's comparisons (Figs. 4a, 6a, 6b, 7a) is the
un-redesigned ledger: every worker's update becomes an on-chain transaction,
blocks have a bounded size so transactions queue across blocks, every mined
block risks a fork whose merge cost grows with the miner count, and the round
only completes once all of the round's transactions are recorded.

The simulator below actually exercises the ledger machinery *on the event
kernel*: transactions are built and (optionally) RSA-signed, queued in a
:class:`~repro.blockchain.mempool.Mempool`, and every block is created at a
proof-of-work solve **event** — the winning miner's
:meth:`~repro.blockchain.miner.Miner.schedule_solve` fires first, drains one
:meth:`~repro.blockchain.mempool.Mempool.take_block` batch, builds the block,
and the replicas append it; fork merges are scheduled reorganisation events.
Chain state and round timing therefore come from one simulation
(:class:`~repro.sim.rounds.EventRoundSimulator`) and cannot disagree.

The simulator is registered as the ``blockchain`` system
(:mod:`repro.systems.builtin`) with ``needs_dataset=False``: its workload is
gradient-*sized* transactions, not gradients, so the experiment engine never
builds a federated dataset for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.mempool import Mempool
from repro.blockchain.miner import Miner
from repro.blockchain.transaction import make_gradient_transaction
from repro.crypto.keystore import KeyStore
from repro.fl.history import RoundRecord, TrainingHistory
from repro.runner.checkpoint import CheckpointMixin
from repro.sim.delay import DelayParameters
from repro.sim.rounds import EventRoundSimulator
from repro.utils.rng import new_rng
from repro.utils.timer import SimulatedClock

__all__ = ["VanillaBlockchainConfig", "VanillaBlockchainSimulator"]


@dataclass(frozen=True)
class VanillaBlockchainConfig:
    """Configuration of the vanilla-blockchain baseline run.

    Attributes
    ----------
    num_workers:
        Number of transaction-producing workers (the paper's n).
    num_miners:
        Number of miners competing for each block (the paper's m).
    num_rounds:
        Number of "communication rounds"; one round means every worker submits
        one transaction and the chain drains the resulting queue.
    payload_elements:
        Number of float64 elements per worker transaction (a gradient-sized
        payload; only the size matters for queueing).
    verify_signatures:
        Whether transactions are RSA-signed and verified (exercises the full
        Figure 2 path; disable for very large sweeps).
    delay_params:
        Calibration constants for the timing model.
    seed:
        Experiment seed.
    """

    num_workers: int = 100
    num_miners: int = 2
    num_rounds: int = 20
    payload_elements: int = 32
    verify_signatures: bool = False
    delay_params: DelayParameters = field(default_factory=DelayParameters)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {self.num_workers}")
        if self.num_miners <= 0:
            raise ValueError(f"num_miners must be positive, got {self.num_miners}")
        if self.num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {self.num_rounds}")
        if self.payload_elements <= 0:
            raise ValueError(f"payload_elements must be positive, got {self.payload_elements}")


class VanillaBlockchainSimulator(CheckpointMixin):
    """Runs the vanilla-blockchain baseline and records per-round delays."""

    label = "blockchain"

    def __init__(self, config: VanillaBlockchainConfig) -> None:
        self.config = config
        self.rng = new_rng(config.seed, "vanilla-blockchain")
        self.round_sim = EventRoundSimulator(config.delay_params, new_rng(config.seed, "vb-delay"))
        self.keystore = KeyStore(seed=config.seed) if config.verify_signatures else None
        self.worker_ids = [f"worker-{i}" for i in range(config.num_workers)]
        if self.keystore is not None:
            for wid in self.worker_ids:
                self.keystore.register(wid)

        genesis = Block.genesis()
        self.miners: list[Miner] = []
        for k in range(config.num_miners):
            chain = Blockchain(enforce_pow=False)
            chain.add_genesis(genesis)
            self.miners.append(
                Miner(
                    miner_id=f"miner-{k}",
                    chain=chain,
                    keystore=self.keystore,
                    verify_signatures=config.verify_signatures,
                )
            )
        # The mempool size is expressed in bytes; convert the configured
        # transactions-per-block capacity using the payload size.
        tx_bytes = config.payload_elements * 8
        self.mempool = Mempool(block_size_bytes=tx_bytes * config.delay_params.transactions_per_block)
        self.total_forks = 0
        self.clock = SimulatedClock()
        self.history = TrainingHistory(label=self.label)

    # ------------------------------------------------------------------
    def _make_round_transactions(self, round_index: int) -> list:
        """Every worker submits one gradient-sized transaction."""
        txs = []
        for i, wid in enumerate(self.worker_ids):
            payload = self.rng.normal(size=self.config.payload_elements)
            txs.append(
                make_gradient_transaction(
                    wid,
                    round_index,
                    payload,
                    keystore=self.keystore,
                    client_index=i,
                )
            )
        return txs

    def run_round(self, round_index: int, clock: SimulatedClock) -> RoundRecord:
        """Execute one round on the event kernel: every block is mined at a solve event."""
        cfg = self.config
        txs = self._make_round_transactions(round_index)
        self.mempool.submit_many(txs)

        def build_and_commit(batch: list, winner_index: int) -> None:
            """Solve-event handler: the winning miner packs the batch into a block."""
            winner = self.miners[winner_index]
            block = winner.build_block(
                round_index,
                batch,
                timestamp=clock.now,
                difficulty=1.0,
            )
            for miner in self.miners:
                miner.accept_block(block)

        timing = self.round_sim.vanilla_round(
            num_transactions=len(txs),
            num_miners=cfg.num_miners,
            mempool=self.mempool,
            on_block=build_and_commit,
            miners=self.miners,
        )
        self.total_forks += timing.fork_count
        clock.advance(timing.total)
        return RoundRecord(
            round_index=round_index,
            delay=timing.total,
            accuracy=0.0,
            elapsed_time=clock.now,
            participants=list(range(cfg.num_workers)),
            extras={
                "delay_breakdown": timing.breakdown.as_dict(),
                "blocks_mined": timing.blocks_mined,
                "fork_count": timing.fork_count,
                "sim_events": timing.events_processed,
                "chain_height": self.miners[0].chain.height,
            },
        )

    def run(self, *, num_rounds: int | None = None) -> TrainingHistory:
        """Run ``num_rounds`` *additional* rounds and return the full history.

        Like the FL trainers, the clock and history are instance state so a
        restored checkpoint continues exactly where it stopped.
        """
        rounds = self.config.num_rounds if num_rounds is None else int(num_rounds)
        for r in range(len(self.history), len(self.history) + rounds):
            self.history.append(self.run_round(r, self.clock))
        return self.history

    @property
    def chain_height(self) -> int:
        """Current ledger height on the first miner's replica."""
        return self.miners[0].chain.height
