"""Deterministic discrete-event simulation kernel.

All simulated time in the repository flows through one scheduler: the
:class:`EventKernel` owns a priority queue of timestamped events and a
simulated clock that only advances when an event fires.  Domain objects
(miners, the broadcast network, the mempool, federated clients) act as
*processes* that schedule work on the kernel instead of sampling scalar
delays, so "what happened when" is a single, inspectable event trace rather
than three timing models that can silently disagree.

Determinism is a hard requirement — the repository's central claim is that
per-round histories are bit-identical across the serial/thread/process
executor backends.  The kernel guarantees it structurally:

* events are ordered by ``(time, priority, tie_break, sequence)``;
* ``tie_break`` is drawn from the kernel's own seeded RNG stream at
  *scheduling* time, so simultaneous events are ordered by the seed, not by
  accidental insertion order;
* the kernel is single-threaded by construction — parallel executors fan out
  *numeric* work (local SGD), never kernel time, so the event trace cannot
  depend on the backend.

The optional trace records ``(time, name)`` per fired event;
:meth:`EventKernel.trace_digest` condenses it into a SHA-256 hex digest that
tests compare across backends and repeated runs.

Two process styles are supported:

* **callbacks** — ``kernel.schedule(delay, action, name=...)``;
* **generators** — ``kernel.spawn(name, gen)`` where ``gen`` yields non-negative
  float delays (timeouts) or :class:`Signal` objects (wait until fired).
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from typing import Callable, Generator, Iterable

import numpy as np

__all__ = ["EventKernelError", "ScheduledEvent", "Signal", "EventKernel"]


class EventKernelError(RuntimeError):
    """The kernel was asked to do something unsound (negative delay, runaway run)."""


class ScheduledEvent:
    """A handle to one scheduled event; cancellation is lazy (skipped on pop)."""

    __slots__ = ("time", "priority", "tie_break", "seq", "name", "action", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        tie_break: int,
        seq: int,
        name: str,
        action: Callable[[], None] | None,
    ) -> None:
        self.time = float(time)
        self.priority = int(priority)
        self.tie_break = int(tie_break)
        self.seq = int(seq)
        self.name = str(name)
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    @property
    def sort_key(self) -> tuple[float, int, int, int]:
        """The total event order: time, then priority, then seeded tie-break."""
        return (self.time, self.priority, self.tie_break, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent(t={self.time:.6f}, name={self.name!r}, {state})"


class Signal:
    """A named condition processes can wait on (``yield signal``) until fired.

    Firing wakes every waiter via a zero-delay kernel event, so wake-ups are
    ordered by the kernel's deterministic tie-breaking like any other event.
    The payload passed to :meth:`fire` becomes the value of the ``yield``
    expression in each waiting generator.
    """

    __slots__ = ("kernel", "name", "fired", "payload", "_waiters")

    def __init__(self, kernel: "EventKernel", name: str) -> None:
        self.kernel = kernel
        self.name = str(name)
        self.fired = False
        self.payload: object = None
        self._waiters: list[Callable[[object], None]] = []

    def fire(self, payload: object = None) -> None:
        """Fire the signal once; repeated fires are ignored."""
        if self.fired:
            return
        self.fired = True
        self.payload = payload
        for waiter in self._waiters:
            self.kernel.schedule(
                0.0, (lambda w=waiter: w(payload)), name=f"{self.name}:wake"
            )
        self._waiters.clear()

    def _add_waiter(self, resume: Callable[[object], None]) -> None:
        if self.fired:
            # Late waiters resume immediately (still via an event, for ordering).
            self.kernel.schedule(
                0.0, (lambda: resume(self.payload)), name=f"{self.name}:wake"
            )
        else:
            self._waiters.append(resume)


class EventKernel:
    """Priority-queue discrete-event scheduler with a seeded total event order.

    Parameters
    ----------
    seed:
        Seeds the tie-breaking stream for simultaneous events.  ``None``
        disables seeded tie-breaking (insertion order decides ties).
    record_trace:
        When True every fired event is appended to :attr:`trace` as
        ``(time, name)``; :meth:`trace_digest` hashes the trace for
        cross-backend determinism checks.
    """

    def __init__(self, *, seed: int | None = 0, record_trace: bool = False) -> None:
        self.now: float = 0.0
        self.record_trace = bool(record_trace)
        self.trace: list[tuple[float, str]] = []
        self.events_processed: int = 0
        self._heap: list[tuple[tuple[float, int, int, int], ScheduledEvent]] = []
        self._seq = itertools.count()
        self._tie_rng: np.random.Generator | None = (
            None if seed is None else np.random.Generator(np.random.PCG64(int(seed)))
        )

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], None] | None = None,
        *,
        name: str = "event",
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``action`` to fire ``delay`` simulated seconds from now."""
        if not np.isfinite(delay) or delay < 0.0:
            raise EventKernelError(
                f"event {name!r} scheduled with invalid delay {delay!r}"
            )
        return self.schedule_at(self.now + float(delay), action, name=name, priority=priority)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None] | None = None,
        *,
        name: str = "event",
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``action`` at an absolute simulated time (>= now)."""
        if not np.isfinite(time) or time < self.now:
            raise EventKernelError(
                f"event {name!r} scheduled in the past (t={time!r} < now={self.now!r})"
            )
        tie = 0 if self._tie_rng is None else int(self._tie_rng.integers(0, 2**32))
        event = ScheduledEvent(time, priority, tie, next(self._seq), name, action)
        heapq.heappush(self._heap, (event.sort_key, event))
        return event

    # -- generator processes -------------------------------------------------
    def signal(self, name: str) -> Signal:
        """Create a named :class:`Signal` bound to this kernel."""
        return Signal(self, name)

    def spawn(
        self,
        name: str,
        generator: Generator[object, object, None],
        *,
        delay: float = 0.0,
    ) -> ScheduledEvent:
        """Run a generator as a named process.

        The generator may yield non-negative floats (sleep that many simulated
        seconds) or :class:`Signal` objects (suspend until the signal fires;
        the fire payload becomes the ``yield``'s value).  The process starts
        after ``delay`` seconds.
        """

        def step(send_value: object = None) -> None:
            try:
                yielded = generator.send(send_value)
            except StopIteration:
                return
            if isinstance(yielded, Signal):
                yielded._add_waiter(step)
            elif isinstance(yielded, (int, float)):
                self.schedule(float(yielded), step, name=name)
            else:
                raise EventKernelError(
                    f"process {name!r} yielded {type(yielded).__name__}; "
                    "expected a float delay or a Signal"
                )

        return self.schedule(delay, step, name=name)

    # -- execution -----------------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int = 1_000_000) -> float:
        """Fire events in order until the queue drains (or ``until``/budget hits).

        Returns the kernel clock after the run.  ``until`` stops *before*
        firing any event scheduled later than it (the clock advances to
        ``until`` in that case).  ``max_events`` guards against runaway
        self-scheduling processes.
        """
        fired = 0
        while self._heap:
            key, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                self.now = float(until)
                return self.now
            if fired >= max_events:
                # Only a budget *violation* if work genuinely remains — a run
                # whose event count exactly equals the budget completes fine.
                raise EventKernelError(
                    f"event budget exhausted after {fired} events at t={self.now:.6f}"
                )
            heapq.heappop(self._heap)
            self.now = event.time
            self.events_processed += 1
            fired += 1
            if self.record_trace:
                self.trace.append((event.time, event.name))
            if event.action is not None:
                event.action()
        if until is not None and until > self.now:
            self.now = float(until)
        return self.now

    # -- introspection -------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of scheduled-but-unfired (non-cancelled) events."""
        return sum(1 for _, e in self._heap if not e.cancelled)

    def trace_digest(self) -> str:
        """SHA-256 hex digest of the fired-event trace (requires record_trace)."""
        h = hashlib.sha256()
        for time, name in self.trace:
            h.update(f"{time:.9f}|{name}\n".encode("utf-8"))
        return h.hexdigest()

    @staticmethod
    def digest_of(traces: Iterable[tuple[float, str]]) -> str:
        """Digest an explicit ``(time, name)`` iterable (for stitched traces)."""
        h = hashlib.sha256()
        for time, name in traces:
            h.update(f"{time:.9f}|{name}\n".encode("utf-8"))
        return h.hexdigest()
