"""Clocks used by the simulation.

FAIR-BFL's evaluation reports both *simulated* delay (driven by the delay
models of Section 4.6) and elapsed learning time.  The simulation therefore
keeps its own clock, advanced explicitly by the orchestrator; wall-clock
measurement is only used by the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative

__all__ = ["SimulatedClock", "WallClockTimer"]


@dataclass
class SimulatedClock:
    """A manually-advanced clock measuring simulated seconds.

    The clock never goes backwards; :meth:`advance` with a negative duration is
    rejected so that per-round delay accounting cannot silently corrupt the
    time axis used by the accuracy-vs-time figures (Figs. 4b / 7b).
    """

    now: float = 0.0
    _history: list[float] = field(default_factory=list, repr=False)

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        seconds = check_non_negative("seconds", seconds)
        self.now += seconds
        self._history.append(seconds)
        return self.now

    def reset(self) -> None:
        """Reset the clock to zero and clear the recorded increments."""
        self.now = 0.0
        self._history.clear()

    @property
    def increments(self) -> list[float]:
        """All increments applied so far (a copy)."""
        return list(self._history)

    @property
    def total_elapsed(self) -> float:
        """Total simulated time elapsed (equals ``now`` when starting at 0)."""
        return float(sum(self._history))


class WallClockTimer:
    """Context-manager measuring wall-clock duration of a code block."""

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallClockTimer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.start is not None:
            self.elapsed = time.perf_counter() - self.start
