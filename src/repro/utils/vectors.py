"""Flat-vector packing and distance helpers.

FAIR-BFL moves model state around as flat gradient vectors: clients upload
them, miners exchange them, Algorithm 2 clusters them, and Equation (1)
aggregates them.  This module provides the vectorised packing/unpacking and
distance primitives shared by all of those components.

All functions operate on ``numpy.ndarray`` of ``float64`` and avoid Python
loops over elements (see the repository HPC guides): distances over a batch of
vectors are computed with a single matrix product.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "flatten_arrays",
    "unflatten_array",
    "l2_norm",
    "l2_distance",
    "cosine_similarity",
    "cosine_distance",
    "pairwise_cosine_distance",
    "pairwise_euclidean_distance",
]


def flatten_arrays(arrays: Iterable[np.ndarray]) -> np.ndarray:
    """Concatenate a sequence of arrays into a single 1-D ``float64`` vector.

    Parameters
    ----------
    arrays:
        Arrays of arbitrary shapes (e.g. per-layer weights and biases).

    Returns
    -------
    numpy.ndarray
        1-D vector holding all elements in iteration order.
    """
    chunks = [np.asarray(a, dtype=np.float64).ravel() for a in arrays]
    if not chunks:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(chunks)


def unflatten_array(vector: np.ndarray, shapes: Sequence[tuple[int, ...]]) -> list[np.ndarray]:
    """Split a flat vector back into arrays with the given ``shapes``.

    Raises
    ------
    ValueError
        If the vector length does not match the total number of elements
        implied by ``shapes``.
    """
    vector = np.asarray(vector, dtype=np.float64).ravel()
    sizes = [int(np.prod(s)) if len(s) else 1 for s in shapes]
    total = int(sum(sizes))
    if vector.size != total:
        raise ValueError(
            f"vector of length {vector.size} cannot be unflattened into shapes "
            f"totalling {total} elements"
        )
    out: list[np.ndarray] = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(vector[offset : offset + size].reshape(shape).copy())
        offset += size
    return out


def l2_norm(vector: np.ndarray) -> float:
    """Euclidean norm of a vector."""
    return float(np.linalg.norm(np.asarray(vector, dtype=np.float64)))


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two vectors of equal length."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


def cosine_similarity(a: np.ndarray, b: np.ndarray, *, eps: float = 1e-12) -> float:
    """Cosine similarity in ``[-1, 1]``; zero vectors are treated as orthogonal."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na < eps or nb < eps:
        return 0.0
    return float(np.clip(np.dot(a, b) / (na * nb), -1.0, 1.0))


def cosine_distance(a: np.ndarray, b: np.ndarray, *, eps: float = 1e-12) -> float:
    """Cosine distance ``1 - cos(a, b)`` in ``[0, 2]``.

    This is the :math:`\\theta_i` used by Algorithm 2 of the paper ("the larger
    the θ, the farther the distance").
    """
    return 1.0 - cosine_similarity(a, b, eps=eps)


def pairwise_cosine_distance(matrix: np.ndarray, *, eps: float = 1e-12) -> np.ndarray:
    """Pairwise cosine-distance matrix for the rows of ``matrix``.

    Implemented as a single normalised Gram-matrix product (no Python loops),
    which is the dominant cost in Algorithm 2 at scale.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D matrix of row vectors, got ndim={m.ndim}")
    norms = np.linalg.norm(m, axis=1, keepdims=True)
    safe = np.where(norms < eps, 1.0, norms)
    unit = m / safe
    sims = np.clip(unit @ unit.T, -1.0, 1.0)
    # Rows that were (near-)zero vectors are defined as orthogonal to everything
    # but identical to themselves.
    zero_mask = (norms.ravel() < eps)
    if zero_mask.any():
        sims[zero_mask, :] = 0.0
        sims[:, zero_mask] = 0.0
        sims[np.ix_(zero_mask, zero_mask)] = 1.0
    np.fill_diagonal(sims, 1.0)
    return 1.0 - sims


def pairwise_euclidean_distance(matrix: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean-distance matrix for the rows of ``matrix``."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D matrix of row vectors, got ndim={m.ndim}")
    sq = np.sum(m * m, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (m @ m.T)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)
