"""Shared utilities for the FAIR-BFL reproduction.

This subpackage provides the small, dependency-free building blocks used by
every other subsystem:

* :mod:`repro.utils.rng` -- deterministic random-number-generator management so
  that every experiment in the paper can be replayed bit-for-bit.
* :mod:`repro.utils.vectors` -- flat-vector packing helpers used to move model
  parameters/gradients between the learning substrate, the incentive
  mechanism, and the blockchain.
* :mod:`repro.utils.validation` -- argument-checking helpers with consistent
  error messages.
* :mod:`repro.utils.timer` -- simulated-clock and wall-clock timers.
"""

from repro.utils.rng import RngRegistry, derive_seed, new_rng, spawn_rngs
from repro.utils.timer import SimulatedClock, WallClockTimer
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)
from repro.utils.vectors import (
    cosine_distance,
    cosine_similarity,
    flatten_arrays,
    l2_distance,
    l2_norm,
    unflatten_array,
)

__all__ = [
    "RngRegistry",
    "derive_seed",
    "new_rng",
    "spawn_rngs",
    "SimulatedClock",
    "WallClockTimer",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "cosine_distance",
    "cosine_similarity",
    "flatten_arrays",
    "l2_distance",
    "l2_norm",
    "unflatten_array",
]
