"""Argument validation helpers with consistent error messages.

These helpers keep user-facing constructors short while producing actionable
errors (the offending parameter name and value are always included).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_type",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_executor_settings",
]


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {expected_names}, got {type(value).__name__}")
    return value


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive and finite."""
    v = float(value)
    if not (v > 0.0) or v != v or v == float("inf"):
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return v


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is ``>= 0`` and finite."""
    v = float(value)
    if not (v >= 0.0) or v == float("inf"):
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return v


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]``."""
    v = float(value)
    if not (0.0 <= v <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return v


def check_executor_settings(backend: str, workers: int | None) -> str:
    """Validate a (backend, worker-count) pair for the parallel executor.

    Lives here (rather than in :mod:`repro.runner.executor`) so the frozen
    config dataclasses can validate eagerly without importing the executor
    machinery at module-import time.
    """
    valid = ("serial", "thread", "process", "cohort")
    key = str(backend).strip().lower()
    if key not in valid:
        raise ValueError(
            f"executor_backend must be one of {', '.join(valid)}, got {backend!r}"
        )
    if workers is not None and int(workers) <= 0:
        raise ValueError(f"executor_workers must be positive or None, got {workers!r}")
    return key


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Raise ``ValueError`` unless ``value`` lies within ``[low, high]`` (or ``(low, high)``)."""
    v = float(value)
    ok = (low <= v <= high) if inclusive else (low < v < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return v
