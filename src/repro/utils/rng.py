"""Deterministic random-number management.

Every stochastic component in the reproduction (data synthesis, client
selection, attacker designation, mining-time sampling, network latency) draws
from a :class:`numpy.random.Generator` created through this module, so a single
experiment seed reproduces the whole run, including Table 2's per-round
attacker indices.

The paper does not document its seeding scheme; we adopt the standard
SeedSequence-based derivation recommended by NumPy so that independent
components get statistically independent streams.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["derive_seed", "new_rng", "spawn_rngs", "RngRegistry"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the textual representation of the labels with
    SHA-256, which gives well-mixed, order-sensitive child seeds without
    requiring the labels to be integers.

    Parameters
    ----------
    base_seed:
        The experiment-level seed.
    labels:
        Arbitrary hashable/printable objects identifying the consumer, e.g.
        ``("client", 17, "round", 3)``.

    Returns
    -------
    int
        A 63-bit non-negative integer suitable for seeding ``default_rng``.
    """
    payload = repr((int(base_seed),) + tuple(repr(x) for x in labels)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


def new_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator` for a component."""
    return np.random.default_rng(derive_seed(base_seed, *labels))


def spawn_rngs(base_seed: int, count: int, *labels: object) -> list[np.random.Generator]:
    """Create ``count`` independent generators labelled ``labels + (index,)``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [new_rng(base_seed, *labels, i) for i in range(count)]


@dataclass
class RngRegistry:
    """Central registry handing out named, reproducible random generators.

    The registry memoises generators by name so that repeated lookups within a
    simulation return the *same* stream (preserving sequential draws), while
    different names always map to independent streams.

    Examples
    --------
    >>> reg = RngRegistry(seed=7)
    >>> a = reg.get("client", 0)
    >>> b = reg.get("client", 1)
    >>> a is reg.get("client", 0)
    True
    >>> a is b
    False
    """

    seed: int
    _streams: dict[tuple, np.random.Generator] = field(default_factory=dict, repr=False)

    def get(self, *labels: object) -> np.random.Generator:
        """Return (creating if needed) the generator registered under ``labels``."""
        key = tuple(repr(x) for x in labels)
        if key not in self._streams:
            self._streams[key] = new_rng(self.seed, *labels)
        return self._streams[key]

    def reset(self) -> None:
        """Drop all memoised streams; subsequent ``get`` calls start fresh."""
        self._streams.clear()

    def fork(self, *labels: object) -> "RngRegistry":
        """Create a child registry whose seed is derived from this one."""
        return RngRegistry(seed=derive_seed(self.seed, "fork", *labels))

    def __len__(self) -> int:
        return len(self._streams)
