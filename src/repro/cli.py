"""Command-line interface.

Run the reproduced systems without writing any Python:

.. code-block:: bash

   python -m repro.cli run fairbfl --clients 12 --rounds 8
   python -m repro.cli run fedavg  --clients 12 --rounds 8
   python -m repro.cli run fairbfl --backend process --workers 4
   python -m repro.cli run fairbfl --round-mode semi_sync --straggler-deadline 4
   python -m repro.cli run fairbfl --attacks --attack-name scaling --defense krum
   python -m repro.cli compare --clients 12 --rounds 8 --export results.csv
   python -m repro.cli sweep --scenario scenarios/example_sweep.toml
   python -m repro.cli sweep --scenario scenarios/example_sweep.toml --resume
   python -m repro.cli search --scenario scenarios/example_search.toml
   python -m repro.cli search --scenario scenarios/example_search.toml --metric delay --eta 2
   python -m repro.cli report --markdown summary.md
   python -m repro.cli serve --port 8731 --workers 2
   python -m repro.cli run fairbfl --server http://127.0.0.1:8731
   python -m repro.cli sweep --scenario scenarios/example_sweep.toml --server http://127.0.0.1:8731
   python -m repro.cli --plugins examples/custom_system.py run fedavg-momentum

``run`` executes one system and prints its per-round series and summary;
``compare`` runs every registered system on the same workload and prints the
Figure-4-style comparison; ``sweep`` expands a JSON/TOML scenario file
(single scenario, explicit list, or cartesian matrix — see
``docs/scenarios.md``) and runs every grid point; ``search`` runs the same
expansion *adaptively* (ASHA successive halving: low-fidelity rungs, top
``1/eta`` promoted, survivors resumed from stored checkpoints — see
``docs/search.md``); ``report`` summarises the runs persisted in the
content-addressed store without re-running anything; ``serve`` boots the
long-running experiment service (HTTP/JSON job queue over the run store —
``docs/serve.md``), and ``run --server URL`` / ``sweep --server URL`` turn
those subcommands into thin clients of it: the scenario is submitted to the
daemon, progress is polled, and the printed history is bit-identical to a
local run.

``sweep`` persists every completed grid point to the run store
(``results/store/`` by default, ``--store`` to relocate) as it goes, so a
killed sweep loses nothing: re-running with ``--resume`` loads the finished
cells from disk and computes only the missing ones, bit-identically to an
uncached run.  ``--no-cache`` opts out of the store entirely.  ``search``
reads *and* writes the store by default (rung checkpoints are how promotions
resume; a killed search re-run finishes bit-identically).  Both print their
engine counters at exit — runs computed, cache hits, and total simulated
round-evaluations.  Key semantics, layout, and a walkthrough live in
``docs/results.md``.

The system choices are **derived from the system registry**
(:mod:`repro.systems`): ``--plugins`` (repeatable, also the
``REPRO_PLUGINS`` environment variable) imports plugin modules that call
``register_system()`` before the parser is built, so a system registered
from outside the repository runs through ``run``/``sweep``/``compare`` with
no CLI changes.  All three subcommands drive through the stable
:mod:`repro.api` facade, so a CLI run, a benchmark, and a scenario file with
the same parameters produce identical histories.

The ``--backend`` flag selects how each round's local updates fan out
(``serial`` | ``thread`` | ``process``); results are bit-identical across
backends.  ``--round-mode`` selects the round discipline (``sync`` |
``semi_sync`` | ``async``; see ``docs/scenarios.md``) and
``--attacks``/``--attack-name``/``--defense`` configure the threat model
(``docs/threat_model.md``).  Axis flags apply only to systems whose
registered capabilities support them: ``run`` rejects an unsupported
combination with an actionable error, while ``compare`` and sweep-wide
overrides apply each flag to the systems that can honour it.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro import api
from repro.attacks.gradient_attacks import ATTACKS
from repro.core.io import save_comparison_csv, save_history_csv
from repro.core.results import ComparisonResult, summarize_history
from repro.search import PROMOTION_METRICS
from repro.fl.robust import DEFENSES
from repro.net.topology import TOPOLOGIES
from repro.runner.executor import EXECUTOR_BACKENDS
from repro.runner.scenario import ScenarioError
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.workers import ISOLATION_MODES
from repro.sim.rounds import ROUND_MODES
from repro.store import DEFAULT_STORE_ROOT, save_markdown
from repro.systems import (
    SystemRegistryError,
    filter_unsupported_axes,
    load_plugins,
    system_names,
)

__all__ = ["build_parser", "main"]

#: System-specific spec overrides the CLI applies on top of the shared flags
#: (the CLI's FedProx baseline keeps the paper's 2% straggler drop).
_PER_SYSTEM_OVERRIDES = {"fedprox": {"drop_percent": 0.02}}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing).

    The ``run`` choices and the ``compare`` roster come from the system
    registry, so plugins loaded before this call (``--plugins`` /
    ``REPRO_PLUGINS``) appear automatically.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FAIR-BFL reproduction: run the paper's systems from the command line.",
    )
    parser.add_argument(
        "--plugins",
        action="append",
        default=None,
        metavar="MODULE_OR_FILE",
        help="import a plugin module (dotted name or .py path) that registers "
        "extra systems before the subcommand runs; repeatable, also read from "
        "the REPRO_PLUGINS environment variable",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--clients", type=int, default=12, help="number of federated clients (n)")
        p.add_argument("--miners", type=int, default=2, help="number of miners (m)")
        p.add_argument("--rounds", type=int, default=8, help="communication rounds")
        p.add_argument("--samples", type=int, default=1000, help="total synthetic samples")
        p.add_argument("--participation", type=float, default=0.5, help="selection ratio lambda")
        p.add_argument("--lr", type=float, default=0.05, help="local learning rate eta")
        p.add_argument("--epochs", type=int, default=2, help="local epochs E")
        p.add_argument("--batch-size", type=int, default=10, help="local batch size B")
        p.add_argument("--scheme", default="dirichlet", choices=["iid", "shard", "dirichlet"])
        add_round_mode(p)
        p.add_argument("--attacks", action="store_true", help="enable 1-3 malicious clients per round")
        p.add_argument(
            "--attack-name",
            default="sign_flip",
            choices=list(ATTACKS),
            help="forgery the malicious clients apply (with --attacks)",
        )
        add_defense(p)
        add_net(p)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--export", default=None, help="write the per-round series to this CSV file")
        add_backend(p)

    def add_round_mode(p: argparse.ArgumentParser, *, default: str | None = "sync") -> None:
        p.add_argument(
            "--round-mode",
            default=default,
            choices=list(ROUND_MODES),
            help="round discipline: sync waits for every client, semi_sync drops "
            "stragglers at a deadline, async proceeds on a quorum with "
            "staleness-weighted late aggregation (round-mode capable systems)",
        )
        p.add_argument(
            "--straggler-deadline",
            type=float,
            default=6.0,
            help="semi_sync upload-window deadline in simulated seconds",
        )
        p.add_argument(
            "--async-quorum",
            type=float,
            default=0.5,
            help="async mode: arrival fraction that closes the upload window",
        )
        p.add_argument(
            "--staleness-decay",
            type=float,
            default=0.5,
            help="async mode: exponent of the (1+staleness)^-decay weight on late updates",
        )

    def add_defense(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--defense",
            default="none",
            help="robust-aggregation defense the gradient matrix passes through "
            f"before aggregation: {', '.join(DEFENSES)}, or a '+'-chained "
            "pipeline such as norm_clip+krum (see docs/threat_model.md)",
        )
        p.add_argument(
            "--defense-fraction",
            type=float,
            default=0.2,
            help="adversary fraction the defense is sized for, in [0, 0.5)",
        )

    def add_net(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--topology",
            default="global",
            choices=list(TOPOLOGIES),
            help="committee network shape: 'global' keeps the replicated "
            "single-network path, other values give each miner its own peer "
            "set, mempool and chain view over seeded gossip (net-capable "
            "systems; docs/scenarios.md)",
        )
        p.add_argument(
            "--peer-k",
            type=int,
            default=2,
            help="peers drawn per node under --topology random_k",
        )
        p.add_argument(
            "--partition",
            default="none",
            help="timed network splits, e.g. '2-4:0|1' splits nodes 0 and 1 "
            "apart for rounds 2-4 (requires a non-global --topology)",
        )
        p.add_argument(
            "--churn",
            default="none",
            help="node departure/arrival trace, e.g. '1:-0;3:+0' takes node 0 "
            "offline for rounds 1-2 (requires a non-global --topology)",
        )

    def add_backend(p: argparse.ArgumentParser, *, backend_default: str | None = "serial") -> None:
        p.add_argument(
            "--backend",
            default=backend_default,
            choices=list(EXECUTOR_BACKENDS),
            help="how local updates fan out over clients (results are identical)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker count for the thread/process backends (default: CPU count)",
        )

    def add_server(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--server",
            default=None,
            metavar="URL",
            help="submit to a running experiment server (repro serve) instead of "
            "computing locally; histories are bit-identical either way",
        )

    run_p = sub.add_parser("run", help="run a single registered system")
    run_p.add_argument("system", choices=list(system_names()))
    add_common(run_p)
    add_server(run_p)

    cmp_p = sub.add_parser("compare", help="run every registered system on the same workload")
    add_common(cmp_p)

    sweep_p = sub.add_parser("sweep", help="run every scenario in a JSON/TOML scenario file")
    sweep_p.add_argument(
        "--scenario",
        required=True,
        action="append",
        help="scenario file (.json or .toml); repeatable",
    )
    sweep_p.add_argument("--export", default=None, help="write the sweep summary to this CSV file")
    # For sweep the flags are *overrides* of what the scenario file says, so
    # their defaults must be distinguishable from an explicit value.
    add_backend(sweep_p, backend_default=None)
    sweep_p.add_argument(
        "--round-mode",
        default=None,
        choices=list(ROUND_MODES),
        help="override the round discipline of every round-mode capable scenario in the sweep",
    )
    sweep_p.add_argument(
        "--defense",
        default=None,
        help="override the robust-aggregation defense of every defense-capable scenario in the sweep",
    )
    sweep_p.add_argument(
        "--store",
        default=str(DEFAULT_STORE_ROOT),
        metavar="DIR",
        help="content-addressed run store the sweep persists to (docs/results.md)",
    )
    cache_group = sweep_p.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--resume",
        action="store_true",
        help="load grid points already in the run store and compute only the "
        "missing ones (bit-identical to an uncached sweep)",
    )
    cache_group.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the run store; recompute everything",
    )
    add_server(sweep_p)

    search_p = sub.add_parser(
        "search",
        help="adaptively search a scenario cohort with successive halving (ASHA)",
    )
    search_p.add_argument(
        "--scenario",
        required=True,
        action="append",
        help="scenario file (.json or .toml) whose expansion is the trial cohort; repeatable",
    )
    search_p.add_argument(
        "--metric",
        default="final_accuracy",
        choices=list(PROMOTION_METRICS),
        help="promotion metric trials are ranked by at each rung (docs/search.md)",
    )
    search_p.add_argument(
        "--eta",
        type=int,
        default=3,
        help="halving rate: top 1/eta of each rung is promoted, fidelity grows by eta",
    )
    search_p.add_argument(
        "--min-rounds",
        type=int,
        default=None,
        help="first rung's fidelity in rounds (default: ceil(max_rounds / eta^2))",
    )
    search_p.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        help="final rung's fidelity (default: the largest num_rounds in the cohort)",
    )
    search_p.add_argument(
        "--export", default=None, help="write the final leaderboard to this CSV file"
    )
    add_backend(search_p, backend_default=None)
    search_p.add_argument(
        "--store",
        default=str(DEFAULT_STORE_ROOT),
        metavar="DIR",
        help="content-addressed run store rung records and checkpoints live in "
        "(the resume mechanism — docs/search.md)",
    )
    search_p.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the run store; every rung recomputes from round zero",
    )

    report_p = sub.add_parser(
        "report", help="summarise the runs persisted in the content-addressed store"
    )
    report_p.add_argument(
        "--store",
        default=str(DEFAULT_STORE_ROOT),
        metavar="DIR",
        help="run store directory to summarise (default: results/store)",
    )
    report_p.add_argument(
        "--system",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the report to this system; repeatable",
    )
    report_p.add_argument(
        "--export", default=None, help="write the summary table to this CSV file"
    )
    report_p.add_argument(
        "--markdown", default=None, help="write the summary as a Markdown table to this file"
    )

    serve_p = sub.add_parser(
        "serve",
        help="serve experiments over HTTP: job queue, worker pool, dedup (docs/serve.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument(
        "--port", type=int, default=8731, help="bind port (0 picks an ephemeral port)"
    )
    serve_p.add_argument(
        "--workers", type=int, default=2, help="workers draining the job queue"
    )
    serve_p.add_argument(
        "--isolation",
        default="thread",
        choices=list(ISOLATION_MODES),
        help="job execution: inline in a worker thread, or one supervised "
        "child process per job (crash-isolated, retried)",
    )
    serve_p.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="requeues granted to a job whose worker process died (process isolation)",
    )
    serve_p.add_argument(
        "--store",
        default=str(DEFAULT_STORE_ROOT),
        metavar="DIR",
        help="content-addressed run store results are served from and persisted to",
    )
    return parser


def _is_plugins_flag(token: str) -> bool:
    """True for ``--plugins`` and the abbreviations argparse would accept.

    argparse prefix-matches long options, so ``--plugin`` (or ``--pl``)
    reaches the same action; the pre-scan must agree or an abbreviated flag
    would parse fine yet never load the plugin.  At the top level only
    ``--plugins`` starts with ``--p``, so any such prefix is unambiguous.
    """
    return token.startswith("--p") and "--plugins".startswith(token)


def _plugin_entries(argv: list[str]) -> list[str]:
    """Pre-scan argv for --plugins values (needed before the parser exists).

    Plugins must load before ``build_parser()`` so registry-derived choices
    include plugin systems; argparse itself still consumes the flag normally.
    """
    entries: list[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if not arg.startswith("-"):
            # The subcommand: argparse only accepts the top-level --plugins
            # *before* it, and past this point the same abbreviations mean
            # subcommand flags (--p is run's --participation).
            break
        flag, sep, value = arg.partition("=")
        if _is_plugins_flag(flag):
            if sep:
                entries.append(value)
            elif i + 1 < len(argv):
                entries.append(argv[i + 1])
                i += 2
                continue
        i += 1
    return entries


def _fields_from_args(args: argparse.Namespace) -> dict:
    """Translate the shared run/compare flags into scenario fields."""
    return dict(
        num_clients=args.clients,
        miners=args.miners,
        num_rounds=args.rounds,
        num_samples=args.samples,
        participation=args.participation,
        learning_rate=args.lr,
        epochs=args.epochs,
        batch_size=args.batch_size,
        scheme=args.scheme,
        round_mode=args.round_mode,
        straggler_deadline=args.straggler_deadline,
        async_quorum=args.async_quorum,
        staleness_decay=args.staleness_decay,
        attacks=args.attacks,
        attack_name=args.attack_name,
        defense=args.defense,
        defense_fraction=args.defense_fraction,
        topology=args.topology,
        peer_k=args.peer_k,
        partition=args.partition,
        churn=args.churn,
        seed=args.seed,
        backend=args.backend,
        model_name="logreg",
    )


def _print_history(name: str, hist) -> None:
    print(f"== {name} ==")
    print(f"{'round':>5}  {'delay (s)':>10}  {'accuracy':>9}")
    for record in hist.rounds:
        print(f"{record.round_index:>5}  {record.delay:>10.2f}  {record.accuracy:>9.3f}")
    summary = summarize_history(hist)
    print(
        f"summary: avg delay {summary['average_delay']:.2f} s, "
        f"avg accuracy {summary['average_accuracy']:.3f}, "
        f"final accuracy {summary['final_accuracy']:.3f}, "
        f"total simulated time {summary['total_time']:.1f} s"
    )


def _remote_sweep(server_url: str, sources, overrides) -> tuple[ComparisonResult, dict]:
    """Run a sweep as a thin client of a running experiment server.

    The scenario files expand locally (same capability-gated override rules
    as a local sweep), every grid point is submitted up front so the server
    pipelines them across its workers, and the summaries are tabulated from
    the returned full-fidelity records.  Returns the table plus the server's
    healthz payload (for the counters line).
    """
    client = ServeClient(server_url)
    specs = []
    for source in sources:
        specs.extend(api.load_scenario(source))
    if overrides:
        applied = []
        for spec in specs:
            filtered = filter_unsupported_axes(spec.system, overrides)
            applied.append(spec.with_overrides(**filtered) if filtered else spec)
        specs = applied
    jobs = [client.submit(spec)[0] for spec in specs]
    table = ComparisonResult(
        title=f"Scenario sweep ({len(specs)} scenario{'s' if len(specs) != 1 else ''}, remote)",
        columns=["scenario", "system", "rounds", "avg_delay_s", "avg_accuracy", "final_accuracy"],
    )
    for spec, job in zip(specs, jobs):
        final = client.wait(job["job_id"], timeout=600.0)
        if final["state"] != "done":
            raise ServeClientError(
                f"job {final['job_id']} ({final['name']}) finished as "
                f"{final['state']}: {final.get('error') or 'no error recorded'}"
            )
        summary = summarize_history(client.history(final["result_key"]))
        table.add_row(
            spec.name,
            spec.system,
            summary["rounds"],
            summary["average_delay"],
            summary["average_accuracy"],
            summary["final_accuracy"],
        )
    return table, client.health()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        load_plugins(_plugin_entries(argv), include_env=True)
    except SystemRegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    args = build_parser().parse_args(argv)
    engine = api.ExperimentEngine()

    if args.command == "serve":
        server = api.ReproServer(
            args.host,
            args.port,
            store=api.RunStore(args.store),
            workers=args.workers,
            isolation=args.isolation,
            max_retries=args.max_retries,
        )
        # SIGTERM gets the same clean shutdown as Ctrl-C: backgrounded shells
        # (and CI) often can't deliver SIGINT to a non-interactive child.
        signal.signal(signal.SIGTERM, signal.default_int_handler)
        print(
            f"experiment server listening on {server.url} "
            f"({args.workers} {args.isolation} worker(s), store {args.store})",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", flush=True)
        finally:
            server.close()
        return 0

    if args.command == "run":
        fields = _fields_from_args(args)
        fields["name"] = args.system
        fields["max_workers"] = args.workers
        fields.update(_PER_SYSTEM_OVERRIDES.get(args.system, {}))
        try:
            if args.server:
                hist = api.submit(args.system, server=args.server, **fields)
            else:
                hist = api.run(args.system, engine=engine, **fields)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ServeClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        _print_history(args.system, hist)
        if args.export:
            path = save_history_csv(hist, args.export)
            print(f"per-round series written to {path}")
        return 0

    if args.command == "compare":
        fields = _fields_from_args(args)
        fields["max_workers"] = args.workers
        try:
            table, _results = api.compare(
                engine=engine, per_system=_PER_SYSTEM_OVERRIDES, **fields
            )
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(table.to_text())
        if args.export:
            path = save_comparison_csv(table, args.export)
            print(f"comparison written to {path}")
        return 0

    if args.command == "report":
        store = api.RunStore(args.store)
        table = api.report(store, systems=args.system)
        if not table.rows:
            wanted = f" for system(s) {', '.join(args.system)}" if args.system else ""
            print(f"error: no stored runs{wanted} under {args.store}", file=sys.stderr)
            return 1
        print(table.to_text())
        if args.export:
            path = save_comparison_csv(table, args.export)
            print(f"report written to {path}")
        if args.markdown:
            path = save_markdown(table, args.markdown)
            print(f"markdown report written to {path}")
        return 0

    if args.command == "search":
        overrides = {}
        if args.backend is not None:
            overrides["backend"] = args.backend
        if args.workers is not None:
            overrides["max_workers"] = args.workers
        # Unlike sweep, the store is read *and* written by default: rung
        # checkpoints are how promotions resume, and a killed search re-run
        # finishes bit-identically from whatever rungs already exist.
        if not args.no_cache:
            engine = api.ExperimentEngine(store=api.RunStore(args.store), reuse_cached=True)
        try:
            result = api.search(
                *args.scenario,
                engine=engine,
                metric=args.metric,
                eta=args.eta,
                min_rounds=args.min_rounds,
                max_rounds=args.max_rounds,
                overrides=overrides or None,
            )
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rung_text = " -> ".join(str(r) for r in result.rungs)
        print(
            f"ASHA search: metric {result.metric} ({result.mode}), "
            f"eta {result.eta}, rungs {rung_text}"
        )
        for rung in result.rung_results:
            if rung.promoted:
                print(
                    f"rung {rung.rounds:>4} rounds: {len(rung.trials)} trials, "
                    f"promoted {len(rung.promoted)}: {', '.join(rung.promoted)}"
                )
            else:
                print(f"rung {rung.rounds:>4} rounds: {len(rung.trials)} trials (final)")
        table = ComparisonResult(
            title="Search leaderboard",
            columns=["rank", "scenario", "system", "rounds", result.metric],
        )
        for rank, trial in enumerate(result.leaderboard, start=1):
            table.add_row(rank, trial.name, trial.spec.system, trial.rounds, trial.score)
        print(table.to_text())
        print(
            f"best: {result.best.name} "
            f"({result.metric} {result.best.score:.3f} at {result.best.rounds} rounds)"
        )
        print(
            f"search budget: {result.round_evaluations} round-evaluations vs "
            f"{result.grid_round_evaluations} exhaustive grid "
            f"({result.evaluation_fraction:.0%})"
        )
        if engine.store is not None:
            print(
                f"run store {args.store}: {engine.cache_hits} loaded, "
                f"{engine.runs_computed} computed, "
                f"{engine.round_evaluations} round-evaluations simulated"
            )
        if args.export:
            path = save_comparison_csv(table, args.export)
            print(f"leaderboard written to {path}")
        return 0

    # sweep
    # Apply only the flags the user actually passed; a scenario file's own
    # backend/max_workers settings are otherwise preserved, and axis overrides
    # reach only the scenarios whose systems support the axis.
    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.workers is not None:
        overrides["max_workers"] = args.workers
    if args.round_mode is not None:
        overrides["round_mode"] = args.round_mode
    if args.defense is not None:
        overrides["defense"] = args.defense
    if args.server:
        try:
            table, health = _remote_sweep(args.server, args.scenario, overrides or None)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ServeClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(table.to_text())
        engine_counts = health["engine"]
        print(
            f"server {args.server}: {engine_counts['cache_hits']} loaded, "
            f"{engine_counts['runs_computed']} computed, "
            f"{health['readthrough_hits']} served read-through, "
            f"{health['singleflight_hits']} deduped in flight"
        )
        if args.export:
            path = save_comparison_csv(table, args.export)
            print(f"sweep summary written to {path}")
        return 0
    # The store is write-through by default (every completed grid point is
    # persisted as the sweep goes, so a killed sweep loses nothing); --resume
    # additionally *reads* it, and --no-cache disables it entirely.
    if not args.no_cache:
        engine = api.ExperimentEngine(store=api.RunStore(args.store), reuse_cached=args.resume)
    try:
        table, _results = api.sweep(
            *args.scenario, engine=engine, overrides=overrides or None
        )
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(table.to_text())
    if engine.store is not None:
        hint = "" if args.resume else " (re-run with --resume to reuse them)"
        print(
            f"run store {args.store}: {engine.cache_hits} loaded, "
            f"{engine.runs_computed} computed, "
            f"{engine.round_evaluations} round-evaluations simulated{hint}"
        )
    if args.export:
        path = save_comparison_csv(table, args.export)
        print(f"sweep summary written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
