"""Command-line interface.

Run the reproduced systems without writing any Python:

.. code-block:: bash

   python -m repro.cli run fairbfl --clients 12 --rounds 8
   python -m repro.cli run fedavg  --clients 12 --rounds 8
   python -m repro.cli run blockchain --clients 100 --rounds 10
   python -m repro.cli compare --clients 12 --rounds 8 --export results.csv

``run`` executes one system and prints its per-round series and summary;
``compare`` runs FAIR-BFL, FAIR-BFL(discard), FedAvg, FedProx, and the vanilla
blockchain on the same workload and prints the Figure-4-style comparison.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.experiment import (
    ExperimentSuite,
    run_fairbfl,
    run_fedavg,
    run_fedprox,
    run_vanilla_blockchain,
)
from repro.core.io import save_comparison_csv, save_history_csv
from repro.core.results import ComparisonResult, summarize_history
from repro.fl.client import LocalTrainingConfig

__all__ = ["build_parser", "main"]

SYSTEMS = ("fairbfl", "fairbfl-discard", "fedavg", "fedprox", "blockchain")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FAIR-BFL reproduction: run the paper's systems from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--clients", type=int, default=12, help="number of federated clients (n)")
        p.add_argument("--miners", type=int, default=2, help="number of miners (m)")
        p.add_argument("--rounds", type=int, default=8, help="communication rounds")
        p.add_argument("--samples", type=int, default=1000, help="total synthetic samples")
        p.add_argument("--participation", type=float, default=0.5, help="selection ratio lambda")
        p.add_argument("--lr", type=float, default=0.05, help="local learning rate eta")
        p.add_argument("--epochs", type=int, default=2, help="local epochs E")
        p.add_argument("--batch-size", type=int, default=10, help="local batch size B")
        p.add_argument("--scheme", default="dirichlet", choices=["iid", "shard", "dirichlet"])
        p.add_argument("--attacks", action="store_true", help="enable 1-3 malicious clients per round")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--export", default=None, help="write the per-round series to this CSV file")

    run_p = sub.add_parser("run", help="run a single system")
    run_p.add_argument("system", choices=SYSTEMS)
    add_common(run_p)

    cmp_p = sub.add_parser("compare", help="run all systems on the same workload")
    add_common(cmp_p)
    return parser


def _suite_from_args(args: argparse.Namespace) -> ExperimentSuite:
    return ExperimentSuite(
        num_clients=args.clients,
        num_samples=args.samples,
        num_rounds=args.rounds,
        participation_fraction=args.participation,
        scheme=args.scheme,
        model_name="logreg",
        local=LocalTrainingConfig(
            epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.lr
        ),
        seed=args.seed,
    )


def _run_system(name: str, suite: ExperimentSuite, *, attacks: bool, miners: int):
    if name == "fairbfl":
        _, hist = run_fairbfl(
            suite.dataset(),
            config=suite.fairbfl_config(num_miners=miners, enable_attacks=attacks),
        )
    elif name == "fairbfl-discard":
        _, hist = run_fairbfl(
            suite.dataset(),
            config=suite.fairbfl_config(
                num_miners=miners, strategy="discard", enable_attacks=attacks
            ),
        )
    elif name == "fedavg":
        _, hist = run_fedavg(suite.dataset(), config=suite.fedavg_config())
    elif name == "fedprox":
        _, hist = run_fedprox(suite.dataset(), config=suite.fedprox_config(drop_percent=0.02))
    elif name == "blockchain":
        _, hist = run_vanilla_blockchain(
            config=suite.blockchain_config(num_workers=suite.num_clients, num_miners=miners)
        )
    else:  # pragma: no cover - argparse restricts the choices
        raise ValueError(f"unknown system {name!r}")
    return hist


def _print_history(name: str, hist) -> None:
    print(f"== {name} ==")
    print(f"{'round':>5}  {'delay (s)':>10}  {'accuracy':>9}")
    for record in hist.rounds:
        print(f"{record.round_index:>5}  {record.delay:>10.2f}  {record.accuracy:>9.3f}")
    summary = summarize_history(hist)
    print(
        f"summary: avg delay {summary['average_delay']:.2f} s, "
        f"avg accuracy {summary['average_accuracy']:.3f}, "
        f"final accuracy {summary['final_accuracy']:.3f}, "
        f"total simulated time {summary['total_time']:.1f} s"
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    suite = _suite_from_args(args)

    if args.command == "run":
        hist = _run_system(args.system, suite, attacks=args.attacks, miners=args.miners)
        _print_history(args.system, hist)
        if args.export:
            path = save_history_csv(hist, args.export)
            print(f"per-round series written to {path}")
        return 0

    # compare
    table = ComparisonResult(
        title="System comparison (same workload, same seed)",
        columns=["system", "avg_delay_s", "avg_accuracy", "final_accuracy"],
    )
    for name in SYSTEMS:
        hist = _run_system(name, suite, attacks=args.attacks, miners=args.miners)
        summary = summarize_history(hist)
        table.add_row(
            name, summary["average_delay"], summary["average_accuracy"], summary["final_accuracy"]
        )
    print(table.to_text())
    if args.export:
        path = save_comparison_csv(table, args.export)
        print(f"comparison written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
