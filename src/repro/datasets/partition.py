"""Partitioning a dataset across federated clients.

The paper assigns data "following the non-IID dynamics" by default
(Section 5.1) and additionally reports an IID variant for Table 2.  We provide
the three standard schemes used in the FL literature:

* :func:`iid_partition` — uniform random split;
* :func:`shard_partition` — label-sorted shards, the classic non-IID scheme of
  the FedAvg paper (each client holds a small number of classes);
* :func:`dirichlet_partition` — label-distribution skew controlled by a
  Dirichlet concentration parameter ``alpha``.

All partitioners return a list of index arrays (one per client) covering the
dataset without overlap, and all draw randomness from an explicit generator.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic_mnist import SyntheticMNIST

__all__ = [
    "iid_partition",
    "shard_partition",
    "dirichlet_partition",
    "partition_dataset",
]


def _check_args(num_samples: int, num_clients: int) -> None:
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive, got {num_clients}")
    if num_samples < num_clients:
        raise ValueError(
            f"cannot partition {num_samples} samples across {num_clients} clients "
            f"(each client needs at least one sample)"
        )


def iid_partition(
    labels: np.ndarray, num_clients: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Uniform random split of all sample indices into ``num_clients`` groups."""
    labels = np.asarray(labels)
    _check_args(labels.shape[0], num_clients)
    perm = rng.permutation(labels.shape[0])
    return [np.sort(chunk).astype(np.int64) for chunk in np.array_split(perm, num_clients)]


def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    rng: np.random.Generator,
    *,
    shards_per_client: int = 2,
) -> list[np.ndarray]:
    """Label-sorted shard partition (FedAvg-style pathological non-IID).

    The samples are sorted by label, cut into ``num_clients * shards_per_client``
    contiguous shards, and each client receives ``shards_per_client`` random
    shards — so a client typically sees only a couple of classes.
    """
    labels = np.asarray(labels)
    _check_args(labels.shape[0], num_clients)
    if shards_per_client <= 0:
        raise ValueError(f"shards_per_client must be positive, got {shards_per_client}")
    num_shards = num_clients * shards_per_client
    if num_shards > labels.shape[0]:
        raise ValueError(
            f"need at least {num_shards} samples for {num_clients} clients x "
            f"{shards_per_client} shards, got {labels.shape[0]}"
        )
    sorted_idx = np.argsort(labels, kind="stable")
    shards = np.array_split(sorted_idx, num_shards)
    order = rng.permutation(num_shards)
    partitions: list[np.ndarray] = []
    for c in range(num_clients):
        shard_ids = order[c * shards_per_client : (c + 1) * shards_per_client]
        idx = np.concatenate([shards[s] for s in shard_ids])
        partitions.append(np.sort(idx).astype(np.int64))
    return partitions


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    rng: np.random.Generator,
    *,
    alpha: float = 0.5,
    min_samples_per_client: int = 1,
) -> list[np.ndarray]:
    """Label-distribution-skew partition with Dirichlet concentration ``alpha``.

    Smaller ``alpha`` means more skew (each client dominated by few classes);
    ``alpha -> inf`` approaches IID.  The partition is re-sampled (bounded
    number of retries) until every client has at least
    ``min_samples_per_client`` samples.
    """
    labels = np.asarray(labels)
    _check_args(labels.shape[0], num_clients)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if min_samples_per_client < 1:
        raise ValueError(
            f"min_samples_per_client must be >= 1, got {min_samples_per_client}"
        )
    classes = np.unique(labels)
    for _attempt in range(100):
        client_indices: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
        for cls in classes:
            cls_idx = np.flatnonzero(labels == cls)
            rng.shuffle(cls_idx)
            weights = rng.dirichlet(np.full(num_clients, alpha))
            # Cumulative proportions -> split points for this class's samples.
            split_points = (np.cumsum(weights)[:-1] * cls_idx.shape[0]).astype(np.int64)
            for client, chunk in enumerate(np.split(cls_idx, split_points)):
                client_indices[client].append(chunk)
        partitions = [
            np.sort(np.concatenate(chunks)).astype(np.int64) if chunks else np.zeros(0, np.int64)
            for chunks in client_indices
        ]
        if all(p.shape[0] >= min_samples_per_client for p in partitions):
            return partitions
    raise RuntimeError(
        "dirichlet_partition failed to produce a partition where every client "
        f"has >= {min_samples_per_client} samples after 100 attempts; "
        "increase alpha or the dataset size"
    )


def partition_dataset(
    dataset: SyntheticMNIST,
    num_clients: int,
    rng: np.random.Generator,
    *,
    scheme: str = "shard",
    shards_per_client: int = 2,
    alpha: float = 0.5,
) -> list[np.ndarray]:
    """Partition ``dataset`` by the named scheme and return per-client index arrays.

    Parameters
    ----------
    scheme:
        ``"iid"``, ``"shard"`` (default, the paper's non-IID setting), or
        ``"dirichlet"``.
    """
    key = scheme.strip().lower()
    if key == "iid":
        return iid_partition(dataset.labels, num_clients, rng)
    if key in {"shard", "non-iid", "noniid"}:
        return shard_partition(
            dataset.labels, num_clients, rng, shards_per_client=shards_per_client
        )
    if key == "dirichlet":
        return dirichlet_partition(dataset.labels, num_clients, rng, alpha=alpha)
    raise ValueError(
        f"unknown partition scheme {scheme!r}; expected 'iid', 'shard', or 'dirichlet'"
    )
