"""Federated dataset containers.

A :class:`FederatedDataset` owns the full dataset plus a per-client partition
and a shared held-out test set.  Clients see their shard through a
:class:`ClientDataset`, which also provides the verification split used to
compute the per-client accuracy that the paper averages every round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.partition import partition_dataset
from repro.datasets.synthetic_mnist import SyntheticMNIST

__all__ = ["ClientDataset", "FederatedDataset", "train_test_split", "inject_label_noise"]


def train_test_split(
    dataset: SyntheticMNIST,
    rng: np.random.Generator,
    *,
    test_fraction: float = 0.2,
) -> tuple[SyntheticMNIST, SyntheticMNIST]:
    """Split ``dataset`` into train/test subsets (shuffled, disjoint)."""
    if not (0.0 < test_fraction < 1.0):
        raise ValueError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    n = len(dataset)
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError(
            f"test_fraction={test_fraction} leaves no training data for {n} samples"
        )
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)


@dataclass
class ClientDataset:
    """The data shard held by one federated client.

    Attributes
    ----------
    client_id:
        The index of the owning client.
    images, labels:
        Local training data.
    val_images, val_labels:
        Local verification split (used for the per-client accuracy the paper
        averages into "average accuracy").
    """

    client_id: int
    images: np.ndarray
    labels: np.ndarray
    val_images: np.ndarray
    val_labels: np.ndarray

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.val_images = np.asarray(self.val_images, dtype=np.float64)
        self.val_labels = np.asarray(self.val_labels, dtype=np.int64)
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels must have the same number of rows")
        if self.val_images.shape[0] != self.val_labels.shape[0]:
            raise ValueError("val_images and val_labels must have the same number of rows")
        if self.images.shape[0] == 0:
            raise ValueError(f"client {self.client_id} received an empty training shard")

    @property
    def num_samples(self) -> int:
        """Number of local training samples (the self-reported 'data size')."""
        return int(self.images.shape[0])

    def label_distribution(self, num_classes: int = 10) -> np.ndarray:
        """Normalised label histogram of the local training data."""
        counts = np.bincount(self.labels, minlength=num_classes).astype(np.float64)
        total = counts.sum()
        return counts / total if total > 0 else counts


@dataclass
class FederatedDataset:
    """A dataset partitioned across ``num_clients`` clients plus a global test set."""

    clients: list[ClientDataset]
    test_images: np.ndarray
    test_labels: np.ndarray
    scheme: str = "shard"
    _partition_sizes: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.clients:
            raise ValueError("FederatedDataset requires at least one client shard")
        self.test_images = np.asarray(self.test_images, dtype=np.float64)
        self.test_labels = np.asarray(self.test_labels, dtype=np.int64)
        self._partition_sizes = [c.num_samples for c in self.clients]

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def partition_sizes(self) -> list[int]:
        """Training-sample count per client."""
        return list(self._partition_sizes)

    def client(self, client_id: int) -> ClientDataset:
        """Return the shard of ``client_id``."""
        if not (0 <= client_id < len(self.clients)):
            raise IndexError(
                f"client_id must lie in [0, {len(self.clients)}), got {client_id}"
            )
        return self.clients[client_id]

    @classmethod
    def from_dataset(
        cls,
        dataset: SyntheticMNIST,
        num_clients: int,
        rng: np.random.Generator,
        *,
        scheme: str = "shard",
        shards_per_client: int = 2,
        alpha: float = 0.5,
        test_fraction: float = 0.15,
        client_val_fraction: float = 0.2,
    ) -> "FederatedDataset":
        """Build a federated dataset from a flat dataset.

        The flat dataset is first split into a global train/test pair; the
        training part is then partitioned across clients with the requested
        scheme, and each client shard is further split into local train /
        verification subsets.
        """
        if not (0.0 < client_val_fraction < 1.0):
            raise ValueError(
                f"client_val_fraction must lie in (0, 1), got {client_val_fraction}"
            )
        train, test = train_test_split(dataset, rng, test_fraction=test_fraction)
        partitions = partition_dataset(
            train,
            num_clients,
            rng,
            scheme=scheme,
            shards_per_client=shards_per_client,
            alpha=alpha,
        )
        clients: list[ClientDataset] = []
        for cid, idx in enumerate(partitions):
            shard_images = train.images[idx]
            shard_labels = train.labels[idx]
            n = idx.shape[0]
            n_val = max(1, int(round(n * client_val_fraction)))
            if n_val >= n:
                n_val = max(1, n - 1)
            perm = rng.permutation(n)
            val_sel = perm[:n_val]
            train_sel = perm[n_val:]
            clients.append(
                ClientDataset(
                    client_id=cid,
                    images=shard_images[train_sel],
                    labels=shard_labels[train_sel],
                    val_images=shard_images[val_sel],
                    val_labels=shard_labels[val_sel],
                )
            )
        return cls(
            clients=clients,
            test_images=test.images,
            test_labels=test.labels,
            scheme=scheme,
        )


def inject_label_noise(
    dataset: FederatedDataset,
    rng: np.random.Generator,
    *,
    client_fraction: float = 0.25,
    noise_level: float = 0.6,
    num_classes: int = 10,
) -> list[int]:
    """Turn a fraction of clients into low-quality contributors via label noise.

    The paper's cost-effectiveness argument (Section 5.3) is that discarding
    low-contributing clients "reduces the noise from low-quality data".  This
    helper creates exactly that population: ``client_fraction`` of the clients
    have ``noise_level`` of their *training* labels replaced with uniformly
    random classes (their verification splits are left clean so accuracy
    measurements stay meaningful).

    Returns the IDs of the corrupted clients (sorted).
    """
    if not (0.0 <= client_fraction <= 1.0):
        raise ValueError(f"client_fraction must lie in [0, 1], got {client_fraction}")
    if not (0.0 <= noise_level <= 1.0):
        raise ValueError(f"noise_level must lie in [0, 1], got {noise_level}")
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    num_noisy = int(round(client_fraction * dataset.num_clients))
    if num_noisy == 0:
        return []
    noisy_ids = sorted(
        int(c) for c in rng.choice(dataset.num_clients, size=num_noisy, replace=False)
    )
    for cid in noisy_ids:
        shard = dataset.clients[cid]
        n = shard.labels.shape[0]
        k = int(round(noise_level * n))
        if k == 0:
            continue
        idx = rng.choice(n, size=k, replace=False)
        shard.labels[idx] = rng.integers(0, num_classes, size=k)
    return noisy_ids
