"""Dataset substrate: synthetic MNIST, federated partitioning, batch iteration.

The paper evaluates on MNIST partitioned across ``n`` clients, non-IID by
default.  No dataset download is possible in this environment, so
:mod:`repro.datasets.synthetic_mnist` generates a deterministic 10-class
28x28 image dataset whose difficulty and class structure play the same role
(see DESIGN.md, substitution table).  Partitioning (IID / shard non-IID /
Dirichlet non-IID) and the per-client dataset/batching machinery are identical
to what a real MNIST pipeline would use.
"""

from repro.datasets.federated import (
    ClientDataset,
    FederatedDataset,
    inject_label_noise,
    train_test_split,
)
from repro.datasets.loaders import BatchIterator, minibatches
from repro.datasets.partition import (
    dirichlet_partition,
    iid_partition,
    partition_dataset,
    shard_partition,
)
from repro.datasets.synthetic_mnist import SyntheticMNIST, load_synthetic_mnist

__all__ = [
    "ClientDataset",
    "FederatedDataset",
    "inject_label_noise",
    "train_test_split",
    "BatchIterator",
    "minibatches",
    "dirichlet_partition",
    "iid_partition",
    "partition_dataset",
    "shard_partition",
    "SyntheticMNIST",
    "load_synthetic_mnist",
]
