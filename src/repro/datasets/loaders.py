"""Mini-batch iteration.

Algorithm 1 (line 8) splits the client's shard into batches of size ``B``;
these helpers implement that split with optional shuffling, dropping nothing
(the final short batch is kept, matching the ``D_i / B`` accounting of
Section 4.1).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["minibatches", "BatchIterator"]


def minibatches(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(image_batch, label_batch)`` pairs covering the data once.

    Parameters
    ----------
    batch_size:
        Positive batch size ``B``; the last batch may be smaller.
    rng:
        If given, the sample order is shuffled before batching.
    """
    images = np.asarray(images)
    labels = np.asarray(labels)
    if images.shape[0] != labels.shape[0]:
        raise ValueError("images and labels must have the same number of rows")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    n = images.shape[0]
    order = rng.permutation(n) if rng is not None else np.arange(n)
    for start in range(0, n, batch_size):
        sel = order[start : start + batch_size]
        yield images[sel], labels[sel]


class BatchIterator:
    """Reusable epoch iterator over a fixed dataset.

    Unlike the one-shot :func:`minibatches` generator, a ``BatchIterator`` is
    constructed once per client and re-used every epoch/round, keeping the
    shuffling stream attached to the client's own RNG.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        rng: np.random.Generator | None = None,
        *,
        shuffle: bool = True,
    ) -> None:
        self.images = np.asarray(images)
        self.labels = np.asarray(labels)
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels must have the same number of rows")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = int(batch_size)
        self.rng = rng
        self.shuffle = bool(shuffle) and rng is not None

    @property
    def num_samples(self) -> int:
        return int(self.images.shape[0])

    @property
    def batches_per_epoch(self) -> int:
        """Number of batches per epoch, i.e. ``ceil(D_i / B)``."""
        return int(np.ceil(self.num_samples / self.batch_size))

    def epoch(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate once over the data in (possibly shuffled) batches."""
        return minibatches(
            self.images,
            self.labels,
            self.batch_size,
            self.rng if self.shuffle else None,
        )

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        return self.epoch()
