"""Deterministic synthetic MNIST-like dataset.

Why synthetic?  The paper's experiments use MNIST, but this environment has no
network access.  The generator below produces a 10-class, 28x28 grayscale
image dataset with the properties that matter to FAIR-BFL's evaluation:

* classes are separable but overlapping, so accuracy climbs gradually over
  communication rounds rather than saturating immediately;
* samples of a class share a spatial structure ("digit prototype" built from a
  class-specific set of strokes) plus per-sample deformation and pixel noise,
  so non-IID partitioning by label produces genuinely skewed client gradients;
* the generator is fully deterministic given a seed, so accuracy curves in
  EXPERIMENTS.md are replayable.

The public API mirrors a conventional MNIST loader: ``images`` with shape
``(num_samples, 784)`` scaled to ``[0, 1]`` and integer ``labels``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["SyntheticMNIST", "load_synthetic_mnist"]

IMAGE_SIDE = 28
IMAGE_PIXELS = IMAGE_SIDE * IMAGE_SIDE
NUM_CLASSES = 10


def _class_prototype(label: int, rng: np.random.Generator) -> np.ndarray:
    """Build a smooth 28x28 prototype image for ``label``.

    Each class gets a distinct superposition of oriented Gaussian ridges and
    blobs, giving classes a stable spatial identity analogous to digit shapes.
    """
    ys, xs = np.mgrid[0:IMAGE_SIDE, 0:IMAGE_SIDE]
    ys = ys / (IMAGE_SIDE - 1)
    xs = xs / (IMAGE_SIDE - 1)
    proto = np.zeros((IMAGE_SIDE, IMAGE_SIDE), dtype=np.float64)
    num_strokes = 3 + (label % 3)
    for _ in range(num_strokes):
        cx, cy = rng.uniform(0.2, 0.8, size=2)
        angle = rng.uniform(0.0, np.pi)
        length = rng.uniform(0.2, 0.45)
        width = rng.uniform(0.03, 0.08)
        # Distance from each pixel to the stroke's central line segment axis.
        dx = xs - cx
        dy = ys - cy
        along = dx * np.cos(angle) + dy * np.sin(angle)
        across = -dx * np.sin(angle) + dy * np.cos(angle)
        ridge = np.exp(-(across**2) / (2 * width**2)) * np.exp(
            -np.clip(np.abs(along) - length, 0.0, None) ** 2 / (2 * width**2)
        )
        proto += ridge
    proto /= max(proto.max(), 1e-9)
    return proto


@dataclass
class SyntheticMNIST:
    """In-memory synthetic image classification dataset.

    Attributes
    ----------
    images:
        ``(num_samples, 784)`` float64 array in ``[0, 1]``.
    labels:
        ``(num_samples,)`` int64 array with values in ``[0, 10)``.
    """

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 2 or self.images.shape[1] != IMAGE_PIXELS:
            raise ValueError(
                f"images must have shape (n, {IMAGE_PIXELS}), got {self.images.shape}"
            )
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError(
                f"labels must have shape ({self.images.shape[0]},), got {self.labels.shape}"
            )

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def num_classes(self) -> int:
        return NUM_CLASSES

    @property
    def input_dim(self) -> int:
        return IMAGE_PIXELS

    def subset(self, indices: np.ndarray) -> "SyntheticMNIST":
        """Return a new dataset holding only ``indices`` (copies the data)."""
        idx = np.asarray(indices, dtype=np.int64)
        return SyntheticMNIST(self.images[idx].copy(), self.labels[idx].copy())

    def class_counts(self) -> np.ndarray:
        """Per-class sample counts (length 10)."""
        return np.bincount(self.labels, minlength=NUM_CLASSES)


def load_synthetic_mnist(
    num_samples: int = 6000,
    *,
    seed: int = 0,
    noise_std: float = 0.25,
    deformation: float = 0.6,
    class_proportions: np.ndarray | None = None,
) -> SyntheticMNIST:
    """Generate a synthetic MNIST-like dataset.

    Parameters
    ----------
    num_samples:
        Total number of images to generate.
    seed:
        Seed controlling prototypes, per-sample deformation and noise.
    noise_std:
        Standard deviation of the additive pixel noise (higher = harder task).
    deformation:
        Scale of the per-sample prototype deformation in ``[0, 1]``; controls
        intra-class variability (and therefore gradient diversity between
        clients holding the same class).
    class_proportions:
        Optional length-10 vector of class probabilities (defaults to uniform).

    Returns
    -------
    SyntheticMNIST
        The generated dataset.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if noise_std < 0:
        raise ValueError(f"noise_std must be non-negative, got {noise_std}")
    if not (0.0 <= deformation <= 1.0):
        raise ValueError(f"deformation must lie in [0, 1], got {deformation}")

    proto_rng = new_rng(seed, "synthetic-mnist", "prototypes")
    sample_rng = new_rng(seed, "synthetic-mnist", "samples")

    prototypes = np.stack(
        [_class_prototype(label, proto_rng) for label in range(NUM_CLASSES)], axis=0
    )  # (10, 28, 28)

    if class_proportions is None:
        proportions = np.full(NUM_CLASSES, 1.0 / NUM_CLASSES)
    else:
        proportions = np.asarray(class_proportions, dtype=np.float64)
        if proportions.shape != (NUM_CLASSES,):
            raise ValueError(
                f"class_proportions must have shape ({NUM_CLASSES},), got {proportions.shape}"
            )
        if np.any(proportions < 0) or proportions.sum() <= 0:
            raise ValueError("class_proportions must be non-negative and sum to > 0")
        proportions = proportions / proportions.sum()

    labels = sample_rng.choice(NUM_CLASSES, size=num_samples, p=proportions).astype(np.int64)

    # Per-sample brightness/contrast jitter plus smooth deformation fields built
    # from a small number of random low-frequency components (vectorised across
    # the whole batch: the deformation is approximated as a per-sample mixture of
    # the class prototype with one of several pre-shifted variants).
    shifts = [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1)]
    shifted_protos = np.stack(
        [
            np.stack([np.roll(np.roll(p, dy, axis=0), dx, axis=1) for p in prototypes])
            for (dy, dx) in shifts
        ],
        axis=0,
    )  # (num_shifts, 10, 28, 28)

    shift_choice = sample_rng.integers(0, len(shifts), size=num_samples)
    mix = deformation * sample_rng.uniform(0.2, 0.8, size=(num_samples, 1, 1))
    base = prototypes[labels]  # (n, 28, 28)
    variant = shifted_protos[shift_choice, labels]  # (n, 28, 28)
    images = (1.0 - mix) * base + mix * variant

    contrast = sample_rng.uniform(0.7, 1.3, size=(num_samples, 1, 1))
    brightness = sample_rng.uniform(-0.05, 0.05, size=(num_samples, 1, 1))
    images = images * contrast + brightness
    images += sample_rng.normal(0.0, noise_std, size=images.shape)
    np.clip(images, 0.0, 1.0, out=images)

    return SyntheticMNIST(images.reshape(num_samples, IMAGE_PIXELS), labels)
