"""The five built-in systems, re-homed as registered plugins.

Each class wraps one trainer/simulator behind the :class:`~repro.systems.registry.System`
protocol: ``build_config`` delegates to the scenario's authoritative config
builder (``spec.fairbfl_config()`` and friends — duck-typed, so this module
never imports the scenario layer), and ``build`` instantiates the trainer
inside a :class:`~repro.systems.registry.TrainerRun` that closes it after the
run.  Importing this module registers all five; everything else (CLI choices,
scenario validation, the engine's dispatch and dataset skipping) derives from
the registrations.

Capability summary:

============== ============== =========== ======= ======== ====== ===
system         needs_dataset  round_modes attacks defenses cohort net
============== ============== =========== ======= ======== ====== ===
fairbfl        yes            yes         yes     yes      yes    yes
fairbfl-discard yes           yes         yes     yes      yes    yes
fedavg         yes            no          no      yes      yes    no
fedprox        yes            no          no      yes      yes    no
blockchain     no             no          no      no       no     no
============== ============== =========== ======= ======== ====== ===

The ``net`` capability (``topology``/``peer_k``/``partition``/``churn``) is
FAIR-BFL-only: the gossip substrate needs per-miner chain views to diverge
and reconcile, while the vanilla blockchain baseline models fork costs with
aggregate per-round statistics (:mod:`repro.sim.vanilla_blockchain`) instead
of per-node state.
"""

from __future__ import annotations

from repro.core.fairbfl import FairBFLTrainer
from repro.fl.fedavg import FedAvgTrainer
from repro.fl.fedprox import FedProxTrainer
from repro.sim.vanilla_blockchain import VanillaBlockchainSimulator
from repro.systems.registry import (
    System,
    SystemCapabilities,
    TrainerRun,
    register_system,
)

__all__ = [
    "FairBFLSystem",
    "FairBFLDiscardSystem",
    "FedAvgSystem",
    "FedProxSystem",
    "VanillaBlockchainSystem",
]


class FairBFLSystem(System):
    """FAIR-BFL: the paper's flexible, incentive-redesigned BFL system."""

    name = "fairbfl"
    description = "FAIR-BFL with the keep strategy (Algorithm 1 + Algorithm 2 incentives)"
    capabilities = SystemCapabilities(
        needs_dataset=True,
        round_modes=True,
        attacks=True,
        defenses=True,
        cohort=True,
        net=True,
    )

    def build_config(self, spec):
        return spec.fairbfl_config()

    def build(self, spec, dataset):
        return TrainerRun(self.name, FairBFLTrainer(dataset, self.build_config(spec)))


class FairBFLDiscardSystem(FairBFLSystem):
    """FAIR-BFL with the discard strategy (low-contribution updates dropped).

    ``spec.fairbfl_config()`` forces ``strategy="discard"`` when the spec's
    system is this one, so the shared build path needs no special casing.
    """

    name = "fairbfl-discard"
    description = "FAIR-BFL with the discard strategy (Section 5.3 cost-effectiveness)"


class FedAvgSystem(System):
    """The FedAvg baseline (central server, no ledger)."""

    name = "fedavg"
    description = "FedAvg baseline: central aggregation, no blockchain costs"
    capabilities = SystemCapabilities(needs_dataset=True, defenses=True, cohort=True)

    def build_config(self, spec):
        return spec.fedavg_config()

    def build(self, spec, dataset):
        return TrainerRun(self.name, FedAvgTrainer(dataset, self.build_config(spec)))


class FedProxSystem(System):
    """The FedProx baseline (proximal local objective, straggler drops)."""

    name = "fedprox"
    description = "FedProx baseline: proximal term + straggler dropping"
    capabilities = SystemCapabilities(needs_dataset=True, defenses=True, cohort=True)

    def build_config(self, spec):
        return spec.fedprox_config()

    def build(self, spec, dataset):
        return TrainerRun(self.name, FedProxTrainer(dataset, self.build_config(spec)))


class VanillaBlockchainSystem(System):
    """The un-redesigned ledger baseline; needs no federated dataset."""

    name = "blockchain"
    description = "Vanilla blockchain baseline: per-worker transactions, real mining"
    capabilities = SystemCapabilities(needs_dataset=False)

    def build_config(self, spec):
        return spec.blockchain_config()

    def build(self, spec, dataset):
        return TrainerRun(self.name, VanillaBlockchainSimulator(self.build_config(spec)))


# Registration order defines the CLI's choice order and compare's roster;
# replace=True keeps module re-imports (importlib.reload) harmless.
for _system in (
    FairBFLSystem(),
    FairBFLDiscardSystem(),
    FedAvgSystem(),
    FedProxSystem(),
    VanillaBlockchainSystem(),
):
    register_system(_system, replace=True)
del _system
