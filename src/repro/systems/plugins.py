"""Plugin loading: import modules/files that register systems.

A plugin is any Python module that calls
:func:`repro.systems.register_system` at import time (see
``examples/custom_system.py``).  ``load_plugins`` accepts dotted module names
and ``.py`` file paths; file plugins are imported under a stable synthetic
module name derived from their resolved path, so loading the same file twice
returns the cached module instead of re-registering (pass ``reload=True`` to
force a re-import, e.g. after :func:`repro.systems.unregister_system`).

The CLI exposes this as ``--plugins`` (repeatable) and additionally honours
the ``REPRO_PLUGINS`` environment variable (``os.pathsep``-separated
entries), so scripted sweeps can inject systems without editing commands.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import sys
from hashlib import sha256
from pathlib import Path
from types import ModuleType

from repro.systems.registry import SystemRegistryError

__all__ = ["PLUGIN_ENV_VAR", "load_plugins"]

#: Environment variable holding extra plugin entries (os.pathsep-separated).
PLUGIN_ENV_VAR = "REPRO_PLUGINS"


def load_plugins(
    entries=(), *, include_env: bool = False, reload: bool = False
) -> list[ModuleType]:
    """Import every plugin entry and return the loaded modules.

    ``entries`` mixes dotted module names and ``.py`` paths.  With
    ``include_env=True`` the ``REPRO_PLUGINS`` environment variable
    contributes additional entries.  Failures raise
    :class:`~repro.systems.registry.SystemRegistryError` naming the entry.
    """
    resolved = [str(entry) for entry in entries]
    if include_env:
        env = os.environ.get(PLUGIN_ENV_VAR, "")
        resolved.extend(part for part in (p.strip() for p in env.split(os.pathsep)) if part)
    return [_load_one(entry, reload=reload) for entry in resolved]


def _load_one(entry: str, *, reload: bool) -> ModuleType:
    path = Path(entry)
    if entry.endswith(".py") or path.exists():
        if not path.is_file():
            raise SystemRegistryError(
                f"plugin file not found: {entry!r} (give a .py file or an importable module name)"
            )
        return _load_file(path, reload=reload)
    try:
        module = importlib.import_module(entry)
        return importlib.reload(module) if reload else module
    except SystemRegistryError:
        raise
    except Exception as exc:
        raise SystemRegistryError(
            f"error while importing plugin module {entry!r}: {exc}"
        ) from exc


def _load_file(path: Path, *, reload: bool) -> ModuleType:
    resolved = path.resolve()
    # sha256 (not md5): stays available on FIPS-restricted Python builds.
    digest = sha256(str(resolved).encode("utf-8")).hexdigest()[:8]
    name = f"repro_plugins.{resolved.stem.replace('-', '_')}_{digest}"
    if not reload and name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, resolved)
    if spec is None or spec.loader is None:  # pragma: no cover - importlib internals
        raise SystemRegistryError(f"cannot build an import spec for plugin file {path!s}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(name, None)
        raise SystemRegistryError(f"error while loading plugin {path!s}: {exc}") from exc
    return module
