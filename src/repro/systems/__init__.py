"""Pluggable system registry: systems are registered, not hardwired.

The package splits into:

* :mod:`repro.systems.registry` — the :class:`System` protocol,
  :class:`SystemCapabilities`, the typed :class:`RunResult`, and the
  registry (:func:`register_system` / :func:`get_system` / ``SYSTEMS``);
* :mod:`repro.systems.builtin` — the five shipped systems (``fairbfl``,
  ``fairbfl-discard``, ``fedavg``, ``fedprox``, ``blockchain``), registered
  on import;
* :mod:`repro.systems.plugins` — :func:`load_plugins` for importing
  third-party system modules (the CLI's ``--plugins`` flag).

See ``docs/api.md`` for the extension guide and
``examples/custom_system.py`` for a complete registered-from-outside system.
"""

from repro.systems.registry import (
    SYSTEMS,
    DuplicateSystemError,
    RunResult,
    System,
    SystemCapabilities,
    SystemRegistryError,
    TrainerRun,
    UnknownSystemError,
    capability_fingerprint,
    check_spec_axes,
    filter_unsupported_axes,
    get_system,
    register_system,
    system_names,
    systems_supporting,
    unregister_system,
)
from repro.systems.plugins import PLUGIN_ENV_VAR, load_plugins

__all__ = [
    "SYSTEMS",
    "DuplicateSystemError",
    "PLUGIN_ENV_VAR",
    "RunResult",
    "System",
    "SystemCapabilities",
    "SystemRegistryError",
    "TrainerRun",
    "UnknownSystemError",
    "capability_fingerprint",
    "check_spec_axes",
    "filter_unsupported_axes",
    "get_system",
    "load_plugins",
    "register_system",
    "system_names",
    "systems_supporting",
    "unregister_system",
]

# Importing the package guarantees the built-ins are present (the registry
# also lazily imports them for callers that import repro.systems.registry
# directly, which is what breaks the cycle with the trainer modules).
from repro.systems import builtin as _builtin  # noqa: E402,F401
