"""The pluggable system registry.

Every runnable system in the repository — FAIR-BFL, its discard variant, the
FedAvg/FedProx baselines, the vanilla blockchain, and anything registered
from outside — is a :class:`System`: a named object that declares its
:class:`SystemCapabilities` and knows how to :meth:`~System.build` a run for
a scenario.  The registry maps system names to these objects, and everything
that used to hard-code the system list derives from it instead:

* the CLI's ``run`` choices and ``compare`` roster come from
  :func:`system_names`;
* :meth:`repro.runner.scenario.ScenarioSpec.validate` resolves the spec's
  ``system`` through :func:`get_system` and applies the capability-derived
  axis checks of :func:`check_spec_axes` (e.g. ``round_mode`` only where a
  system supports round modes);
* :class:`repro.runner.engine.ExperimentEngine` dispatches through
  :meth:`System.build` and skips dataset construction entirely when
  ``capabilities.needs_dataset`` is False.

Register a new system with :func:`register_system` (see ``docs/api.md`` and
``examples/custom_system.py``); the CLI loads plugin modules with
``--plugins`` so new systems run through ``run``/``sweep``/``compare``
without touching core code.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import MISSING, dataclass, field, fields
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.fl.history import TrainingHistory

__all__ = [
    "SystemRegistryError",
    "DuplicateSystemError",
    "UnknownSystemError",
    "SystemCapabilities",
    "RunResult",
    "System",
    "TrainerRun",
    "SYSTEMS",
    "register_system",
    "unregister_system",
    "get_system",
    "system_names",
    "systems_supporting",
    "check_spec_axes",
    "filter_unsupported_axes",
    "capability_fingerprint",
]


class SystemRegistryError(ValueError):
    """Base error for registry problems (a :class:`ValueError`)."""


class DuplicateSystemError(SystemRegistryError):
    """A system name is already taken by another registered system."""


class UnknownSystemError(SystemRegistryError):
    """No system with the requested name is registered."""


@dataclass(frozen=True)
class SystemCapabilities:
    """What a registered system supports, declared once and derived everywhere.

    Attributes
    ----------
    needs_dataset:
        Whether :meth:`System.build` needs a federated dataset.  When False
        the engine never constructs (or memoises) one for this system — the
        vanilla blockchain is the built-in example.
    round_modes:
        Whether the system honours the ``round_mode`` axis (``sync`` /
        ``semi_sync`` / ``async``) and its tuning knobs.
    attacks:
        Whether the system can schedule malicious clients (``attacks``,
        ``attack_name``, ``min_attackers``, ``max_attackers``).
    defenses:
        Whether the system routes aggregation through the robust-aggregation
        pipeline (``defense``, ``defense_fraction``).
    cohort:
        Whether the system can run local updates on the vectorized cohort
        backend (``backend="cohort"``), i.e. its trainer fans Procedure I
        out through a :class:`~repro.runner.executor.ParallelExecutor`.
        Unlike the other axes this one is engaged by a *specific value*:
        ``backend="thread"``/``"process"`` stay valid for every system (a
        system that ignores the executor simply ignores them), only
        ``backend="cohort"`` requires the capability.
    net:
        Whether the system runs on the per-node gossip substrate
        (:mod:`repro.net`): ``topology`` values other than ``"global"`` plus
        the ``peer_k``/``partition``/``churn`` axes.  Only blockchain-backed
        systems can — the substrate needs per-miner chain views to diverge
        and reconcile.  Like cohort, the axis is engaged by value:
        ``topology="global"`` stays valid everywhere.
    """

    needs_dataset: bool = True
    round_modes: bool = False
    attacks: bool = False
    defenses: bool = False
    cohort: bool = False
    net: bool = False


#: Scenario fields owned by each capability axis.  The guard defaults are
#: fallbacks only: when the spec is a dataclass (ScenarioSpec is) the actual
#: field default is read from it, so the values cannot drift (the registry
#: deliberately does not import the scenario layer — it imports *us*).
_AXIS_FIELDS: dict[str, tuple[str, ...]] = {
    "round_modes": ("round_mode", "straggler_deadline", "async_quorum", "staleness_decay"),
    "attacks": ("attacks", "attack_name", "min_attackers", "max_attackers"),
    "defenses": ("defense", "defense_fraction"),
    "cohort": ("backend",),
    "net": ("topology", "peer_k", "partition", "churn"),
}
_AXIS_GUARDS: dict[str, tuple[str, object]] = {
    "round_modes": ("round_mode", "sync"),
    "attacks": ("attacks", False),
    "defenses": ("defense", "none"),
    "cohort": ("backend", "serial"),
    "net": ("topology", "global"),
}


def _axis_engaged(axis: str, value: object, default: object) -> bool:
    """Whether a guard-field value actually engages the capability axis.

    The cohort axis is engaged only by the literal ``"cohort"`` backend —
    ``thread``/``process`` are valid for every system (those that ignore the
    executor simply ignore them), so they must not trip the check.  The net
    axis mirrors it: only a non-``"global"`` topology engages the substrate.
    """
    if axis == "cohort":
        return value == "cohort"
    if axis == "net":
        return value != "global"
    return value != default


def _guard_default(spec, guard_field: str, fallback: object) -> object:
    """The spec type's own default for ``guard_field`` (fallback otherwise)."""
    dataclass_fields = getattr(type(spec), "__dataclass_fields__", None)
    if dataclass_fields and guard_field in dataclass_fields:
        default = dataclass_fields[guard_field].default
        if default is not MISSING:
            return default
    return fallback


@dataclass(frozen=True)
class RunResult:
    """The typed result of one system run.

    Attributes
    ----------
    system:
        Name of the registered system that produced the run.
    history:
        The per-round :class:`~repro.fl.history.TrainingHistory`.
    extras:
        System-specific side products (e.g. a chain height) for callers that
        want more than the history; empty for the built-ins.
    """

    system: str
    history: "TrainingHistory"
    extras: Mapping[str, object] = field(default_factory=dict)


class System:
    """Base class / protocol for a registered system.

    A system is any object with a unique ``name``, a ``capabilities``
    declaration, and a ``build(spec, dataset)`` method returning an object
    whose ``run()`` yields a :class:`RunResult`.  Subclassing this base is
    the convenient way to get there; duck-typed objects satisfying the same
    protocol register fine too.

    ``build_config(spec)`` is the validation hook: it must construct (and
    thereby validate) the authoritative configuration for ``spec``, raising
    ``ValueError`` on a bad one.  ``ScenarioSpec.validate`` calls it, which
    is what keeps scenario validation in lockstep with the system's own
    config class instead of duplicating rules.
    """

    name: str = ""
    description: str = ""
    capabilities: SystemCapabilities = SystemCapabilities()

    def build_config(self, spec) -> object:
        """Build the authoritative config for ``spec`` (``None`` if configless)."""
        return None

    def validate(self, spec) -> None:
        """Reject specs this system cannot run (default: build the config)."""
        self.build_config(spec)

    def build(self, spec, dataset):
        """Return a run object (``.run() -> RunResult``) for ``spec``.

        ``dataset`` is the memoised federated dataset, or ``None`` when
        ``capabilities.needs_dataset`` is False.
        """
        raise NotImplementedError(f"system {self.name!r} does not implement build()")


@dataclass
class TrainerRun:
    """Adapts a trainer/simulator (``.run() -> TrainingHistory``) to a system run.

    Closes the trainer (releasing executor worker pools) even when the run
    raises, then wraps the history in a :class:`RunResult`.
    """

    system: str
    trainer: object
    extras: Mapping[str, object] = field(default_factory=dict)

    def run(self) -> RunResult:
        try:
            history = self.trainer.run()
        finally:
            close = getattr(self.trainer, "close", None)
            if callable(close):
                close()
        return RunResult(system=self.system, history=history, extras=dict(self.extras))


# ---------------------------------------------------------------------------
# The registry proper.
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, System] = {}

#: Read-only live view of the registry, in registration order.
SYSTEMS: Mapping[str, System] = MappingProxyType(_REGISTRY)

_BUILTINS_LOADED = False
_BUILTINS_LOADING = False


def _ensure_builtin_systems() -> None:
    """Import the built-in system definitions exactly once (lazily).

    The scenario/engine layers import this module directly; pulling the
    built-ins in here (rather than eagerly at module import) avoids a cycle
    with the trainer modules they wrap.  The loaded flag is only set on
    *success* so a failed import surfaces again on the next call instead of
    leaving an inexplicably empty registry; the loading flag guards against
    re-entry while the builtin module itself registers its systems.
    """
    global _BUILTINS_LOADED, _BUILTINS_LOADING
    if _BUILTINS_LOADED or _BUILTINS_LOADING:
        return
    _BUILTINS_LOADING = True
    try:
        import repro.systems.builtin  # noqa: F401  (registers on import)
    finally:
        _BUILTINS_LOADING = False
    _BUILTINS_LOADED = True


def register_system(system: System, *, replace: bool = False) -> System:
    """Register ``system`` under ``system.name`` and return it.

    Raises :class:`DuplicateSystemError` when the name is taken (pass
    ``replace=True`` to swap the registration — this also makes re-importing
    a plugin module harmless) and :class:`SystemRegistryError` when the
    object does not satisfy the :class:`System` protocol.
    """
    name = getattr(system, "name", None)
    if not isinstance(name, str) or not name:
        raise SystemRegistryError(
            f"cannot register {system!r}: a system must have a non-empty string "
            "'name' attribute (see repro.systems.System)"
        )
    if not callable(getattr(system, "build", None)):
        raise SystemRegistryError(
            f"cannot register system {name!r}: it must define build(spec, dataset) "
            "returning an object whose run() yields a RunResult"
        )
    capabilities = getattr(system, "capabilities", None)
    if not isinstance(capabilities, SystemCapabilities):
        raise SystemRegistryError(
            f"cannot register system {name!r}: 'capabilities' must be a "
            "repro.systems.SystemCapabilities instance, got "
            f"{type(capabilities).__name__}"
        )
    _ensure_builtin_systems()
    existing = _REGISTRY.get(name)
    if existing is not None and not replace:
        raise DuplicateSystemError(
            f"a system named {name!r} is already registered "
            f"({type(existing).__name__}); pass replace=True to replace it, or "
            f"call unregister_system({name!r}) first"
        )
    _REGISTRY[name] = system
    return system


def unregister_system(name: str) -> System:
    """Remove and return the system registered under ``name``."""
    _ensure_builtin_systems()
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownSystemError(
            f"cannot unregister unknown system {name!r}; registered systems: "
            + (", ".join(_REGISTRY) or "(none)")
        ) from None


def get_system(name: str) -> System:
    """Resolve a system name, with an actionable error for unknown names."""
    _ensure_builtin_systems()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSystemError(
            f"unknown system {name!r}; registered systems: "
            + (", ".join(_REGISTRY) or "(none)")
            + ". Register new systems with repro.systems.register_system() or "
            "load a plugin module (repro.api.load_plugins / CLI --plugins)."
        ) from None


def system_names() -> tuple[str, ...]:
    """All registered system names, in registration order."""
    _ensure_builtin_systems()
    return tuple(_REGISTRY)


def systems_supporting(axis: str) -> tuple[str, ...]:
    """Names of the registered systems whose capabilities enable ``axis``."""
    if axis not in _AXIS_FIELDS:
        raise SystemRegistryError(
            f"unknown capability axis {axis!r}; expected one of: "
            + ", ".join(_AXIS_FIELDS)
        )
    _ensure_builtin_systems()
    return tuple(n for n, s in _REGISTRY.items() if getattr(s.capabilities, axis))


def capability_fingerprint(system: System | str) -> str:
    """Stable hash of a registered system's code-relevant identity.

    The fingerprint covers the system's name, the implementing class
    (``module.QualName``), and every :class:`SystemCapabilities` field, so it
    is reproducible across processes yet changes whenever a system is
    re-registered with a different implementation or capability set — a
    plugin that swaps ``fedavg`` for a variant with defenses disabled gets a
    different fingerprint even though the name is unchanged.  The run store
    (:mod:`repro.store`) folds this fingerprint into every content address,
    which is what invalidates cached runs when the system behind a scenario's
    ``system`` field is no longer the one that produced them.
    """
    system = get_system(system) if isinstance(system, str) else system
    capabilities = system.capabilities
    payload = {
        "system": system.name,
        "type": f"{type(system).__module__}.{type(system).__qualname__}",
        "capabilities": {
            f.name: getattr(capabilities, f.name) for f in fields(capabilities)
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def check_spec_axes(system: System, spec) -> None:
    """Reject a spec that engages an axis ``system`` does not support.

    Only non-default *engagements* fail: ``round_mode="sync"``,
    ``attacks=False`` and ``defense="none"`` are always accepted, so sharing
    one flag set across systems (the CLI's ``compare``) keeps working.
    """
    capabilities = system.capabilities
    for axis, (guard_field, fallback) in _AXIS_GUARDS.items():
        if getattr(capabilities, axis):
            continue
        default = _guard_default(spec, guard_field, fallback)
        value = getattr(spec, guard_field, default)
        if _axis_engaged(axis, value, default):
            supported = systems_supporting(axis)
            raise SystemRegistryError(
                f"system {system.name!r} does not support {guard_field}="
                f"{value!r} (no {axis.replace('_', '-')} capability); systems "
                "supporting it: " + (", ".join(supported) or "(none)")
            )


def filter_unsupported_axes(system: System | str, mapping: Mapping[str, object]) -> dict:
    """Drop the axis fields ``system`` does not support from ``mapping``.

    Used where one set of scenario fields is fanned out across several
    systems (``repro.api.compare``, sweep-wide CLI overrides): each system
    receives only the axes it can honour, and its defaults cover the rest.
    """
    system = get_system(system) if isinstance(system, str) else system
    out = dict(mapping)
    for axis, axis_fields in _AXIS_FIELDS.items():
        if getattr(system.capabilities, axis):
            continue
        if axis == "cohort" and out.get("backend") != "cohort":
            continue  # thread/process are valid everywhere; only "cohort" engages
        if axis == "net" and out.get("topology", "global") == "global":
            continue  # topology="global" is valid everywhere; nothing engaged
        for field_name in axis_fields:
            out.pop(field_name, None)
    return out
