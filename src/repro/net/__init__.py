"""Peer-to-peer network substrate: per-node chain views over gossip.

This package turns the committee from a lock-step replicated ledger into a
small peer-to-peer network.  Each miner becomes a :class:`~repro.net.node.Node`
with its own peer set, mempool, and chain view; blocks spread by seeded
flooding gossip over a configurable :mod:`topology <repro.net.topology>`;
timed partitions and churn traces (:mod:`repro.net.schedule`) fracture the
network into reachability components that mine divergent forks; and the
:class:`~repro.net.substrate.GossipSubstrate` reconciles them with the
deterministic fork-choice rule when connectivity returns.

The ``topology="global"`` axis value is the migration sentinel: it builds no
substrate and keeps the legacy single-network trainer path bit-identical.
"""

from repro.net.gossip import GossipNetwork, GossipOutcome
from repro.net.node import Node
from repro.net.schedule import (
    ChurnEvent,
    NetSchedule,
    PartitionWindow,
    parse_churn,
    parse_partition,
)
from repro.net.substrate import BeginRoundReport, GossipSubstrate, NetRoundState
from repro.net.topology import (
    TOPOLOGIES,
    build_peer_sets,
    connected_components,
    is_connected,
)

__all__ = [
    "TOPOLOGIES",
    "BeginRoundReport",
    "ChurnEvent",
    "GossipNetwork",
    "GossipOutcome",
    "GossipSubstrate",
    "NetRoundState",
    "NetSchedule",
    "Node",
    "PartitionWindow",
    "build_peer_sets",
    "connected_components",
    "is_connected",
    "parse_churn",
    "parse_partition",
]
