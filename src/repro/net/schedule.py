"""Timed partition windows and churn traces for the gossip substrate.

Both axes are compact strings so they travel through scenario files, CLI
flags, and the run store's content addresses unchanged:

* ``partition`` — ``"none"``, or ``;``-separated windows of the form
  ``"START-END:G0|G1|..."`` where ``START``/``END`` are inclusive round
  indices and each group ``G`` is a comma-separated list of node indices.
  Nodes not listed in any group form one implicit remainder group, so
  ``"2-4:0,1"`` over five nodes splits ``{0,1}`` from ``{2,3,4}`` for rounds
  2-4.  A single round uses ``"3-3:..."`` (or just ``"3:..."``).
* ``churn`` — ``"none"``, or ``;``-separated events ``"ROUND:-IDX"`` (node
  ``IDX`` departs before round ``ROUND``) and ``"ROUND:+IDX"`` (it arrives or
  rejoins).  Events apply in round order; the trace must never take the last
  node offline.

:class:`NetSchedule` replays both into per-round state: which nodes are
online and which reachability groups the partition imposes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PartitionWindow",
    "ChurnEvent",
    "NetSchedule",
    "parse_partition",
    "parse_churn",
]


@dataclass(frozen=True)
class PartitionWindow:
    """One timed split: rounds ``start``..``end`` (inclusive) see ``groups``."""

    start: int
    end: int
    groups: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class ChurnEvent:
    """A node arrival (``online=True``) or departure taking effect at ``round_index``."""

    round_index: int
    node_index: int
    online: bool


def parse_partition(spec: str, num_nodes: int) -> tuple[PartitionWindow, ...]:
    """Parse a ``partition`` axis string (see module docstring for the grammar)."""
    text = (spec or "none").strip()
    if text in ("", "none"):
        return ()
    if num_nodes < 2:
        raise ValueError("a partition needs at least two nodes to split")
    windows: list[PartitionWindow] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        window_part, sep, groups_part = chunk.partition(":")
        if not sep or not groups_part.strip():
            raise ValueError(
                f"invalid partition window {chunk!r}: expected 'START-END:G0|G1|...'"
            )
        start_text, dash, end_text = window_part.partition("-")
        try:
            start = int(start_text)
            end = int(end_text) if dash else start
        except ValueError:
            raise ValueError(
                f"invalid partition window {chunk!r}: round bounds must be integers"
            ) from None
        if start < 0 or end < start:
            raise ValueError(
                f"invalid partition window {chunk!r}: need 0 <= start <= end"
            )
        groups: list[tuple[int, ...]] = []
        listed: set[int] = set()
        for group_text in groups_part.split("|"):
            members = _parse_indices(group_text, num_nodes, context=chunk)
            if not members:
                raise ValueError(f"invalid partition window {chunk!r}: empty group")
            overlap = listed & set(members)
            if overlap:
                raise ValueError(
                    f"invalid partition window {chunk!r}: node(s) "
                    f"{sorted(overlap)} appear in more than one group"
                )
            listed.update(members)
            groups.append(members)
        remainder = tuple(i for i in range(num_nodes) if i not in listed)
        if remainder:
            groups.append(remainder)
        if len(groups) < 2:
            raise ValueError(
                f"invalid partition window {chunk!r}: the groups cover every node "
                "— a split needs at least two sides"
            )
        windows.append(PartitionWindow(start=start, end=end, groups=tuple(groups)))
    windows.sort(key=lambda w: (w.start, w.end))
    for left, right in zip(windows, windows[1:]):
        if right.start <= left.end:
            raise ValueError(
                f"partition windows overlap: rounds {left.start}-{left.end} and "
                f"{right.start}-{right.end}"
            )
    return tuple(windows)


def parse_churn(spec: str, num_nodes: int) -> tuple[ChurnEvent, ...]:
    """Parse a ``churn`` axis string (see module docstring for the grammar)."""
    text = (spec or "none").strip()
    if text in ("", "none"):
        return ()
    events: list[ChurnEvent] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        round_text, sep, node_text = chunk.partition(":")
        node_text = node_text.strip()
        if not sep or not node_text or node_text[0] not in "+-":
            raise ValueError(
                f"invalid churn event {chunk!r}: expected 'ROUND:-IDX' or 'ROUND:+IDX'"
            )
        try:
            round_index = int(round_text)
            node_index = int(node_text[1:])
        except ValueError:
            raise ValueError(
                f"invalid churn event {chunk!r}: round and node index must be integers"
            ) from None
        if round_index < 0:
            raise ValueError(f"invalid churn event {chunk!r}: round must be >= 0")
        if not (0 <= node_index < num_nodes):
            raise ValueError(
                f"invalid churn event {chunk!r}: node index must lie in "
                f"[0, {num_nodes})"
            )
        events.append(
            ChurnEvent(
                round_index=round_index,
                node_index=node_index,
                online=(node_text[0] == "+"),
            )
        )
    events.sort(key=lambda e: (e.round_index, e.node_index, e.online))
    # Replaying the whole trace up front catches the one irrecoverable
    # mistake — every node offline at once — at validation time, not mid-run.
    online = set(range(num_nodes))
    for event in events:
        if event.online:
            online.add(event.node_index)
        else:
            online.discard(event.node_index)
        if not online:
            raise ValueError(
                f"churn trace takes every node offline at round {event.round_index}"
            )
    return tuple(events)


def _parse_indices(text: str, num_nodes: int, *, context: str) -> tuple[int, ...]:
    members: list[int] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            index = int(token)
        except ValueError:
            raise ValueError(
                f"invalid partition window {context!r}: node index {token!r} "
                "is not an integer"
            ) from None
        if not (0 <= index < num_nodes):
            raise ValueError(
                f"invalid partition window {context!r}: node index {index} must "
                f"lie in [0, {num_nodes})"
            )
        members.append(index)
    return tuple(sorted(set(members)))


class NetSchedule:
    """Per-round online/partition state replayed from the parsed axes."""

    def __init__(
        self,
        num_nodes: int,
        partition: tuple[PartitionWindow, ...] = (),
        churn: tuple[ChurnEvent, ...] = (),
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.partition = tuple(partition)
        self.churn = tuple(churn)

    @classmethod
    def parse(cls, num_nodes: int, partition: str, churn: str) -> "NetSchedule":
        """Build a schedule straight from the two axis strings."""
        return cls(
            num_nodes,
            partition=parse_partition(partition, num_nodes),
            churn=parse_churn(churn, num_nodes),
        )

    def online_at(self, round_index: int) -> tuple[int, ...]:
        """Node indices online during ``round_index`` (events apply at their round)."""
        online = set(range(self.num_nodes))
        for event in self.churn:
            if event.round_index > round_index:
                break
            if event.online:
                online.add(event.node_index)
            else:
                online.discard(event.node_index)
        return tuple(sorted(online))

    def window_at(self, round_index: int) -> PartitionWindow | None:
        """The active partition window, if any."""
        for window in self.partition:
            if window.start <= round_index <= window.end:
                return window
        return None

    def groups_at(self, round_index: int) -> tuple[tuple[int, ...], ...]:
        """Reachability groups for ``round_index`` (one group when unpartitioned)."""
        window = self.window_at(round_index)
        if window is None:
            return (tuple(range(self.num_nodes)),)
        return window.groups

    def partition_active(self, round_index: int) -> bool:
        """Whether a partition window covers ``round_index``."""
        return self.window_at(round_index) is not None
