"""Flooding gossip over a fixed peer graph, scheduled on the event kernel.

One :meth:`GossipNetwork.propagate` call floods a single message (a mined
block, a chain head announcement) from an origin node through the peer graph:
each node forwards to its peers on first receipt, per-link latencies are
drawn log-normally around a base latency (the same shape
:class:`repro.blockchain.network.BroadcastNetwork` uses, calibrated from the
scenario's :class:`~repro.sim.delay.DelayParameters`), and the whole cascade
runs as events on a :class:`~repro.sim.events.EventKernel` seeded for the
call — so arrival times, duplicate counts, and the delivered set are
bit-deterministic for a given seed regardless of host, dict order, or thread
scheduling.

Only nodes in the ``active`` set participate: offline nodes and nodes on the
far side of a partition neither receive nor relay, which is exactly how a
split produces divergent chain views downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.sim.events import EventKernel
from repro.utils.rng import new_rng
from repro.utils.validation import check_non_negative

__all__ = ["GossipNetwork", "GossipOutcome"]


@dataclass(frozen=True)
class GossipOutcome:
    """What one flood achieved: who got the message, when, and at what cost."""

    origin: str
    arrivals: Mapping[str, float]
    messages: int
    duplicates: int

    @property
    def delivered(self) -> frozenset[str]:
        """Every node the message reached (origin included)."""
        return frozenset(self.arrivals)

    @property
    def max_latency(self) -> float:
        """Simulated seconds until the slowest delivery (0 for a lone origin)."""
        return max(self.arrivals.values(), default=0.0)


@dataclass
class GossipNetwork:
    """Seeded flooding gossip over ``peers`` (an undirected adjacency map).

    Parameters
    ----------
    peers:
        Node → peer tuple, as built by :func:`repro.net.topology.build_peer_sets`.
    base_latency:
        Mean one-way per-link latency in simulated seconds.
    jitter:
        Sigma of the log-normal multiplicative jitter (0 disables it).
    fanout:
        Forward to at most this many (seeded-sampled) peers per receipt;
        ``None`` floods to every peer — with flooding the delivered set is
        exactly the origin's connected component of the active subgraph.
    """

    peers: Mapping[str, tuple[str, ...]]
    base_latency: float = 0.05
    jitter: float = 0.25
    fanout: int | None = None
    floods: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.peers:
            raise ValueError("GossipNetwork requires at least one node")
        self.base_latency = check_non_negative("base_latency", self.base_latency)
        self.jitter = check_non_negative("jitter", self.jitter)
        if self.fanout is not None and self.fanout < 1:
            raise ValueError(f"fanout must be >= 1 (or None), got {self.fanout}")

    def propagate(
        self,
        origin: str,
        *,
        active: Iterable[str] | None = None,
        seed: int = 0,
    ) -> GossipOutcome:
        """Flood one message from ``origin`` through the active subgraph."""
        if origin not in self.peers:
            raise ValueError(f"unknown gossip origin {origin!r}")
        active_set = set(self.peers) if active is None else set(active)
        if origin not in active_set:
            raise ValueError(f"gossip origin {origin!r} is not in the active set")
        kernel = EventKernel(seed=int(seed))
        rng = new_rng(int(seed), "net", "gossip")
        arrivals: dict[str, float] = {origin: 0.0}
        stats = {"messages": 0, "duplicates": 0}

        def forward(node: str) -> None:
            targets = [p for p in self.peers[node] if p in active_set]
            if self.fanout is not None and len(targets) > self.fanout:
                picked = rng.choice(len(targets), size=self.fanout, replace=False)
                targets = [targets[i] for i in sorted(int(p) for p in picked)]
            for peer in targets:
                if peer in arrivals:
                    continue  # the peer already holds the message; skip the send
                stats["messages"] += 1
                kernel.schedule(
                    self._latency(rng),
                    _receiver(peer),
                    name=f"gossip:{node}->{peer}",
                )

        def _receiver(node: str):
            def receive() -> None:
                if node in arrivals:
                    stats["duplicates"] += 1
                    return
                arrivals[node] = kernel.now
                forward(node)

            return receive

        forward(origin)
        kernel.run()
        self.floods += 1
        return GossipOutcome(
            origin=origin,
            arrivals=dict(arrivals),
            messages=stats["messages"],
            duplicates=stats["duplicates"],
        )

    def _latency(self, rng: np.random.Generator) -> float:
        if self.base_latency == 0.0:
            return 0.0
        if self.jitter == 0.0:
            return self.base_latency
        return float(self.base_latency * rng.lognormal(mean=0.0, sigma=self.jitter))
