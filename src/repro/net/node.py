"""A network node: one participant's chain view, mempool, and peer set.

In the gossip substrate every miner is a :class:`Node`: it holds its *own*
:class:`~repro.blockchain.chain.Blockchain` view (no more lock-step
replication), its own :class:`~repro.blockchain.mempool.Mempool`, its peer
set, and an online flag driven by the churn trace.  Blocks arrive out of
band (gossip) and possibly out of order, so the node keeps an orphan pool
for blocks whose parent has not arrived yet, and resolves competing views
with the shared :class:`~repro.blockchain.chain.ForkChoice` rule — adopting
a better chain evicts the newly-settled transactions from its mempool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain, ForkChoice
from repro.blockchain.mempool import Mempool

__all__ = ["Node"]

#: Default per-node mempool budget (bytes per block) when none is configured.
_DEFAULT_BLOCK_BYTES = 1 << 20


@dataclass
class Node:
    """One gossip participant: chain view + mempool + peers + liveness."""

    node_id: str
    chain: Blockchain
    mempool: Mempool = field(default_factory=lambda: Mempool(_DEFAULT_BLOCK_BYTES))
    peers: tuple[str, ...] = ()
    online: bool = True
    orphans: dict[str, Block] = field(default_factory=dict)
    reorgs: int = 0

    @property
    def head_hash(self) -> str:
        """The hash of this node's chain tip (empty string for an empty view)."""
        return self.chain.last_block.block_hash if self.chain.blocks else ""

    def receive_block(self, block: Block) -> str:
        """Handle one gossiped block; returns what happened to it.

        * ``"appended"`` — it extended the tip (orphans waiting on it were
          connected too, and settled transactions left the mempool);
        * ``"duplicate"`` — already part of the view;
        * ``"orphaned"`` — its parent has not arrived yet; parked until it does;
        * ``"stale"`` — it builds on a non-tip ancestor (a competing fork at or
          below our height); fork resolution happens chain-against-chain in
          :meth:`sync_with`, not block-by-block.
        """
        if self.chain.has_block(block.block_hash):
            return "duplicate"
        if self.chain.validate_candidate(block) is None:
            self.chain.add_block(block)
            self._settle(block.round_index)
            self._connect_orphans()
            return "appended"
        parent_known = self.chain.has_block(block.header.previous_hash)
        if not parent_known:
            self.orphans[block.block_hash] = block
            return "orphaned"
        return "stale"

    def sync_with(self, other: "Node", fork_choice: ForkChoice) -> bool:
        """Adopt ``other``'s chain when the fork-choice rule prefers it.

        Returns True when this node's view changed.  An adoption that
        discards local tip blocks is a reorg (counted in :attr:`reorgs`);
        either way the mempool drops everything the adopted chain settles.
        """
        if not fork_choice.prefer(self.chain, other.chain):
            return False
        rolled_back, _applied = self.chain.reorg_to(list(other.chain.blocks))
        if rolled_back:
            self.reorgs += 1
        self._settle(self.chain.last_block.round_index)
        self._connect_orphans()
        return True

    def _settle(self, tip_round: int) -> None:
        """Mempool hygiene after the view advanced to ``tip_round``."""
        self.mempool.evict_included(self.chain)
        self.mempool.evict_older_than(tip_round)

    def _connect_orphans(self) -> None:
        """Attach parked blocks that now extend the tip (cascading)."""
        attached = True
        while attached and self.orphans:
            attached = False
            for block_hash in sorted(self.orphans):
                block = self.orphans[block_hash]
                if self.chain.validate_candidate(block) is None:
                    del self.orphans[block_hash]
                    self.chain.add_block(block)
                    self._settle(block.round_index)
                    attached = True
                    break
                if self.chain.has_block(block_hash):
                    del self.orphans[block_hash]
                    attached = True
                    break
