"""Seeded peer-set topologies for the gossip substrate.

A topology maps every node to its peer set — the links gossip may use.  All
topologies are built deterministically from the experiment seed, so two
processes (or two nodes) constructing the same scenario agree on every link:

* ``global`` — the migration sentinel: no per-node substrate at all, the
  trainer keeps today's single-``BroadcastNetwork`` path bit-identically
  (see :mod:`repro.net.substrate`);
* ``full`` — complete graph, every node peers with every other;
* ``ring`` — node ``i`` peers with ``i-1`` and ``i+1`` (mod ``n``);
* ``random_k`` — every node draws ``peer_k`` seeded peers; the undirected
  union is then repaired into a connected graph by linking component
  representatives in index order, so gossip can always reach every online
  node when no partition is active.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.utils.rng import new_rng

__all__ = ["TOPOLOGIES", "build_peer_sets", "connected_components", "is_connected"]

#: Recognised values of the ``topology`` scenario axis.
TOPOLOGIES = ("global", "full", "ring", "random_k")


def build_peer_sets(
    node_ids: Sequence[str],
    topology: str,
    *,
    peer_k: int = 2,
    seed: int = 0,
) -> dict[str, tuple[str, ...]]:
    """Build the undirected peer map for ``topology`` over ``node_ids``.

    ``global`` and ``full`` both yield the complete graph — callers that want
    the legacy single-network path must branch on the axis value *before*
    building a peer map (the substrate does).
    """
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r}; expected one of: " + ", ".join(TOPOLOGIES)
        )
    ids = list(node_ids)
    if not ids:
        raise ValueError("a topology needs at least one node")
    if len(set(ids)) != len(ids):
        raise ValueError("node_ids must be unique")
    n = len(ids)
    peers: dict[str, set[str]] = {nid: set() for nid in ids}

    if topology in ("global", "full"):
        for nid in ids:
            peers[nid] = set(ids) - {nid}
    elif topology == "ring":
        for i, nid in enumerate(ids):
            if n > 1:
                peers[nid].add(ids[(i - 1) % n])
                peers[nid].add(ids[(i + 1) % n])
    else:  # random_k
        if peer_k < 1:
            raise ValueError(f"peer_k must be >= 1, got {peer_k}")
        if n > 1 and peer_k >= n:
            raise ValueError(
                f"peer_k must be < the number of nodes ({n}), got {peer_k}"
            )
        rng = new_rng(seed, "net", "topology", n, peer_k)
        for i, nid in enumerate(ids):
            if n == 1:
                break
            choices = [other for other in ids if other != nid]
            picked = rng.choice(len(choices), size=peer_k, replace=False)
            for j in sorted(int(p) for p in picked):
                peers[nid].add(choices[j])
                peers[choices[j]].add(nid)
        # Connectivity repair: chain component representatives (smallest
        # member, in index order) so the graph is always one component.
        frozen = {nid: tuple(sorted(p)) for nid, p in peers.items()}
        components = connected_components(frozen, ids)
        for left, right in zip(components, components[1:]):
            peers[left[0]].add(right[0])
            peers[right[0]].add(left[0])

    return {nid: tuple(sorted(peers[nid])) for nid in ids}


def connected_components(
    peers: Mapping[str, tuple[str, ...]], nodes: Iterable[str]
) -> tuple[tuple[str, ...], ...]:
    """Connected components of the peer graph induced on ``nodes``.

    Links to nodes outside ``nodes`` are ignored (an offline or partitioned
    peer cannot relay).  Components and their members come back sorted, so
    every caller — on every node — sees the same decomposition.
    """
    members = sorted(set(nodes))
    member_set = set(members)
    seen: set[str] = set()
    components: list[tuple[str, ...]] = []
    for start in members:
        if start in seen:
            continue
        stack = [start]
        component: list[str] = []
        seen.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for peer in peers.get(node, ()):
                if peer in member_set and peer not in seen:
                    seen.add(peer)
                    stack.append(peer)
        components.append(tuple(sorted(component)))
    return tuple(sorted(components))


def is_connected(peers: Mapping[str, tuple[str, ...]]) -> bool:
    """Whether the whole peer graph is a single component."""
    return len(connected_components(peers, peers.keys())) <= 1
