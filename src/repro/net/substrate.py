"""The gossip substrate: per-node chain views orchestrated for the trainer.

:class:`GossipSubstrate` is what :class:`repro.core.fairbfl.FairBFLTrainer`
drives when the ``topology`` axis is anything but ``"global"``.  It wraps each
miner in a :class:`~repro.net.node.Node` (the miner's own chain becomes that
node's view; lock-step replication ends here), and exposes the per-round
protocol:

1. :meth:`begin_round` — apply the churn trace, compute the round's
   reachability components (peer graph ∩ partition groups ∩ online set), and
   let every component converge internally: each member adopts the
   fork-choice-best chain among its reachable peers.  This is where a healed
   partition reconciles — the losing side reorgs onto the winner (longest
   chain, seeded hash tie-break), and the caller is told so it can rebuild
   reward balances from the adopted chain.
2. :meth:`absorb_uploads` — uploads addressed to unreachable (offline) miners
   are lost; the rest land in the receiving node's mempool.
3. The trainer runs Procedures III-V *per component* (each component mines
   its own block on its own head), then calls :meth:`broadcast_block` to
   flood the block inside the component and measure the propagation latency.
4. :meth:`finish_round` — check whether every online node now shares one
   head; rounds whose block just reached network-wide agreement get their
   consensus delay resolved (simulated seconds from block creation to global
   agreement — a few gossip hops normally, whole rounds under a partition).

The substrate never draws from the trainer's RNG streams and ``"global"``
scenarios never construct one, which is what keeps the legacy single-network
path bit-identical (the migration parity pin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.blockchain.chain import Blockchain, ForkChoice
from repro.blockchain.mempool import Mempool
from repro.net.gossip import GossipNetwork
from repro.net.node import Node
from repro.net.schedule import NetSchedule
from repro.net.topology import build_peer_sets, connected_components
from repro.utils.rng import new_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blockchain.miner import Miner
    from repro.blockchain.transaction import Transaction

__all__ = ["GossipSubstrate", "NetRoundState", "BeginRoundReport"]


@dataclass(frozen=True)
class NetRoundState:
    """One round's reachability picture."""

    round_index: int
    online: tuple[str, ...]
    components: tuple[tuple[str, ...], ...]
    partition_active: bool


@dataclass(frozen=True)
class BeginRoundReport:
    """What :meth:`GossipSubstrate.begin_round` did."""

    state: NetRoundState
    reorged: bool
    synced_nodes: int
    resolved: Mapping[int, float]
    heal_latency: float


@dataclass
class GossipSubstrate:
    """Per-node chain views, gossip, partitions, and churn for one committee."""

    miners: "list[Miner]"
    topology: str
    peer_k: int = 2
    partition: str = "none"
    churn: str = "none"
    seed: int = 0
    base_latency: float = 0.05
    jitter: float = 0.25
    block_size_bytes: int = 1 << 20

    nodes: dict[str, Node] = field(init=False, repr=False)
    schedule: NetSchedule = field(init=False, repr=False)
    gossip: GossipNetwork = field(init=False, repr=False)
    fork_choice: ForkChoice = field(init=False, repr=False)
    total_reorgs: int = field(default=0, init=False)
    lost_uploads: int = field(default=0, init=False)
    #: (round, consensus delay in simulated seconds, round it resolved at).
    consensus_log: list[tuple[int, float, int]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.topology == "global":
            raise ValueError(
                "topology='global' runs the legacy single-network path; "
                "build no substrate for it"
            )
        self.miner_ids = [m.miner_id for m in self.miners]
        self.schedule = NetSchedule.parse(len(self.miners), self.partition, self.churn)
        peers = build_peer_sets(
            self.miner_ids, self.topology, peer_k=self.peer_k, seed=self.seed
        )
        self.gossip = GossipNetwork(
            peers, base_latency=self.base_latency, jitter=self.jitter
        )
        self.fork_choice = ForkChoice(salt=self.seed)
        self.nodes = {
            m.miner_id: Node(
                node_id=m.miner_id,
                chain=m.chain,
                mempool=Mempool(self.block_size_bytes),
                peers=peers[m.miner_id],
            )
            for m in self.miners
        }
        self._seed_rng = new_rng(self.seed, "net", "gossip-seeds")
        self._pending_consensus: dict[int, float] = {}

    # -- round protocol -------------------------------------------------
    def round_state(self, round_index: int) -> NetRoundState:
        """Reachability components for ``round_index`` (deterministic order)."""
        online_indices = self.schedule.online_at(round_index)
        online_ids = {self.miner_ids[i] for i in online_indices}
        for node_id, node in self.nodes.items():
            node.online = node_id in online_ids
        components: list[tuple[str, ...]] = []
        for group in self.schedule.groups_at(round_index):
            members = [
                self.miner_ids[i] for i in group if self.miner_ids[i] in online_ids
            ]
            if members:
                components.extend(connected_components(self.gossip.peers, members))
        components.sort(key=lambda c: min(self.miner_ids.index(m) for m in c))
        return NetRoundState(
            round_index=round_index,
            online=tuple(self.miner_ids[i] for i in online_indices),
            components=tuple(components),
            partition_active=self.schedule.partition_active(round_index),
        )

    def begin_round(self, round_index: int, *, sim_time: float) -> BeginRoundReport:
        """Churn + component convergence + consensus-delay resolution."""
        state = self.round_state(round_index)
        reorgs_before = self.total_reorgs
        synced = 0
        heal_latency = 0.0
        for component in state.components:
            members = [self.nodes[m] for m in component]
            best = self.fork_choice.best(n.chain for n in members)
            origin = next(n for n in members if n.chain is best)
            changed = False
            for node in members:
                if node is origin:
                    continue
                if node.sync_with(origin, self.fork_choice):
                    changed = True
                    synced += 1
            if changed and len(members) > 1:
                outcome = self.gossip.propagate(
                    origin.node_id,
                    active=component,
                    seed=int(self._seed_rng.integers(0, 2**63)),
                )
                heal_latency = max(heal_latency, outcome.max_latency)
        self.total_reorgs = sum(n.reorgs for n in self.nodes.values())
        resolved = self._resolve(round_index, sim_time + heal_latency)
        return BeginRoundReport(
            state=state,
            reorged=self.total_reorgs > reorgs_before,
            synced_nodes=synced,
            resolved=resolved,
            heal_latency=heal_latency,
        )

    def absorb_uploads(
        self,
        transactions: "Sequence[Transaction]",
        client_to_miner: Mapping[int, str],
        state: NetRoundState,
    ) -> int:
        """Route the round's upload transactions into per-node mempools.

        Uploads addressed to an offline miner are lost (the client picked its
        miner without knowing it left — an eclipse in miniature): the miner's
        gradient set is cleared so the gradients cannot re-enter the round
        through Procedure III.  Returns how many uploads were lost.
        """
        online = set(state.online)
        lost = 0
        receiver_by_client = dict(client_to_miner)
        by_sender = {}
        for tx in transactions:
            by_sender.setdefault(tx.sender, tx)
        for client_id, miner_id in receiver_by_client.items():
            tx = by_sender.get(f"client-{client_id}")
            if tx is None:
                continue
            if miner_id in online:
                self.nodes[miner_id].mempool.submit(tx)
            else:
                lost += 1
        for miner in self.miners:
            if miner.miner_id not in online and miner.gradient_set:
                miner.reset_round()
        self.lost_uploads += lost
        return lost

    def note_block(self, round_index: int, *, sim_time: float) -> None:
        """Record a block's creation time; its consensus delay resolves later."""
        self._pending_consensus.setdefault(round_index, float(sim_time))

    def commit_block(
        self, round_index: int, origin: str, component: Sequence[str], *, sim_time: float
    ) -> float:
        """Settle mempools and gossip a block just mined inside ``component``.

        Every member's chain already holds the block (Procedure V appends on
        each replica it ran over); what remains is mempool hygiene, the
        consensus-delay bookkeeping, and the flood that measures propagation
        latency.  Returns the flood's max delivery latency in simulated
        seconds.
        """
        for member in component:
            node = self.nodes[member]
            node.mempool.evict_included(node.chain)
            node.mempool.evict_older_than(round_index)
        self.note_block(round_index, sim_time=sim_time)
        return self.broadcast_block(origin, component)

    def broadcast_block(
        self, origin: str, component: Sequence[str]
    ) -> float:
        """Flood the freshly mined block inside its component; return max latency."""
        if len(component) <= 1:
            return 0.0
        outcome = self.gossip.propagate(
            origin,
            active=component,
            seed=int(self._seed_rng.integers(0, 2**63)),
        )
        return outcome.max_latency

    def finish_round(
        self, round_index: int, *, sim_time: float, latency: float = 0.0
    ) -> Mapping[int, float]:
        """Resolve consensus delays for rounds the network now agrees on."""
        return self._resolve(round_index, sim_time + latency)

    def _resolve(self, resolved_at_round: int, resolution_time: float) -> dict[int, float]:
        if not self._pending_consensus or self.chain_views() != 1:
            return {}
        resolved = {}
        for r in sorted(self._pending_consensus):
            created = self._pending_consensus.pop(r)
            delay = max(0.0, resolution_time - created)
            resolved[r] = delay
            self.consensus_log.append((r, delay, resolved_at_round))
        return resolved

    # -- views ----------------------------------------------------------
    def online_nodes(self) -> list[Node]:
        """The nodes currently online (per the flags set by :meth:`round_state`)."""
        return [n for n in self.nodes.values() if n.online]

    def best_chain(self) -> Blockchain:
        """The fork-choice-best view among online nodes — the canonical chain."""
        candidates = self.online_nodes() or list(self.nodes.values())
        return self.fork_choice.best(n.chain for n in candidates)

    def chain_views(self) -> int:
        """Number of distinct chain heads among online nodes."""
        nodes = self.online_nodes() or list(self.nodes.values())
        return len({n.head_hash for n in nodes})

    def mempool_pending(self) -> int:
        """Transactions queued across every node's mempool."""
        return sum(n.mempool.pending_count for n in self.nodes.values())
