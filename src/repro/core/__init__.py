"""FAIR-BFL core: the paper's primary contribution.

* :mod:`repro.core.config` — the orchestrator's configuration dataclass;
* :mod:`repro.core.procedures` — the five procedures of Algorithm 1 as
  composable functions (the modular design behind the flexibility claim);
* :mod:`repro.core.fairbfl` — the FAIR-BFL orchestrator tying learning,
  incentive, and ledger together round by round;
* :mod:`repro.core.flexibility` — functional scaling: full BFL, FL-only
  (drop Procedures III & V), chain-only (drop Procedures I & IV);
* :mod:`repro.core.convergence` — the paper's convergence criterion and the
  Theorem 3.1 bound;
* :mod:`repro.core.experiment` — experiment runner utilities shared by the
  examples and benchmark harness;
* :mod:`repro.core.results` — cross-system comparison containers.
"""

from repro.core.config import FairBFLConfig
from repro.core.convergence import (
    ConvergenceCriterion,
    theorem31_bound,
    theorem31_constants,
)
from repro.core.fairbfl import FairBFLTrainer
from repro.core.flexibility import OperatingMode, procedures_for_mode
from repro.core.experiment import (
    ExperimentSuite,
    build_federated_dataset,
    run_fairbfl,
    run_fedavg,
    run_fedprox,
    run_vanilla_blockchain,
)
from repro.core.results import ComparisonResult, summarize_history

__all__ = [
    "FairBFLConfig",
    "ConvergenceCriterion",
    "theorem31_bound",
    "theorem31_constants",
    "FairBFLTrainer",
    "OperatingMode",
    "procedures_for_mode",
    "ExperimentSuite",
    "build_federated_dataset",
    "run_fairbfl",
    "run_fedavg",
    "run_fedprox",
    "run_vanilla_blockchain",
    "ComparisonResult",
    "summarize_history",
]
