"""Exporting run results.

Training histories and comparison tables can be exported to JSON or CSV so
downstream analysis (plotting, statistics) does not need to re-run the
simulation.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.core.results import ComparisonResult
from repro.fl.history import RoundRecord, TrainingHistory

__all__ = [
    "history_to_records",
    "save_history_json",
    "load_history_json",
    "save_history_csv",
    "save_comparison_csv",
]

_ROUND_FIELDS = (
    "round_index",
    "delay",
    "accuracy",
    "train_loss",
    "elapsed_time",
    "participants",
    "discarded",
    "attackers",
    "rewards",
)


def history_to_records(history: TrainingHistory) -> list[dict]:
    """Plain-dict rows (one per round) for a training history."""
    rows = []
    for record in history.rounds:
        rows.append(
            {
                "round_index": record.round_index,
                "delay": record.delay,
                "accuracy": record.accuracy,
                "train_loss": record.train_loss,
                "elapsed_time": record.elapsed_time,
                "participants": list(record.participants),
                "discarded": list(record.discarded),
                "attackers": list(record.attackers),
                "rewards": {str(k): float(v) for k, v in record.rewards.items()},
            }
        )
    return rows


def save_history_json(history: TrainingHistory, path: str | Path) -> Path:
    """Write a training history to ``path`` as JSON; returns the path."""
    path = Path(path)
    payload = {"label": history.label, "rounds": history_to_records(history)}
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def load_history_json(path: str | Path) -> TrainingHistory:
    """Load a training history written by :func:`save_history_json`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    history = TrainingHistory(label=data.get("label", "run"))
    for row in data.get("rounds", []):
        history.append(
            RoundRecord(
                round_index=int(row["round_index"]),
                delay=float(row["delay"]),
                accuracy=float(row["accuracy"]),
                train_loss=float(row.get("train_loss", 0.0)),
                elapsed_time=float(row.get("elapsed_time", 0.0)),
                participants=[int(x) for x in row.get("participants", [])],
                discarded=[int(x) for x in row.get("discarded", [])],
                attackers=[int(x) for x in row.get("attackers", [])],
                rewards={int(k): float(v) for k, v in row.get("rewards", {}).items()},
            )
        )
    return history


def save_history_csv(history: TrainingHistory, path: str | Path) -> Path:
    """Write the per-round scalar series of a history to a CSV file."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["round_index", "delay", "accuracy", "train_loss", "elapsed_time"])
        for record in history.rounds:
            writer.writerow(
                [record.round_index, record.delay, record.accuracy, record.train_loss, record.elapsed_time]
            )
    return path


def save_comparison_csv(table: ComparisonResult, path: str | Path) -> Path:
    """Write a :class:`~repro.core.results.ComparisonResult` to a CSV file."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows)
    return path
