"""Flexibility by design (paper Section 4).

FAIR-BFL's five procedures can be "coupled flexibly and dynamically":

* removing Procedures I and IV leaves a pure blockchain
  (:attr:`OperatingMode.CHAIN_ONLY`);
* removing Procedures III and V leaves a pure FL system
  (:attr:`OperatingMode.FL_ONLY`);
* keeping all five gives full FAIR-BFL (:attr:`OperatingMode.BFL`).

The orchestrator consults :func:`procedures_for_mode` every round, so an
adopter can even switch modes mid-run ("when business shrinks, adopters may
expect to quickly switch from BFL to degraded versions").
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Procedure", "OperatingMode", "procedures_for_mode"]


class Procedure(str, Enum):
    """The five procedures of Algorithm 1 / Figure 3."""

    LOCAL_UPDATE = "I-local-learning-and-update"
    UPLOAD = "II-uploading-gradients"
    EXCHANGE = "III-exchanging-gradients"
    GLOBAL_UPDATE = "IV-computing-global-updates"
    MINING = "V-block-mining-and-consensus"


class OperatingMode(str, Enum):
    """Functional-scaling modes of FAIR-BFL."""

    BFL = "bfl"
    FL_ONLY = "fl_only"
    CHAIN_ONLY = "chain_only"

    @classmethod
    def parse(cls, value: "OperatingMode | str") -> "OperatingMode":
        """Accept either the enum or its string value."""
        if isinstance(value, OperatingMode):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError as exc:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown operating mode {value!r}; expected one of: {valid}") from exc


#: Which procedures run in each mode (Figure 3's dashed rectangles).
_MODE_PROCEDURES: dict[OperatingMode, tuple[Procedure, ...]] = {
    OperatingMode.BFL: (
        Procedure.LOCAL_UPDATE,
        Procedure.UPLOAD,
        Procedure.EXCHANGE,
        Procedure.GLOBAL_UPDATE,
        Procedure.MINING,
    ),
    OperatingMode.FL_ONLY: (
        Procedure.LOCAL_UPDATE,
        Procedure.UPLOAD,
        Procedure.GLOBAL_UPDATE,
    ),
    OperatingMode.CHAIN_ONLY: (
        Procedure.UPLOAD,
        Procedure.EXCHANGE,
        Procedure.MINING,
    ),
}


def procedures_for_mode(mode: OperatingMode | str) -> tuple[Procedure, ...]:
    """The ordered procedures executed per round under ``mode``."""
    return _MODE_PROCEDURES[OperatingMode.parse(mode)]
