"""Configuration of the FAIR-BFL orchestrator.

Defaults follow the paper's Section 5.1: ``n = 100`` clients, ``m = 2``
miners, ``η = 0.01``, ``E = 5``, ``B = 10``, non-IID data, 100 communication
rounds, DBSCAN-based contribution identification.

This class is the *authoritative* validator for the FAIR-BFL systems: the
registered systems build it from a scenario via
``ScenarioSpec.fairbfl_config()``, which is how scenario validation stays in
lockstep with the rules enforced here (see :mod:`repro.systems`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.gradient_attacks import ATTACKS
from repro.core.flexibility import OperatingMode
from repro.fl.client import LocalTrainingConfig
from repro.fl.robust import check_defense
from repro.incentive.contribution import ContributionConfig
from repro.net.schedule import parse_churn, parse_partition
from repro.net.topology import TOPOLOGIES
from repro.sim.delay import DelayParameters
from repro.sim.rounds import ROUND_MODES
from repro.utils.validation import check_executor_settings, check_probability

__all__ = ["FairBFLConfig"]


@dataclass(frozen=True)
class FairBFLConfig:
    """All knobs of a FAIR-BFL run.

    Attributes
    ----------
    num_miners:
        Number of miners ``m``.
    num_rounds:
        Number of communication rounds.
    participation_fraction:
        The selection ratio ``λ`` (Algorithm 1 line 3).
    local:
        Local-training hyper-parameters (``E``, ``B``, ``η``).
    model_name, hidden_sizes:
        Client/global model architecture.
    contribution:
        Algorithm 2 configuration (clustering algorithm, base reward).
    strategy:
        ``"keep"`` (FAIR) or ``"discard"`` (FAIR-Discard).
    use_fair_aggregation:
        Whether Equation (1) reweights the final aggregation (True) or the
        simple average is kept (False; ablation).
    mode:
        Operating mode (full BFL by default; see
        :class:`repro.core.flexibility.OperatingMode`).
    round_mode:
        Round synchronisation discipline (see
        :mod:`repro.sim.rounds`): ``"sync"`` waits for every selected client,
        ``"semi_sync"`` closes the upload window at ``straggler_deadline``
        simulated seconds and drops later arrivals from the round,
        ``"async"`` proceeds once ``async_quorum`` of the arrivals are in and
        folds the stragglers into the next round with staleness-decayed
        weights.
    straggler_deadline:
        Upload-window deadline in simulated seconds (``semi_sync`` only).
    async_quorum:
        Fraction of selected clients whose arrival closes the window
        (``async`` only).
    staleness_decay:
        Exponent of the ``(1 + staleness) ** -decay`` weight applied to late
        updates in ``async`` mode (see
        :func:`repro.fl.aggregation.staleness_weights`).
    enable_attacks:
        Whether an :class:`~repro.attacks.scheduler.AttackScheduler` designates
        malicious clients each round (Table 2 protocol).
    attack_name / min_attackers / max_attackers:
        Attack configuration when attacks are enabled (see
        :data:`repro.attacks.ATTACKS`).
    defense:
        Robust-aggregation defense the stacked gradient matrix passes through
        before Procedure II — ``"none"``, a primitive from
        :data:`repro.fl.robust.DEFENSES`, or a ``"+"``-chained pipeline such
        as ``"norm_clip+krum"`` (see ``docs/threat_model.md``).
    defense_fraction:
        Adversary fraction the defense is sized for (Krum's selection count,
        the trimmed mean's trim width); must lie in [0, 0.5).
    verify_signatures:
        Whether gradient uploads are RSA-signed and verified (Figure 2 path).
    use_real_pow:
        When True, the winning miner actually grinds a nonce at
        ``pow_difficulty`` (functional proof of work); the round *timing*
        always comes from the stochastic delay model either way.
    pow_difficulty:
        Difficulty of the functional proof of work (kept tiny by default).
    delay_params:
        Calibration constants of the delay model.
    executor_backend:
        How Procedure I fans out over the selected clients: ``"serial"``
        (default; bit-identical to the original loop), ``"thread"`` or
        ``"process"``.  All backends are deterministic because every client
        draws from its own seeded RNG stream; see
        :class:`repro.runner.executor.ParallelExecutor`.
    executor_workers:
        Worker count for the thread/process backends (``None`` = CPU count).
    topology:
        Committee network shape (see :data:`repro.net.topology.TOPOLOGIES`):
        ``"global"`` keeps the legacy single broadcast network (bit-identical
        to earlier releases); ``"full"``, ``"ring"`` and ``"random_k"`` give
        every miner its own peer set, mempool and chain view over seeded
        flooding gossip (see :mod:`repro.net`).
    peer_k:
        Seeded peers drawn per node under ``topology="random_k"``.
    partition:
        Timed network splits, e.g. ``"2-4:0|1"`` — see
        :func:`repro.net.schedule.parse_partition` for the grammar.  Requires
        a non-``global`` topology.
    churn:
        Node arrival/departure trace, e.g. ``"1:-0;3:+0"`` — see
        :func:`repro.net.schedule.parse_churn`.  Requires a non-``global``
        topology.
    seed:
        Experiment seed (controls everything: data split, selection, attacks,
        delays, mining winners).
    """

    num_miners: int = 2
    num_rounds: int = 100
    participation_fraction: float = 0.1
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    model_name: str = "mlp"
    hidden_sizes: tuple[int, ...] = (64,)
    contribution: ContributionConfig = field(default_factory=ContributionConfig)
    strategy: str = "keep"
    use_fair_aggregation: bool = True
    mode: OperatingMode | str = OperatingMode.BFL
    round_mode: str = "sync"
    straggler_deadline: float = 6.0
    async_quorum: float = 0.5
    staleness_decay: float = 0.5
    enable_attacks: bool = False
    attack_name: str = "sign_flip"
    min_attackers: int = 1
    max_attackers: int = 3
    defense: str = "none"
    defense_fraction: float = 0.2
    verify_signatures: bool = True
    use_real_pow: bool = True
    pow_difficulty: float = 16.0
    delay_params: DelayParameters = field(default_factory=DelayParameters)
    executor_backend: str = "serial"
    executor_workers: int | None = None
    topology: str = "global"
    peer_k: int = 2
    partition: str = "none"
    churn: str = "none"
    seed: int = 0

    def __post_init__(self) -> None:
        check_executor_settings(self.executor_backend, self.executor_workers)
        if self.num_miners <= 0:
            raise ValueError(f"num_miners must be positive, got {self.num_miners}")
        if self.num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {self.num_rounds}")
        check_probability("participation_fraction", self.participation_fraction)
        if self.participation_fraction == 0.0:
            raise ValueError("participation_fraction must be > 0")
        if self.strategy not in {"keep", "discard"}:
            raise ValueError(f"strategy must be 'keep' or 'discard', got {self.strategy!r}")
        if self.pow_difficulty < 1.0:
            raise ValueError(f"pow_difficulty must be >= 1, got {self.pow_difficulty}")
        if self.min_attackers < 0 or self.max_attackers < self.min_attackers:
            raise ValueError(
                f"invalid attacker bounds ({self.min_attackers}, {self.max_attackers})"
            )
        if self.attack_name not in ATTACKS:
            raise ValueError(
                f"attack_name must be one of {', '.join(ATTACKS)}, got {self.attack_name!r}"
            )
        if not (0.0 <= self.defense_fraction < 0.5):
            raise ValueError(
                f"defense_fraction must lie in [0, 0.5), got {self.defense_fraction}"
            )
        check_defense(self.defense, self.defense_fraction)
        if self.round_mode not in ROUND_MODES:
            raise ValueError(
                f"round_mode must be one of {', '.join(ROUND_MODES)}, got {self.round_mode!r}"
            )
        if self.straggler_deadline <= 0.0:
            raise ValueError(
                f"straggler_deadline must be positive, got {self.straggler_deadline}"
            )
        if not (0.0 < self.async_quorum <= 1.0):
            raise ValueError(f"async_quorum must lie in (0, 1], got {self.async_quorum}")
        if self.staleness_decay < 0.0:
            raise ValueError(f"staleness_decay must be >= 0, got {self.staleness_decay}")
        # Validate the mode eagerly so misconfiguration fails at construction.
        mode = OperatingMode.parse(self.mode)
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {', '.join(TOPOLOGIES)}, got {self.topology!r}"
            )
        if self.topology == "global":
            if (self.partition or "none") != "none":
                raise ValueError(
                    "partition requires a non-'global' topology (the legacy "
                    "single-network path cannot split)"
                )
            if (self.churn or "none") != "none":
                raise ValueError(
                    "churn requires a non-'global' topology (the legacy "
                    "single-network path has no per-node liveness)"
                )
        else:
            if mode == OperatingMode.FL_ONLY:
                raise ValueError(
                    "non-'global' topologies need the blockchain procedures; "
                    "mode='fl_only' has no miners to gossip between"
                )
            if self.round_mode != "sync":
                raise ValueError(
                    "non-'global' topologies currently require round_mode='sync' "
                    f"(got {self.round_mode!r})"
                )
            if self.topology == "random_k" and not (
                1 <= self.peer_k < max(self.num_miners, 2)
            ):
                raise ValueError(
                    f"peer_k must lie in [1, num_miners) for topology='random_k', "
                    f"got peer_k={self.peer_k} with {self.num_miners} miners"
                )
            # Eagerly parse both axis strings so a malformed window or an
            # all-offline churn trace fails at construction, not mid-run.
            parse_partition(self.partition, self.num_miners)
            parse_churn(self.churn, self.num_miners)

    @property
    def operating_mode(self) -> OperatingMode:
        """The parsed operating mode."""
        return OperatingMode.parse(self.mode)
