"""The five procedures of Algorithm 1 as composable functions.

Each procedure takes a :class:`RoundContext` (the mutable state of one
communication round) and the shared system objects it needs, performs its step,
and returns the context.  The orchestrator
(:class:`repro.core.fairbfl.FairBFLTrainer`) simply executes the procedures
listed by :func:`repro.core.flexibility.procedures_for_mode`, which is what
makes the functional-scaling claim concrete in code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blockchain.block import Block
from repro.blockchain.miner import Miner
from repro.blockchain.pow import sample_winner
from repro.blockchain.transaction import (
    Transaction,
    make_global_update_transaction,
    make_gradient_transaction,
    make_reward_transaction,
)
from repro.crypto.keystore import KeyStore
from repro.fl.aggregation import simple_average
from repro.fl.client import ClientUpdate, FLClient, LocalTrainingConfig
from repro.incentive.contribution import ContributionConfig, ContributionReport, identify_contributions
from repro.incentive.distance import cosine_distance_to_reference
from repro.incentive.rewards import RewardEntry
from repro.incentive.strategies import Strategy, StrategyOutcome

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.robust import RobustAggregator
    from repro.runner.executor import ParallelExecutor
    from repro.sim.rounds import RoundTiming

__all__ = [
    "RoundContext",
    "procedure_local_update",
    "procedure_upload",
    "procedure_exchange",
    "procedure_global_update",
    "procedure_mining",
    "apply_round_mode",
]


@dataclass
class RoundContext:
    """Mutable state threaded through one communication round."""

    round_index: int
    global_parameters: np.ndarray
    selected_clients: list[int] = field(default_factory=list)
    updates: list[ClientUpdate] = field(default_factory=list)
    attacker_ids: list[int] = field(default_factory=list)
    transactions: list[Transaction] = field(default_factory=list)
    client_to_miner: dict[int, str] = field(default_factory=dict)
    gradient_matrix: np.ndarray | None = None
    gradient_client_ids: list[int] = field(default_factory=list)
    new_global_parameters: np.ndarray | None = None
    contribution_report: ContributionReport | None = None
    strategy_outcome: StrategyOutcome | None = None
    reward_list: list[RewardEntry] = field(default_factory=list)
    winning_miner: str | None = None
    mined_block: Block | None = None
    rejected_uploads: int = 0
    straggler_ids: list[int] = field(default_factory=list)
    stale_applied: int = 0
    stale_rejected: int = 0
    defense_rejected_ids: list[int] = field(default_factory=list)
    defense_clipped: int = 0


# -- Procedure I ------------------------------------------------------------
def procedure_local_update(
    ctx: RoundContext,
    clients: dict[int, FLClient],
    local_config: LocalTrainingConfig,
    executor: "ParallelExecutor | None" = None,
) -> RoundContext:
    """Every selected client trains locally starting from the latest global parameters.

    With ``executor=None`` the clients run in the original serial loop; an
    explicit :class:`~repro.runner.executor.ParallelExecutor` fans the same
    per-client work out over its backend.  Updates are always returned in
    selection order and every stochastic draw comes from the owning client's
    private RNG stream, so the backend cannot change the numbers.
    """
    if executor is None:
        ctx.updates = [
            clients[cid].local_update(ctx.global_parameters, local_config)
            for cid in ctx.selected_clients
        ]
    else:
        ctx.updates = executor.run_local_updates(
            clients, ctx.selected_clients, ctx.global_parameters, local_config
        )
    return ctx


def apply_round_mode(
    ctx: RoundContext, timing: "RoundTiming", round_mode: str
) -> list[ClientUpdate]:
    """Partition the round's updates by their simulated upload arrival.

    Under ``sync`` every update is on time and the list returned is empty.
    Under ``semi_sync``/``async`` the updates of clients that missed the
    upload window (per ``timing.on_time_ids``) are removed from
    ``ctx.updates`` — they never reach a miner this round — and returned to
    the caller, which drops them (semi-sync stragglers, recorded in
    ``ctx.straggler_ids``) or buffers them for staleness-weighted aggregation
    in a later round (async).
    """
    if round_mode == "sync" or not ctx.updates:
        return []
    on_time = set(timing.on_time_ids)
    late = [u for u in ctx.updates if u.client_id not in on_time]
    if late:
        ctx.updates = [u for u in ctx.updates if u.client_id in on_time]
        ctx.straggler_ids = [u.client_id for u in late]
    return late


# -- Procedure II ------------------------------------------------------------
def procedure_upload(
    ctx: RoundContext,
    miners: list[Miner],
    keystore: KeyStore | None,
    rng: np.random.Generator,
    *,
    client_id_formatter=lambda cid: f"client-{cid}",
) -> RoundContext:
    """Each client signs its update and uploads it to a uniformly random miner."""
    for miner in miners:
        miner.reset_round()
    ctx.rejected_uploads = 0
    for update in ctx.updates:
        sender = client_id_formatter(update.client_id)
        tx = make_gradient_transaction(
            sender,
            ctx.round_index,
            update.parameters,
            keystore=keystore,
            client_index=update.client_id,
        )
        ctx.transactions.append(tx)
        miner_index = int(rng.integers(0, len(miners)))
        miner = miners[miner_index]
        ctx.client_to_miner[update.client_id] = miner.miner_id
        accepted = miner.receive_upload(tx)
        if not accepted:
            ctx.rejected_uploads += 1
    return ctx


# -- Procedure III -----------------------------------------------------------
def procedure_exchange(ctx: RoundContext, miners: list[Miner]) -> RoundContext:
    """Miners broadcast and merge gradient sets until all hold the same set."""
    if len(miners) > 1:
        # One all-to-all pass is sufficient in the synchronous model: every
        # miner merges every other miner's set.
        snapshots = {m.miner_id: dict(m.gradient_set) for m in miners}
        for miner in miners:
            for other_id, other_set in snapshots.items():
                if other_id != miner.miner_id:
                    miner.merge_gradient_set(other_set)
    reference = miners[0]
    senders, matrix = reference.gradient_vectors()
    ctx.gradient_client_ids = [
        int(tx.metadata.get("client_index", -1))
        for tx in sorted(reference.gradient_set.values(), key=lambda t: t.sender)
    ]
    ctx.gradient_matrix = matrix
    return ctx


# -- Procedure IV ------------------------------------------------------------
def procedure_global_update(
    ctx: RoundContext,
    *,
    contribution_config: ContributionConfig | None,
    strategy: Strategy | None,
    use_fair_aggregation: bool = True,
    run_incentive: bool = True,
    defense: "RobustAggregator | None" = None,
) -> RoundContext:
    """Aggregate the gradient set, identify contributions, apply the strategy.

    Mirrors Algorithm 1 lines 23-27: first the simple average (line 24), then
    Algorithm 2 (line 26), then fair aggregation / the strategy (line 27).

    When a ``defense`` is configured the stacked matrix first passes through
    the robust-aggregation pipeline (clip → filter → aggregate) in direction
    space: rows the defense rejects leave the round entirely (no contribution,
    no reward; recorded in ``ctx.defense_rejected_ids``), clipped rows replace
    their originals, and the robust aggregate stands in for the line-24 simple
    average as Algorithm 2's reference.  Filtering defenses then compose with
    Equation (1) over the survivors; aggregate-replacing defenses (median,
    trimmed mean) fix the global update themselves while Procedure II keeps
    its detection/reward side effects.
    """
    if ctx.gradient_matrix is None or ctx.gradient_matrix.shape[0] == 0:
        # No gradients arrived (all rejected); the global model is unchanged.
        ctx.new_global_parameters = np.asarray(ctx.global_parameters, dtype=np.float64).copy()
        return ctx

    matrix = ctx.gradient_matrix
    client_ids = ctx.gradient_client_ids
    previous = np.asarray(ctx.global_parameters, dtype=np.float64)

    if defense is not None:
        outcome = defense.apply(matrix - previous[None, :])
        kept = set(outcome.kept_indices)
        ctx.defense_rejected_ids = [
            int(cid) for i, cid in enumerate(client_ids) if i not in kept
        ]
        ctx.defense_clipped = outcome.clipped
        matrix = previous[None, :] + outcome.deltas
        client_ids = [int(client_ids[i]) for i in outcome.kept_indices]
        # Downstream consumers (rewards, detection accounting, async
        # bookkeeping) must see the post-defense gradient set.
        ctx.gradient_matrix = matrix
        ctx.gradient_client_ids = client_ids
        base_global = previous + outcome.aggregate
    else:
        base_global = simple_average(matrix)

    if not run_incentive or contribution_config is None or strategy is None:
        ctx.new_global_parameters = base_global
        return ctx

    # Contribution identification works on the round's *update directions*
    # w^i_{r+1} - w_r (the paper calls the uploaded quantities "gradients"):
    # the shared starting point w_r would otherwise dominate the cosine
    # geometry and hide the per-client differences Algorithm 2 relies on.
    deltas = matrix - previous[None, :]
    global_delta = base_global - previous
    report = identify_contributions(deltas, client_ids, global_delta, contribution_config)
    # Equation (1) weights use θ computed on the uploaded vectors themselves
    # (the literal W^k_{r+1} of Algorithm 2); those distances are small and
    # nearly uniform, which reproduces the paper's observation that FAIR-BFL's
    # accuracy tracks FedAvg.  The direction-space θ above drive detection,
    # discarding, and rewards, where discrimination between clients is the point.
    agg_theta_values = cosine_distance_to_reference(matrix, base_global)
    outcome = strategy.apply(
        matrix,
        client_ids,
        base_global,
        report,
        use_fair_aggregation=use_fair_aggregation,
        # Row-aligned θ vector: the strategies consume it directly, without a
        # per-client dict round-trip.
        aggregation_thetas=agg_theta_values,
    )
    ctx.contribution_report = report
    ctx.strategy_outcome = outcome
    ctx.reward_list = report.reward_list
    ctx.new_global_parameters = outcome.global_update
    if defense is not None and defense.replaces_aggregation:
        # Median / trimmed mean ARE the aggregation rule: Procedure II ran for
        # its detection, reward, and discard side effects, but the round's
        # global update is the robust aggregate itself.
        ctx.new_global_parameters = base_global
    return ctx


# -- Procedure V -------------------------------------------------------------
def procedure_mining(
    ctx: RoundContext,
    miners: list[Miner],
    keystore: KeyStore | None,
    rng: np.random.Generator,
    *,
    use_real_pow: bool = True,
    pow_difficulty: float = 16.0,
    timestamp: float = 0.0,
) -> RoundContext:
    """Run the mining competition and commit the round's block on every replica.

    The block carries exactly the global update and the reward list
    (Assumption 2), so one block finalises the round on all replicas and no
    fork can arise.
    """
    if ctx.new_global_parameters is None:
        raise RuntimeError("procedure_mining called before procedure_global_update")
    winner_id, _solve_time = sample_winner(
        rng, [m.miner_id for m in miners], difficulty=max(1.0, pow_difficulty)
    )
    winner = next(m for m in miners if m.miner_id == winner_id)
    ctx.winning_miner = winner_id

    block_txs: list[Transaction] = [
        make_global_update_transaction(
            winner_id, ctx.round_index, ctx.new_global_parameters, keystore=keystore
        )
    ]
    for entry in ctx.reward_list:
        block_txs.append(
            make_reward_transaction(
                winner_id,
                ctx.round_index,
                f"client-{entry.client_id}",
                entry.reward,
                contribution_label=entry.label,
                keystore=keystore,
            )
        )
    block = winner.build_block(
        ctx.round_index, block_txs, timestamp=timestamp,
        difficulty=pow_difficulty if use_real_pow else 1.0,
    )
    if use_real_pow:
        winner.mine(block, difficulty=pow_difficulty)
    for miner in miners:
        miner.accept_block(block)
    ctx.mined_block = block
    return ctx
