"""Convergence: the empirical criterion and the Theorem 3.1 bound.

* :class:`ConvergenceCriterion` implements the paper's empirical rule:
  "We consider the model as converged when the accuracy in change is within
  0.5% for 5 consecutive communication rounds" (Section 5.2).
* :func:`theorem31_bound` evaluates the right-hand side of Theorem 3.1,

  .. math::

     \\mathbb{E}[F(w_r)] - F^* \\le \\frac{\\kappa}{\\gamma + r}
     \\left( \\frac{2(B + C)}{\\mu} + \\frac{\\mu (\\gamma + 1)}{2}
     \\lVert w_1 - w^* \\rVert^2 \\right),

  with κ = L/μ, γ = max(8κ, E) and C = 4G²E²/K.  The theory benchmark checks
  that SGD on a strongly convex objective stays under this bound and that the
  bound itself decreases in ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["ConvergenceCriterion", "theorem31_constants", "theorem31_bound"]


@dataclass
class ConvergenceCriterion:
    """The paper's accuracy-plateau convergence detector.

    Attributes
    ----------
    tolerance:
        Maximum absolute accuracy change counted as "no change" (paper: 0.005).
    window:
        Number of consecutive small-change rounds required (paper: 5).
    """

    tolerance: float = 0.005
    window: int = 5

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {self.tolerance}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def converged_at(self, accuracies: np.ndarray | list[float]) -> int | None:
        """Index of the first round at which the criterion is met (None if never).

        The returned index is the last round of the qualifying window.
        """
        acc = np.asarray(accuracies, dtype=np.float64).ravel()
        if acc.shape[0] < self.window + 1:
            return None
        diffs = np.abs(np.diff(acc))
        run = 0
        for i, d in enumerate(diffs):
            run = run + 1 if d <= self.tolerance else 0
            if run >= self.window:
                return i + 1
        return None

    def has_converged(self, accuracies: np.ndarray | list[float]) -> bool:
        """True when the criterion is met anywhere in the series."""
        return self.converged_at(accuracies) is not None


def theorem31_constants(
    *,
    smoothness: float,
    strong_convexity: float,
    gradient_bound: float,
    local_epochs: int,
    num_selected: int,
    variance_bound: float = 0.0,
) -> dict[str, float]:
    """Derive the constants of Theorem 3.1 from the assumption parameters.

    Parameters
    ----------
    smoothness:
        L of Assumption 3.
    strong_convexity:
        μ of Assumption 4.
    gradient_bound:
        G of Assumption 6 (expected squared norm bound is G²).
    local_epochs:
        E, the number of local epochs between aggregations.
    num_selected:
        K, the number of clients sampled per round.
    variance_bound:
        Aggregate of the per-client σ_i² terms of Assumption 5 entering B.
    """
    L = check_positive("smoothness", smoothness)
    mu = check_positive("strong_convexity", strong_convexity)
    if L < mu:
        raise ValueError(f"smoothness L ({L}) must be >= strong convexity mu ({mu})")
    G = check_positive("gradient_bound", gradient_bound)
    if local_epochs < 1:
        raise ValueError(f"local_epochs must be >= 1, got {local_epochs}")
    if num_selected < 1:
        raise ValueError(f"num_selected must be >= 1, got {num_selected}")
    kappa = L / mu
    gamma = max(8.0 * kappa, float(local_epochs))
    c_const = 4.0 / num_selected * (local_epochs**2) * (G**2)
    b_const = float(variance_bound) + 8.0 * (local_epochs - 1) ** 2 * G**2
    return {
        "kappa": kappa,
        "gamma": gamma,
        "B": b_const,
        "C": c_const,
        "mu": mu,
        "L": L,
    }


def theorem31_bound(
    round_index: int,
    *,
    constants: dict[str, float],
    initial_distance_sq: float,
) -> float:
    """Evaluate the Theorem 3.1 upper bound on ``E[F(w_r)] - F*`` at ``round_index``.

    Parameters
    ----------
    round_index:
        The communication round r (>= 1).
    constants:
        Output of :func:`theorem31_constants`.
    initial_distance_sq:
        ``||w_1 - w*||²``.
    """
    if round_index < 1:
        raise ValueError(f"round_index must be >= 1, got {round_index}")
    if initial_distance_sq < 0:
        raise ValueError(f"initial_distance_sq must be >= 0, got {initial_distance_sq}")
    kappa = constants["kappa"]
    gamma = constants["gamma"]
    mu = constants["mu"]
    b_plus_c = constants["B"] + constants["C"]
    return (kappa / (gamma + round_index)) * (
        2.0 * b_plus_c / mu + mu * (gamma + 1.0) / 2.0 * initial_distance_sq
    )
