"""Experiment-runner utilities shared by the examples and the benchmark harness.

These helpers standardise how the paper's experimental setup is instantiated
(dataset size, partitioning scheme, hyper-parameters) so every figure is
regenerated from the same building blocks, differing only in the swept
parameter.

The ``run_*`` helpers are the hand-wired legacy entry points kept for the
focused tests and examples that construct trainers directly; scenario-driven
call sites (benchmarks, CLI, scripts) should go through :mod:`repro.api`,
whose engine dispatches via the system registry (:mod:`repro.systems`) —
``ExperimentSuite.run()`` already routes that way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import FairBFLConfig
from repro.core.fairbfl import FairBFLTrainer
from repro.datasets.federated import ClientDataset, FederatedDataset, inject_label_noise
from repro.datasets.synthetic_mnist import load_synthetic_mnist
from repro.fl.client import LocalTrainingConfig
from repro.fl.fedavg import FedAvgConfig, FedAvgTrainer
from repro.fl.fedprox import FedProxConfig, FedProxTrainer
from repro.fl.history import TrainingHistory
from repro.runner.scenario import ScenarioSpec
from repro.sim.delay import DelayParameters
from repro.sim.vanilla_blockchain import VanillaBlockchainConfig, VanillaBlockchainSimulator
from repro.utils.rng import new_rng

__all__ = [
    "ExperimentSuite",
    "build_federated_dataset",
    "run_fairbfl",
    "run_fedavg",
    "run_fedprox",
    "run_vanilla_blockchain",
]


def build_federated_dataset(
    *,
    num_clients: int = 100,
    num_samples: int = 4000,
    scheme: str = "dirichlet",
    alpha: float = 0.5,
    shards_per_client: int = 2,
    seed: int = 0,
    noise_std: float = 0.4,
    low_quality_fraction: float = 0.0,
    low_quality_noise: float = 0.6,
    distinct_shards: int = 0,
) -> FederatedDataset:
    """Generate the synthetic-MNIST federated dataset used by all experiments.

    The default non-IID scheme is a Dirichlet label split with ``alpha = 0.5``
    (the paper only says data follows "non-IID dynamics"); the pathological
    2-shard split remains available via ``scheme="shard"``.  Setting
    ``low_quality_fraction > 0`` corrupts that fraction of clients with label
    noise, producing the low-quality contributors the discard strategy of
    Section 5.3 is designed to filter out.

    ``distinct_shards`` caps the number of *distinct* client shards: when
    ``0 < distinct_shards < num_clients`` only that many archetype shards are
    synthesised (with any label noise applied to the archetypes) and the
    population is filled by assigning them cyclically as array *views* — the
    only way a 100k–1M-client population fits in memory.  ``0`` (the default)
    keeps one distinct shard per client.
    """
    if not (0 <= int(distinct_shards) <= int(num_clients)):
        raise ValueError(
            f"distinct_shards must lie in [0, num_clients={num_clients}], "
            f"got {distinct_shards}"
        )
    shard_count = int(distinct_shards) or int(num_clients)
    dataset = load_synthetic_mnist(num_samples, seed=seed, noise_std=noise_std)
    fed = FederatedDataset.from_dataset(
        dataset,
        shard_count,
        new_rng(seed, "partition", scheme, shard_count),
        scheme=scheme,
        alpha=alpha,
        shards_per_client=shards_per_client,
    )
    if low_quality_fraction > 0.0:
        # Noise goes onto the archetypes, *before* replication, so every
        # replica of a low-quality shard is identically corrupted.
        inject_label_noise(
            fed,
            new_rng(seed, "label-noise", scheme, shard_count),
            client_fraction=low_quality_fraction,
            noise_level=low_quality_noise,
        )
    if shard_count < int(num_clients):
        fed = _replicate_shards(fed, int(num_clients))
    return fed


def _replicate_shards(fed: FederatedDataset, num_clients: int) -> FederatedDataset:
    """Grow ``fed`` to ``num_clients`` clients by cyclic shard sharing.

    Replica clients reference the archetype's arrays directly (no copies), so
    the dataset's memory footprint stays that of the archetypes.
    """
    archetypes = fed.clients
    clients = [
        ClientDataset(
            client_id=cid,
            images=archetypes[cid % len(archetypes)].images,
            labels=archetypes[cid % len(archetypes)].labels,
            val_images=archetypes[cid % len(archetypes)].val_images,
            val_labels=archetypes[cid % len(archetypes)].val_labels,
        )
        for cid in range(num_clients)
    ]
    return FederatedDataset(
        clients=clients,
        test_images=fed.test_images,
        test_labels=fed.test_labels,
        scheme=fed.scheme,
    )


def run_fairbfl(
    dataset: FederatedDataset,
    *,
    config: FairBFLConfig | None = None,
    num_rounds: int | None = None,
) -> tuple[FairBFLTrainer, TrainingHistory]:
    """Construct and run a FAIR-BFL trainer; returns (trainer, history)."""
    cfg = config or FairBFLConfig()
    trainer = FairBFLTrainer(dataset, cfg)
    history = trainer.run(num_rounds=num_rounds)
    return trainer, history


def run_fedavg(
    dataset: FederatedDataset,
    *,
    config: FedAvgConfig | None = None,
    num_rounds: int | None = None,
) -> tuple[FedAvgTrainer, TrainingHistory]:
    """Construct and run a FedAvg trainer; returns (trainer, history)."""
    cfg = config or FedAvgConfig()
    trainer = FedAvgTrainer(dataset, cfg)
    history = trainer.run(num_rounds=num_rounds)
    return trainer, history


def run_fedprox(
    dataset: FederatedDataset,
    *,
    config: FedProxConfig | None = None,
    num_rounds: int | None = None,
) -> tuple[FedProxTrainer, TrainingHistory]:
    """Construct and run a FedProx trainer; returns (trainer, history)."""
    cfg = config or FedProxConfig()
    trainer = FedProxTrainer(dataset, cfg)
    history = trainer.run(num_rounds=num_rounds)
    return trainer, history


def run_vanilla_blockchain(
    *,
    config: VanillaBlockchainConfig | None = None,
) -> tuple[VanillaBlockchainSimulator, TrainingHistory]:
    """Construct and run the vanilla-blockchain baseline; returns (simulator, history)."""
    cfg = config or VanillaBlockchainConfig()
    simulator = VanillaBlockchainSimulator(cfg)
    history = simulator.run()
    return simulator, history


@dataclass
class ExperimentSuite:
    """A shared, scaled-down experimental setup for sweeps.

    The paper's full setup (n=100 clients, 100 rounds, full MNIST) takes hours
    in pure Python; the suite exposes one place to set the scale so the
    benchmark harness and examples can run the *same* experiment shapes at
    laptop scale, and EXPERIMENTS.md records the scale actually used.

    Attributes
    ----------
    num_clients, num_samples, num_rounds:
        Population size, dataset size, and round count shared by all runs.
    participation_fraction:
        The λ selection ratio.
    scheme:
        Data-partitioning scheme (``"shard"`` = non-IID default).
    seed:
        Master seed.
    """

    num_clients: int = 20
    num_samples: int = 1500
    num_rounds: int = 10
    participation_fraction: float = 0.5
    scheme: str = "dirichlet"
    noise_std: float = 0.4
    low_quality_fraction: float = 0.0
    model_name: str = "logreg"
    local: LocalTrainingConfig = field(
        default_factory=lambda: LocalTrainingConfig(epochs=2, batch_size=10, learning_rate=0.05)
    )
    delay_params: DelayParameters = field(default_factory=DelayParameters)
    seed: int = 0
    _dataset_cache: dict[tuple, FederatedDataset] = field(default_factory=dict, repr=False)
    _engine: object = field(default=None, repr=False)

    # -- scenario-engine delegation --------------------------------------
    @property
    def engine(self):
        """The suite's :class:`~repro.runner.engine.ExperimentEngine` (lazy)."""
        if self._engine is None:
            from repro.runner.engine import ExperimentEngine

            self._engine = ExperimentEngine()
        return self._engine

    def spec(self, system: str = "fairbfl", **overrides) -> ScenarioSpec:
        """A :class:`ScenarioSpec` at the suite's scale, with ``overrides`` applied.

        This is the bridge between the hand-tuned suite used by the benchmark
        harness and the declarative scenario layer: the spec's defaults are the
        suite's fields, so ``suite.run(system)`` and the former per-figure
        wiring produce identical histories.

        A :class:`ScenarioSpec` cannot express custom delay calibrations or the
        extra local-training knobs (``proximal_mu`` on the shared config,
        ``weight_decay``), so rather than silently running with defaults this
        raises when the suite carries non-default values for them — use the
        explicit ``fairbfl_config()``-style builders for those experiments.
        """
        if self.delay_params != DelayParameters():
            raise ValueError(
                "ExperimentSuite.spec() cannot express custom delay_params; "
                "use the config builders (fairbfl_config, ...) directly"
            )
        if self.local.proximal_mu != 0.0 or self.local.weight_decay != 0.0:
            raise ValueError(
                "ExperimentSuite.spec() cannot express local.proximal_mu/weight_decay; "
                "use the config builders (fairbfl_config, ...) directly"
            )
        base = ScenarioSpec(
            name=str(overrides.pop("name", system)),
            system=system,
            seed=self.seed,
            num_clients=self.num_clients,
            num_samples=self.num_samples,
            num_rounds=self.num_rounds,
            participation=self.participation_fraction,
            scheme=self.scheme,
            noise_std=self.noise_std,
            low_quality_fraction=self.low_quality_fraction,
            model_name=self.model_name,
            epochs=self.local.epochs,
            batch_size=self.local.batch_size,
            learning_rate=self.local.learning_rate,
        )
        return base.with_overrides(**overrides) if overrides else base.validate()

    def run(self, system: str = "fairbfl", **overrides) -> TrainingHistory:
        """Run one system at the suite's scale through the experiment engine."""
        return self.engine.run(self.spec(system, **overrides))

    # ------------------------------------------------------------------
    def dataset(self, *, num_clients: int | None = None, scheme: str | None = None) -> FederatedDataset:
        """Build (and memoise) the federated dataset for a given population size."""
        n = int(num_clients or self.num_clients)
        sch = scheme or self.scheme
        key = (n, sch)
        if key not in self._dataset_cache:
            self._dataset_cache[key] = build_federated_dataset(
                num_clients=n,
                num_samples=self.num_samples,
                scheme=sch,
                seed=self.seed,
                noise_std=self.noise_std,
                low_quality_fraction=self.low_quality_fraction,
            )
        return self._dataset_cache[key]

    # -- config builders -------------------------------------------------
    def fairbfl_config(self, **overrides) -> FairBFLConfig:
        """FAIR-BFL configuration at the suite's scale (overridable per experiment)."""
        base = FairBFLConfig(
            num_rounds=self.num_rounds,
            participation_fraction=self.participation_fraction,
            local=self.local,
            model_name=self.model_name,
            delay_params=self.delay_params,
            seed=self.seed,
        )
        return replace(base, **overrides) if overrides else base

    def fedavg_config(self, **overrides) -> FedAvgConfig:
        """FedAvg configuration at the suite's scale."""
        base = FedAvgConfig(
            num_rounds=self.num_rounds,
            participation_fraction=self.participation_fraction,
            local=self.local,
            model_name=self.model_name,
            delay_params=self.delay_params,
            seed=self.seed,
        )
        return replace(base, **overrides) if overrides else base

    def fedprox_config(self, *, proximal_mu: float = 0.01, drop_percent: float = 0.0, **overrides) -> FedProxConfig:
        """FedProx configuration at the suite's scale."""
        base = FedProxConfig.from_fedavg(
            self.fedavg_config(**overrides),
            proximal_mu=proximal_mu,
            drop_percent=drop_percent,
        )
        return base

    def blockchain_config(self, *, num_workers: int | None = None, num_miners: int = 2) -> VanillaBlockchainConfig:
        """Vanilla-blockchain configuration at the suite's scale."""
        return VanillaBlockchainConfig(
            num_workers=int(num_workers or self.num_clients),
            num_miners=num_miners,
            num_rounds=self.num_rounds,
            delay_params=self.delay_params,
            seed=self.seed,
        )
