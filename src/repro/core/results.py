"""Result containers and summaries shared by examples and benchmarks.

The benchmark harness regenerates each paper figure as a table of rows
(one per x-axis point and system); :class:`ComparisonResult` is the common
container for those tables and knows how to render itself as aligned text, so
every bench target prints "the same rows/series the paper reports".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.fl.history import TrainingHistory

__all__ = ["summarize_history", "ComparisonResult"]


def summarize_history(history: TrainingHistory, *, convergence: ConvergenceCriterion | None = None) -> dict:
    """One-line summary of a run: delays, accuracies, convergence round/time."""
    criterion = convergence or ConvergenceCriterion()
    acc = history.accuracies
    converged_round = criterion.converged_at(acc) if acc.size else None
    converged_time = (
        float(history.elapsed_times[converged_round])
        if converged_round is not None and converged_round < len(history)
        else None
    )
    return {
        "label": history.label,
        "rounds": len(history),
        "average_delay": history.average_delay(),
        "average_accuracy": history.average_accuracy(),
        "final_accuracy": history.final_accuracy(),
        "total_time": float(history.elapsed_times[-1]) if len(history) else 0.0,
        "converged_round": converged_round,
        "converged_time": converged_time,
    }


@dataclass
class ComparisonResult:
    """A figure/table reproduction: named columns, one row per data point.

    Attributes
    ----------
    title:
        Human-readable experiment title (e.g. ``"Figure 4a -- average delay"``).
    columns:
        Ordered column names.
    rows:
        One list per row, aligned with ``columns``.
    notes:
        Free-form commentary (calibration caveats, expected orderings).
    """

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row; the number of values must match the columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values per row, got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[object]:
        """All values of the named column."""
        try:
            idx = self.columns.index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}; have {self.columns}") from exc
        return [row[idx] for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned plain-text table (what the bench targets print)."""
        def fmt(value: object) -> str:
            if isinstance(value, float) or isinstance(value, np.floating):
                return f"{float(value):.4f}"
            return str(value)

        header = [self.title, "=" * len(self.title)]
        str_rows = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        header.append("  ".join(col.ljust(w) for col, w in zip(self.columns, widths)))
        header.append("  ".join("-" * w for w in widths))
        body = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in str_rows]
        footer = [f"note: {n}" for n in self.notes]
        return "\n".join(header + body + footer)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
