"""The FAIR-BFL orchestrator (Algorithm 1).

One :class:`FairBFLTrainer` owns the complete system: the federated clients
and their data shards, the miners with replicated ledgers, the RSA key store,
the incentive mechanism, the optional attack scheduler, and the delay model.
Each call to :meth:`run_round` executes the procedures selected by the
configured operating mode and appends one block (Assumption 2) containing the
round's global update and reward list.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.attacks.gradient_attacks import make_attack
from repro.attacks.scheduler import AttackScheduler
from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.miner import Miner
from repro.blockchain.transaction import make_global_update_transaction
from repro.core.config import FairBFLConfig
from repro.core.flexibility import OperatingMode, Procedure, procedures_for_mode
from repro.core.procedures import (
    RoundContext,
    apply_round_mode,
    procedure_exchange,
    procedure_global_update,
    procedure_local_update,
    procedure_mining,
    procedure_upload,
)
from repro.fl.aggregation import merge_stale_updates
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.robust import make_defense
from repro.incentive.distance import cosine_distance_to_reference
from repro.crypto.keystore import KeyStore
from repro.datasets.federated import FederatedDataset
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.selection import ContributionBasedSelector, RandomSelector
from repro.incentive.rewards import RewardLedger
from repro.incentive.strategies import make_strategy
from repro.net.substrate import BeginRoundReport, GossipSubstrate
from repro.nn.metrics import accuracy
from repro.nn.models import ModelFactory
from repro.nn.module import Module
from repro.runner.checkpoint import CheckpointMixin
from repro.runner.executor import ParallelExecutor
from repro.nn.parameters import get_flat_parameters, set_flat_parameters
from repro.sim.rounds import EventRoundSimulator, RoundTiming
from repro.utils.rng import new_rng
from repro.utils.timer import SimulatedClock

__all__ = ["FairBFLTrainer"]


class FairBFLTrainer(CheckpointMixin):
    """Runs FAIR-BFL over a federated dataset.

    Parameters
    ----------
    dataset:
        The partitioned dataset (paper: non-IID MNIST split over n=100 clients).
    config:
        The run configuration; see :class:`repro.core.config.FairBFLConfig`.
    """

    label = "fair-bfl"

    def __init__(self, dataset: FederatedDataset, config: FairBFLConfig) -> None:
        self.dataset = dataset
        self.config = config
        self.mode: OperatingMode = config.operating_mode
        seed = config.seed

        # -- crypto / identities ------------------------------------------------
        self.keystore: KeyStore | None = KeyStore(seed=seed) if config.verify_signatures else None
        self.miner_ids = [f"miner-{k}" for k in range(config.num_miners)]
        if self.keystore is not None:
            for cid in range(dataset.num_clients):
                self.keystore.register(f"client-{cid}")
            for mid in self.miner_ids:
                self.keystore.register(mid)

        # -- model / clients -----------------------------------------------------
        input_dim = int(dataset.clients[0].images.shape[1])
        num_classes = max(
            10, int(max(int(c.labels.max(initial=0)) for c in dataset.clients) + 1)
        )
        # A value-typed (picklable) factory: required so whole clients can be
        # shipped to the process-backend workers of the parallel executor.
        self._model_factory: Callable[[], Module] = ModelFactory(
            model_name=config.model_name,
            input_dim=input_dim,
            num_classes=num_classes,
            seed=seed,
            label=self.label,
            hidden_sizes=tuple(config.hidden_sizes),
        )
        self.global_model = self._model_factory()
        initial_parameters = get_flat_parameters(self.global_model)
        self.clients: dict[int, FLClient] = {
            shard.client_id: FLClient(
                shard,
                self._model_factory,
                new_rng(seed, self.label, "client", shard.client_id),
            )
            for shard in dataset.clients
        }

        # -- blockchain ------------------------------------------------------------
        enforce_pow = config.use_real_pow
        genesis = Block.genesis(
            initial_global_update=make_global_update_transaction(
                "genesis", -1, initial_parameters, keystore=None
            )
        )
        self.miners: list[Miner] = []
        for mid in self.miner_ids:
            chain = Blockchain(enforce_pow=enforce_pow)
            chain.add_genesis(genesis)
            self.miners.append(
                Miner(
                    miner_id=mid,
                    chain=chain,
                    keystore=self.keystore,
                    verify_signatures=config.verify_signatures,
                )
            )

        # -- network substrate -------------------------------------------------------
        # With the default "global" topology no substrate exists and the
        # replicated single-network path below runs bit-identically to
        # earlier releases; any other topology gives every miner its own
        # chain view, peer set, and mempool over seeded gossip.
        self.net: GossipSubstrate | None = None
        if config.topology != "global":
            self.net = GossipSubstrate(
                miners=self.miners,
                topology=config.topology,
                peer_k=config.peer_k,
                partition=config.partition,
                churn=config.churn,
                seed=seed,
                base_latency=config.delay_params.block_broadcast_per_miner,
            )

        # -- incentive / selection ---------------------------------------------------
        self.strategy = make_strategy(config.strategy)
        if config.strategy == "discard":
            self.selector: RandomSelector = ContributionBasedSelector(
                config.participation_fraction
            )
        else:
            self.selector = RandomSelector(config.participation_fraction)
        self.reward_ledger = RewardLedger()

        # -- attacks / defenses --------------------------------------------------------
        self.attack_scheduler: AttackScheduler | None = None
        if config.enable_attacks:
            self.attack_scheduler = AttackScheduler(
                attack=make_attack(config.attack_name),
                min_attackers=config.min_attackers,
                max_attackers=config.max_attackers,
            )
        # The robust-aggregation pipeline every gradient set (fresh and stale)
        # passes through before Procedure II; None when defense == "none".
        self.defense = make_defense(
            config.defense, attacker_fraction=config.defense_fraction
        )

        # -- execution -------------------------------------------------------------------
        self.executor = ParallelExecutor(
            config.executor_backend, config.executor_workers
        )

        # -- timing / rng ----------------------------------------------------------------
        # One discrete-event simulation per round owns the timing: client
        # uploads, miner exchanges, and block solves are scheduled events, and
        # the round modes (semi_sync/async) read the arrival times to decide
        # which gradients make the round.
        self.round_sim = EventRoundSimulator(
            config.delay_params,
            new_rng(seed, self.label, "delay"),
            round_mode=config.round_mode,
            straggler_deadline=config.straggler_deadline,
            async_quorum=config.async_quorum,
            record_trace=True,
        )
        #: Async-mode carry-over: (parameter vector, origin round) per late update.
        self._stale_buffer: list[tuple[np.ndarray, int]] = []
        self._selection_rng = new_rng(seed, self.label, "selection")
        self._upload_rng = new_rng(seed, self.label, "upload")
        self._mining_rng = new_rng(seed, self.label, "mining")
        self._attack_rng = new_rng(seed, self.label, "attack")
        self.clock = SimulatedClock()
        self.history = TrainingHistory(label=self.label)

    # ------------------------------------------------------------------
    def _checkpoint_client_map(self) -> dict:
        return self.clients

    @property
    def chain(self) -> Blockchain:
        """The canonical ledger view.

        With the ``global`` topology every replica is identical, so the first
        miner's chain *is* the ledger.  On the gossip substrate views can
        diverge (partition, churn), so the canonical view is the fork-choice
        winner among the online nodes.
        """
        if self.net is not None:
            return self.net.best_chain()
        return self.miners[0].chain

    def current_global_parameters(self) -> np.ndarray:
        """Procedure I's read of the global parameters.

        In full-BFL and chain-only modes the parameters come from the latest
        block (Assumption 2 guarantees each block carries the round's global
        gradient).  In FL-only mode there is no ledger update, so the trainer's
        off-chain global model is the source of truth.
        """
        if self.mode is OperatingMode.FL_ONLY:
            return get_flat_parameters(self.global_model)
        params = self.chain.latest_global_update()
        if params is None:
            return get_flat_parameters(self.global_model)
        return params

    def global_test_accuracy(self) -> float:
        """Accuracy of the on-chain global model on the held-out test set."""
        params = self.current_global_parameters()
        set_flat_parameters(self.global_model, params)
        self.global_model.eval()
        logits = self.global_model.forward(self.dataset.test_images)
        return accuracy(logits, self.dataset.test_labels)

    # ------------------------------------------------------------------
    def _apply_attacks(self, ctx: RoundContext) -> None:
        """Designate attackers for the round and forge their updates in place."""
        if self.attack_scheduler is None or not ctx.updates:
            return
        # Activation is keyed off the same kernel-simulated clock that times
        # the rounds (the clock advances by each round's event-kernel total).
        attacker_ids = self.attack_scheduler.designate(
            [u.client_id for u in ctx.updates], self._attack_rng, sim_time=self.clock.now
        )
        ctx.attacker_ids = attacker_ids
        if not attacker_ids:
            return
        attackers = set(attacker_ids)
        forged_updates = []
        for update in ctx.updates:
            if update.client_id in attackers:
                forged_updates.append(
                    self.attack_scheduler.forge(
                        update,
                        self._attack_rng,
                        global_parameters=ctx.global_parameters,
                    )
                )
            else:
                forged_updates.append(update)
        ctx.updates = forged_updates

    def _round_accuracy(self, ctx: RoundContext) -> float:
        """Average verification accuracy of the new global model across participants.

        The paper averages per-client verification accuracies; evaluating the
        *new global parameters* on each participant's verification split makes
        the metric sensitive to aggregation quality (fairness weighting,
        discarding, poisoning) rather than to purely local fits.
        """
        if ctx.new_global_parameters is None or not ctx.selected_clients:
            return self.global_test_accuracy()
        accs = [
            self.clients[cid].evaluate(ctx.new_global_parameters)
            for cid in ctx.selected_clients
        ]
        return float(np.mean(accs))

    #: Procedure → simulation-stage name (Procedures I-V on the event kernel).
    _PROCEDURE_STAGES = {
        Procedure.LOCAL_UPDATE: "local",
        Procedure.UPLOAD: "upload",
        Procedure.EXCHANGE: "exchange",
        Procedure.GLOBAL_UPDATE: "global",
        Procedure.MINING: "mining",
    }

    def _round_timing(self, ctx: RoundContext, procedures: tuple[Procedure, ...]) -> RoundTiming:
        """Simulate the round on the event kernel for exactly the procedures that ran.

        Returns the full :class:`~repro.sim.rounds.RoundTiming` — the five-term
        delay breakdown plus the per-client upload arrivals that the
        semi-sync/async round modes act on.

        Semantics note: the simulation runs *before* Procedure II (its arrival
        times decide who uploads at all), so the aggregation term ``t_gl`` is
        priced over the upload-window arrivals rather than the
        post-signature-check gradient count the analytic model used.  The two
        differ only when a signed upload is rejected, which the calibrated
        scenarios never produce; callers that know a different gradient count
        can pass ``num_gradients`` to
        :meth:`~repro.sim.rounds.EventRoundSimulator.fairbfl_round`.
        """
        cfg = self.config
        batches = {
            cid: float(np.ceil(self.clients[cid].num_samples / cfg.local.batch_size))
            for cid in ctx.selected_clients
        }
        return self.round_sim.fairbfl_round(
            client_ids=list(ctx.selected_clients),
            num_miners=cfg.num_miners,
            batches_per_epoch=batches,
            epochs=cfg.local.epochs,
            with_clustering=True,
            stages=frozenset(self._PROCEDURE_STAGES[p] for p in procedures),
        )

    #: Stale updates whose *direction* has cosine distance >= this bound to the
    #: round's fresh consensus direction are rejected instead of blended
    #: (distance 1 = orthogonal; sign-flipped forgeries land near 2).
    STALE_ALIGNMENT_CUTOFF = 1.0

    def _apply_stale_updates(self, ctx: RoundContext, round_index: int) -> None:
        """Async mode: fold buffered late updates into the round's global parameters.

        Every update that missed a previous round's quorum window joins this
        round's aggregate with weight ``(1 + staleness) ** -staleness_decay``
        (each on-time gradient carries unit weight; staleness is usually one
        round, more if intermediate rounds could not aggregate), then the
        caller buffers this round's own stragglers in turn.

        Late updates never pass through Procedure II's signature check or
        Algorithm 2's contribution filter — they arrive after the window those
        defenses run in — so they are screened here instead: first through the
        configured robust-aggregation defense (the same clip/filter pipeline
        the fresh gradient set passed; an aggregate-replacing defense
        contributes its clip/keep behaviour only, since stale rows must stay
        individual for staleness weighting), then by direction: a stale update
        is only blended if its update direction is positively aligned with the
        round's fresh consensus direction (cosine distance below
        :attr:`STALE_ALIGNMENT_CUTOFF`).  A sign-flipped or scaled-negative
        forgery that deliberately straggles past the quorum is rejected, and
        every rejection is reported in ``extras["stale_rejected"]``.
        """
        if not self._stale_buffer or ctx.new_global_parameters is None:
            return
        fresh_count = max(1, len(ctx.gradient_client_ids))
        previous = np.asarray(ctx.global_parameters, dtype=np.float64)
        fresh = np.asarray(ctx.new_global_parameters, dtype=np.float64)
        stale_matrix = np.stack([vec for vec, _origin in self._stale_buffer], axis=0)
        origins = np.array([origin for _vec, origin in self._stale_buffer])
        if self.defense is not None:
            outcome = self.defense.apply(stale_matrix - previous[None, :])
            ctx.stale_rejected += stale_matrix.shape[0] - len(outcome.kept_indices)
            stale_matrix = previous[None, :] + outcome.deltas
            origins = origins[list(outcome.kept_indices)]
            if stale_matrix.shape[0] == 0:  # pragma: no cover - filters keep >= 1 row
                self._stale_buffer = []
                return
        fresh_delta = fresh - previous
        if float(np.linalg.norm(fresh_delta)) > 1e-12:
            thetas = cosine_distance_to_reference(
                stale_matrix - previous[None, :], fresh_delta
            )
            keep = thetas < self.STALE_ALIGNMENT_CUTOFF
        else:
            # Degenerate round (no movement): no direction to screen against.
            keep = np.ones(stale_matrix.shape[0], dtype=bool)
        ctx.stale_rejected += int(np.count_nonzero(~keep))
        if keep.any():
            staleness = np.maximum(1.0, round_index - origins[keep]).astype(np.float64)
            ctx.new_global_parameters = merge_stale_updates(
                fresh,
                fresh_count,
                stale_matrix[keep],
                staleness,
                decay=self.config.staleness_decay,
            )
            ctx.stale_applied = int(np.count_nonzero(keep))
        self._stale_buffer = []

    # ------------------------------------------------------------------
    def _reconcile_rewards(self) -> None:
        """Rebuild reward balances from the adopted canonical chain.

        After a reorg, rewards granted along the discarded fork are void:
        the canonical history is whatever the adopted chain records, so
        client balances and the ledger totals are overwritten from it.  The
        ledger's per-round history is left alone — it is the as-experienced
        log, and the divergence between the two is exactly what a reorg
        costs the affected clients.
        """
        totals: dict[int, float] = {}
        for label, amount in self.chain.total_rewards_by_client().items():
            _prefix, sep, index_text = str(label).rpartition("-")
            if not sep or not index_text.isdigit():
                continue
            totals[int(index_text)] = totals.get(int(index_text), 0.0) + float(amount)
        for cid, client in self.clients.items():
            client.total_reward = totals.get(cid, 0.0)
        self.reward_ledger.totals = {
            cid: total for cid, total in sorted(totals.items())
        }

    def _run_net_procedures(
        self, ctx: RoundContext, report: "BeginRoundReport", procedures
    ) -> float:
        """Procedures III-V per reachability component (the gossip-substrate path).

        Each component exchanges gradient sets, aggregates, and mines on its
        own chain view — under a partition the sides mine divergent forks.
        The fork-choice-best view afterwards is the round's primary outcome:
        its context fields are copied back into ``ctx`` so reward accounting
        and the round record follow the canonical chain.  Components run in
        deterministic (sorted) order, so the shared mining RNG stream stays
        reproducible.  Returns the max block-propagation latency.
        """
        cfg = self.config
        assert self.net is not None
        miners_by_id = {m.miner_id: m for m in self.miners}
        outcomes: list[tuple[tuple[str, ...], RoundContext]] = []
        max_latency = 0.0
        for component in report.state.components:
            members = [miners_by_id[mid] for mid in component]
            cctx = RoundContext(
                round_index=ctx.round_index,
                global_parameters=ctx.global_parameters,
                selected_clients=list(ctx.selected_clients),
                attacker_ids=list(ctx.attacker_ids),
            )
            if Procedure.EXCHANGE in procedures:
                procedure_exchange(cctx, members)
            if Procedure.GLOBAL_UPDATE in procedures:
                procedure_global_update(
                    cctx,
                    contribution_config=cfg.contribution,
                    strategy=self.strategy,
                    use_fair_aggregation=cfg.use_fair_aggregation,
                    run_incentive=True,
                    defense=self.defense,
                )
            if cctx.new_global_parameters is None:
                # Chain-only mode: the block records the unchanged parameters.
                cctx.new_global_parameters = np.asarray(
                    cctx.global_parameters, dtype=np.float64
                ).copy()
            procedure_mining(
                cctx,
                members,
                self.keystore,
                self._mining_rng,
                use_real_pow=cfg.use_real_pow,
                pow_difficulty=cfg.pow_difficulty,
                timestamp=self.clock.now,
            )
            latency = self.net.commit_block(
                ctx.round_index, cctx.winning_miner, component, sim_time=self.clock.now
            )
            max_latency = max(max_latency, latency)
            outcomes.append((component, cctx))
        best = self.net.best_chain()
        primary = outcomes[0][1]
        for component, cctx in outcomes:
            if any(miners_by_id[mid].chain is best for mid in component):
                primary = cctx
                break
        for name in (
            "gradient_matrix",
            "gradient_client_ids",
            "new_global_parameters",
            "contribution_report",
            "strategy_outcome",
            "reward_list",
            "winning_miner",
            "mined_block",
            "defense_rejected_ids",
            "defense_clipped",
        ):
            setattr(ctx, name, getattr(primary, name))
        return max_latency

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one communication round under the configured operating mode."""
        cfg = self.config
        procedures = procedures_for_mode(self.mode)
        net_report: BeginRoundReport | None = None
        if self.net is not None:
            # Heal/churn reconciliation happens *before* Procedure I reads
            # the global parameters, so a round that follows a partition
            # trains against the post-reorg canonical view.
            net_report = self.net.begin_round(round_index, sim_time=self.clock.now)
            if net_report.reorged:
                self._reconcile_rewards()
        ctx = RoundContext(
            round_index=round_index,
            global_parameters=self.current_global_parameters(),
        )
        ctx.selected_clients = [
            int(c) for c in self.selector.select(self.dataset.num_clients, self._selection_rng)
        ]

        if Procedure.LOCAL_UPDATE in procedures:
            procedure_local_update(ctx, self.clients, cfg.local, executor=self.executor)
            self._apply_attacks(ctx)

        # The event-driven simulation runs before Procedure II: the arrival
        # times it produces decide which uploads make this round's window
        # under the semi_sync/async disciplines.
        timing = self._round_timing(ctx, procedures)
        late_updates: list[ClientUpdate] = apply_round_mode(ctx, timing, cfg.round_mode)

        if Procedure.UPLOAD in procedures:
            procedure_upload(ctx, self.miners, self.keystore, self._upload_rng)
        lost_uploads = 0
        if self.net is not None and net_report is not None:
            lost_uploads = self.net.absorb_uploads(
                ctx.transactions, ctx.client_to_miner, net_report.state
            )
        broadcast_latency = 0.0
        resolved: dict[int, float] = {}
        if self.net is not None and net_report is not None:
            # The gossip-substrate path: Procedures III-V run once per
            # reachability component on that component's own chain views.
            # (Config validation restricts this path to sync BFL/chain-only
            # modes, so the async/fl_only branches below cannot apply.)
            resolved.update(net_report.resolved)
            broadcast_latency = self._run_net_procedures(ctx, net_report, procedures)
            resolved.update(
                self.net.finish_round(
                    round_index, sim_time=self.clock.now, latency=broadcast_latency
                )
            )
        else:
            if Procedure.EXCHANGE in procedures:
                procedure_exchange(ctx, self.miners)
            elif Procedure.UPLOAD in procedures:
                # FL-only mode: no miner exchange, but the (single logical server)
                # still needs the stacked gradient matrix from the first miner.
                procedure_exchange(ctx, self.miners[:1])
            if Procedure.GLOBAL_UPDATE in procedures:
                procedure_global_update(
                    ctx,
                    contribution_config=cfg.contribution,
                    strategy=self.strategy,
                    use_fair_aggregation=cfg.use_fair_aggregation,
                    run_incentive=self.mode is not OperatingMode.FL_ONLY,
                    defense=self.defense,
                )
            if cfg.round_mode == "async":
                # Late arrivals from earlier rounds join this aggregate with
                # staleness-decayed weights; this round's own stragglers are
                # buffered for the next one.  Extending (not replacing) keeps
                # entries alive across rounds that cannot aggregate, so an update
                # can accrue staleness > 1 before it is finally folded in.
                self._apply_stale_updates(ctx, round_index)
                self._stale_buffer.extend(
                    (np.asarray(u.parameters, dtype=np.float64).copy(), round_index)
                    for u in late_updates
                )
            if Procedure.MINING in procedures and ctx.new_global_parameters is None:
                # Chain-only mode skips Procedure IV; the block still records the
                # (unchanged) global parameters so the ledger keeps one block per
                # round, exactly as the functional-scaling analysis assumes.
                ctx.new_global_parameters = np.asarray(
                    ctx.global_parameters, dtype=np.float64
                ).copy()
            if Procedure.MINING in procedures and ctx.new_global_parameters is not None:
                procedure_mining(
                    ctx,
                    self.miners,
                    self.keystore,
                    self._mining_rng,
                    use_real_pow=cfg.use_real_pow,
                    pow_difficulty=cfg.pow_difficulty,
                    timestamp=self.clock.now,
                )
            elif ctx.new_global_parameters is not None:
                # FL-only mode: keep the global model off-chain on the trainer.
                set_flat_parameters(self.global_model, ctx.new_global_parameters)

        # -- incentive bookkeeping ------------------------------------------------
        discarded: list[int] = []
        rewards: dict[int, float] = {}
        if ctx.strategy_outcome is not None:
            discarded = list(ctx.strategy_outcome.discarded_client_ids)
        if ctx.reward_list:
            self.reward_ledger.record_round(round_index, ctx.reward_list)
            rewards = {entry.client_id: entry.reward for entry in ctx.reward_list}
            for entry in ctx.reward_list:
                if entry.client_id in self.clients:
                    self.clients[entry.client_id].grant_reward(entry.reward)
        if discarded and isinstance(self.selector, ContributionBasedSelector):
            self.selector.exclude_for_next_round(discarded)
        if self.attack_scheduler is not None:
            # Detection accounting counts both drop paths: Algorithm 2's
            # discard list and the robust defense's rejections.  (Only
            # strategy discards feed the next-round selection exclusion.)
            dropped = sorted(set(discarded) | set(ctx.defense_rejected_ids))
            self.attack_scheduler.record_round(round_index, ctx.attacker_ids, dropped)

        # -- measurement --------------------------------------------------------------
        breakdown = timing.breakdown.as_dict()
        self.clock.advance(timing.total)
        acc = self._round_accuracy(ctx) if Procedure.LOCAL_UPDATE in procedures else 0.0
        train_loss = (
            float(np.mean([u.train_loss for u in ctx.updates])) if ctx.updates else 0.0
        )
        record = RoundRecord(
            round_index=round_index,
            delay=timing.total,
            accuracy=acc,
            train_loss=train_loss,
            elapsed_time=self.clock.now,
            participants=list(ctx.selected_clients),
            discarded=discarded,
            attackers=list(ctx.attacker_ids),
            rewards=rewards,
            extras={
                "delay_breakdown": breakdown,
                "winning_miner": ctx.winning_miner,
                "chain_height": self.chain.height,
                "rejected_uploads": ctx.rejected_uploads,
                "used_clustering_fallback": (
                    ctx.contribution_report.used_fallback
                    if ctx.contribution_report is not None
                    else False
                ),
                "round_mode": cfg.round_mode,
                "stragglers": list(ctx.straggler_ids),
                "stale_applied": ctx.stale_applied,
                "stale_rejected": ctx.stale_rejected,
                "defense": cfg.defense,
                "defense_rejected": list(ctx.defense_rejected_ids),
                "defense_clipped": ctx.defense_clipped,
                "sim_events": timing.events_processed,
                "event_trace_digest": timing.trace_digest,
            },
        )
        if self.net is not None and net_report is not None:
            # One nested key keeps the global-path extras byte-identical.
            record.extras["net"] = {
                "topology": cfg.topology,
                "online": list(net_report.state.online),
                "components": [list(c) for c in net_report.state.components],
                "partition_active": net_report.state.partition_active,
                "reorged": net_report.reorged,
                "total_reorgs": self.net.total_reorgs,
                "chain_views": self.net.chain_views(),
                "lost_uploads": lost_uploads,
                "broadcast_latency": broadcast_latency,
                "consensus_resolved": {int(r): float(d) for r, d in resolved.items()},
            }
        self.history.append(record)
        return record

    def run(self, *, num_rounds: int | None = None) -> TrainingHistory:
        """Run the configured number of communication rounds."""
        rounds = self.config.num_rounds if num_rounds is None else int(num_rounds)
        for r in range(len(self.history), len(self.history) + rounds):
            self.run_round(r)
        return self.history

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release any worker pools held by the parallel executor."""
        self.executor.close()

    def __enter__(self) -> "FairBFLTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def detection_logs(self):
        """Per-round attacker/drop logs (empty when attacks are disabled)."""
        return [] if self.attack_scheduler is None else list(self.attack_scheduler.logs)

    def average_detection_rate(self) -> float:
        """Average detection rate across logged rounds (Table 2's bottom row)."""
        if self.attack_scheduler is None:
            return 1.0
        return self.attack_scheduler.average_detection_rate()
