"""The successive-halving (ASHA-style) scheduler.

An exhaustive sweep spends a full ``R``-round run on every grid cell even
though most cells are visibly hopeless after a handful of rounds.  The
scheduler here spends its round-evaluations adaptively instead:

1. run every trial to the first rung's fidelity ``r₀`` rounds;
2. rank the trials by a promotion metric and keep the top ``1/eta`` fraction;
3. promote the survivors to the next rung ``r₀·eta`` — **resuming each from
   its stored checkpoint**, so a promotion costs only the new rounds — and
   repeat until the final rung ``R``.

Everything flows through :meth:`repro.runner.engine.ExperimentEngine.run_partial`,
so each rung evaluation is a first-class content-addressed record: an
interrupted search re-run with the same engine/store resumes from whatever
rungs already exist (bit-identically — promotion ranking is deterministic,
ties broken by trial declaration order), and concurrent searches over
overlapping grids share rung records.

Promotion metrics are validated against the registry's capability
declarations: accuracy-based metrics require a system whose registration
says ``needs_dataset=True`` (training happens, accuracies are real), so a
blockchain-only search must use the universal ``delay`` metric — the
mismatch is rejected up front with an actionable :class:`ScenarioError`
instead of silently ranking constant zeros.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.results import summarize_history
from repro.runner.scenario import ScenarioError, ScenarioSpec
from repro.systems.registry import get_system

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.runner.engine import ExperimentEngine

__all__ = [
    "PROMOTION_METRICS",
    "PromotionMetric",
    "TrialScore",
    "RungResult",
    "SearchResult",
    "resolve_metric",
    "check_metric_supported",
    "rung_schedule",
    "run_search",
]


@dataclass(frozen=True)
class PromotionMetric:
    """How trials are ranked at each rung.

    Attributes
    ----------
    name:
        Public metric name (the CLI's ``--metric`` choice).
    summary_key:
        The :func:`~repro.core.results.summarize_history` field scored.
    mode:
        ``"max"`` (higher is better) or ``"min"``.
    needs_accuracy:
        Whether the metric reads training accuracies — only meaningful for
        systems registered with ``needs_dataset=True``; the capability check
        rejects the combination otherwise.
    """

    name: str
    summary_key: str
    mode: str
    needs_accuracy: bool

    def score(self, summary: Mapping[str, object]) -> float:
        """The trial's scalar score from its one-line run summary."""
        return float(summary[self.summary_key])

    def better(self, a: float, b: float) -> bool:
        """Whether score ``a`` strictly beats score ``b`` under this metric."""
        return a > b if self.mode == "max" else a < b


#: The pluggable promotion metrics, by public name.
PROMOTION_METRICS: dict[str, PromotionMetric] = {
    "final_accuracy": PromotionMetric("final_accuracy", "final_accuracy", "max", True),
    "avg_accuracy": PromotionMetric("avg_accuracy", "average_accuracy", "max", True),
    "delay": PromotionMetric("delay", "average_delay", "min", False),
}


def resolve_metric(metric: "PromotionMetric | str") -> PromotionMetric:
    """Normalise a metric name (or pass through a :class:`PromotionMetric`)."""
    if isinstance(metric, PromotionMetric):
        return metric
    try:
        return PROMOTION_METRICS[metric]
    except KeyError:
        raise ScenarioError(
            f"unknown promotion metric {metric!r}; expected one of: "
            + ", ".join(PROMOTION_METRICS)
        ) from None


def check_metric_supported(metric: PromotionMetric, spec: ScenarioSpec) -> None:
    """Reject metric/system pairs the registry's capabilities rule out.

    An accuracy-based metric over a system registered with
    ``needs_dataset=False`` (the vanilla blockchain) would rank constant
    zeros; the search refuses it cleanly and points at the ``delay`` metric,
    which is meaningful for every system.
    """
    system = get_system(spec.system)
    if metric.needs_accuracy and not system.capabilities.needs_dataset:
        raise ScenarioError(
            f"promotion metric {metric.name!r} reads training accuracies, but "
            f"system {system.name!r} is registered with needs_dataset=False "
            "(it performs no training); use metric='delay' to search it"
        )


def rung_schedule(
    max_rounds: int, *, eta: int = 3, min_rounds: int | None = None
) -> tuple[int, ...]:
    """The ascending rung fidelities ``(r₀, r₀·eta, …, R)``.

    ``min_rounds`` defaults to ``ceil(R / eta²)`` (a three-rung ladder), and
    the final rung is always exactly ``max_rounds``.
    """
    max_rounds = int(max_rounds)
    eta = int(eta)
    if eta < 2:
        raise ScenarioError(f"eta must be >= 2, got {eta}")
    if max_rounds < 1:
        raise ScenarioError(f"max_rounds must be positive, got {max_rounds}")
    if min_rounds is None:
        min_rounds = max(1, math.ceil(max_rounds / (eta * eta)))
    min_rounds = int(min_rounds)
    if not (1 <= min_rounds <= max_rounds):
        raise ScenarioError(
            f"min_rounds must lie in [1, max_rounds={max_rounds}], got {min_rounds}"
        )
    rungs: list[int] = []
    r = min_rounds
    while r < max_rounds:
        rungs.append(r)
        r *= eta
    rungs.append(max_rounds)
    return tuple(rungs)


@dataclass(frozen=True)
class TrialScore:
    """One trial's standing at one rung."""

    name: str
    spec: ScenarioSpec
    rounds: int
    score: float
    summary: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class RungResult:
    """One completed rung: the ranked trials and who got promoted."""

    rounds: int
    trials: tuple[TrialScore, ...]
    promoted: tuple[str, ...]


@dataclass
class SearchResult:
    """The outcome of one adaptive search.

    ``leaderboard`` ranks the final-rung survivors (best first);
    ``round_evaluations`` is what this search actually computed (checkpoint
    resumes and cache hits cost zero), against the
    ``grid_round_evaluations = len(trials) · R`` an exhaustive sweep of the
    same cohort would spend.
    """

    metric: str
    mode: str
    eta: int
    rungs: tuple[int, ...]
    rung_results: list[RungResult]
    leaderboard: tuple[TrialScore, ...]
    best: TrialScore
    round_evaluations: int
    grid_round_evaluations: int
    runs_computed: int
    cache_hits: int

    @property
    def evaluation_fraction(self) -> float:
        """Round-evaluations spent as a fraction of the exhaustive grid's."""
        if self.grid_round_evaluations <= 0:
            return 0.0
        return self.round_evaluations / self.grid_round_evaluations


def run_search(
    specs: Iterable[ScenarioSpec],
    *,
    engine: "ExperimentEngine",
    metric: "PromotionMetric | str" = "final_accuracy",
    eta: int = 3,
    min_rounds: int | None = None,
    max_rounds: int | None = None,
) -> SearchResult:
    """Run the successive-halving schedule over ``specs`` and return the result.

    Each spec is one trial; its full fidelity is ``max_rounds`` (default: the
    largest ``num_rounds`` among the trials).  The engine's attached store is
    what makes promotions cheap (checkpoint resume) and the whole search
    interruptible — without one the schedule still produces identical
    rankings, but every rung recomputes from round zero.
    """
    trials = [spec.validate() for spec in specs]
    if not trials:
        raise ScenarioError("search needs at least one scenario")
    names = [spec.name for spec in trials]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ScenarioError(
            "search trials must have unique scenario names; duplicated: "
            + ", ".join(duplicates)
        )
    promotion = resolve_metric(metric)
    for spec in trials:
        check_metric_supported(promotion, spec)
    full = int(max_rounds) if max_rounds is not None else max(s.num_rounds for s in trials)
    rungs = rung_schedule(full, eta=eta, min_rounds=min_rounds)

    evals_before = engine.round_evaluations
    computed_before = engine.runs_computed
    hits_before = engine.cache_hits
    order = {spec.name: index for index, spec in enumerate(trials)}
    sign = -1.0 if promotion.mode == "max" else 1.0

    active = list(trials)
    rung_results: list[RungResult] = []
    leaderboard: tuple[TrialScore, ...] = ()
    for level, rounds in enumerate(rungs):
        scored: list[TrialScore] = []
        for spec in active:
            result = engine.run_partial(spec, rounds, resume_from=rungs[:level])
            summary = summarize_history(result.history)
            scored.append(
                TrialScore(
                    name=spec.name,
                    spec=spec,
                    rounds=rounds,
                    score=promotion.score(summary),
                    summary=summary,
                )
            )
        # Deterministic ranking: metric order, ties broken by the trials'
        # declaration order — so a killed-and-resumed search promotes the
        # exact same set and finishes bit-identically.
        scored.sort(key=lambda t: (sign * t.score, order[t.name]))
        if rounds == rungs[-1]:
            promoted: tuple[str, ...] = ()
            leaderboard = tuple(scored)
        else:
            keep = max(1, len(scored) // int(eta))
            promoted = tuple(t.name for t in scored[:keep])
            promoted_set = set(promoted)
            active = [spec for spec in active if spec.name in promoted_set]
        rung_results.append(RungResult(rounds=rounds, trials=tuple(scored), promoted=promoted))

    return SearchResult(
        metric=promotion.name,
        mode=promotion.mode,
        eta=int(eta),
        rungs=rungs,
        rung_results=rung_results,
        leaderboard=leaderboard,
        best=leaderboard[0],
        round_evaluations=engine.round_evaluations - evals_before,
        grid_round_evaluations=len(trials) * full,
        runs_computed=engine.runs_computed - computed_before,
        cache_hits=engine.cache_hits - hits_before,
    )
