"""Adaptive hyper-parameter search (ASHA / successive halving).

The search layer sits on top of the experiment engine and the
content-addressed run store: :func:`~repro.search.asha.run_search` launches a
scenario cohort at low fidelity (few communication rounds), keeps the top
``1/eta`` fraction at each rung, and promotes the survivors — resuming each
promoted trial from its stored checkpoint instead of replaying it.  See
``docs/search.md`` for semantics and a resume walkthrough, and
:func:`repro.api.search` for the public entry point.
"""

from __future__ import annotations

from repro.search.asha import (
    PROMOTION_METRICS,
    PromotionMetric,
    RungResult,
    SearchResult,
    TrialScore,
    check_metric_supported,
    resolve_metric,
    run_search,
    rung_schedule,
)

__all__ = [
    "PROMOTION_METRICS",
    "PromotionMetric",
    "RungResult",
    "SearchResult",
    "TrialScore",
    "check_metric_supported",
    "resolve_metric",
    "run_search",
    "rung_schedule",
]
