"""Schoolbook RSA: key generation, hash-then-sign signatures, encryption.

FAIR-BFL (paper Figure 2) assigns every client a private key derived from its
ID; the miners hold the corresponding public keys and verify the signature on
every uploaded gradient transaction before using it.  This module provides
that mechanism.

The implementation is deliberately simple (no OAEP/PSS padding) because it
runs inside a simulation where the adversary model is "malicious clients forge
gradient *content*", not "adversaries attack the RSA padding".  Signatures are
``sig = H(message)^d mod n`` with SHA-256 as ``H``; verification recomputes the
digest and checks ``sig^e mod n``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from math import gcd

import numpy as np

from repro.crypto.primes import generate_prime

__all__ = ["RSAKeyPair", "rsa_sign", "rsa_verify", "rsa_encrypt", "rsa_decrypt"]

_DEFAULT_PUBLIC_EXPONENT = 65537


def _digest_int(message: bytes, modulus: int) -> int:
    """SHA-256 digest of ``message`` reduced into the RSA modulus range."""
    digest = hashlib.sha256(message).digest()
    return int.from_bytes(digest, "big") % modulus


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key pair ``(n, e, d)``.

    Attributes
    ----------
    modulus:
        ``n = p * q``.
    public_exponent:
        ``e`` (coprime with Euler's totient).
    private_exponent:
        ``d = e^{-1} mod phi(n)``.
    bits:
        Modulus size in bits (informational).
    """

    modulus: int
    public_exponent: int
    private_exponent: int
    bits: int

    @property
    def public_key(self) -> tuple[int, int]:
        """``(n, e)`` — safe to share with miners."""
        return (self.modulus, self.public_exponent)

    @property
    def private_key(self) -> tuple[int, int]:
        """``(n, d)`` — held only by the owning client."""
        return (self.modulus, self.private_exponent)

    @classmethod
    def generate(cls, rng: np.random.Generator, *, bits: int = 256) -> "RSAKeyPair":
        """Generate a fresh key pair with a ``bits``-bit modulus.

        Parameters
        ----------
        rng:
            Generator used for prime candidates; passing a per-client stream
            makes key assignment reproducible.
        bits:
            Modulus size; must be at least 32 (two >=16-bit primes).
        """
        if bits < 32:
            raise ValueError(f"modulus size must be at least 32 bits, got {bits}")
        half = bits // 2
        e = _DEFAULT_PUBLIC_EXPONENT
        while True:
            p = generate_prime(half, rng)
            q = generate_prime(bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if gcd(e, phi) != 1:
                continue
            d = pow(e, -1, phi)
            return cls(modulus=n, public_exponent=e, private_exponent=d, bits=bits)


def rsa_sign(message: bytes, private_key: tuple[int, int]) -> int:
    """Sign ``message`` (hash-then-sign) with ``(n, d)`` and return the integer signature."""
    n, d = int(private_key[0]), int(private_key[1])
    if n <= 1:
        raise ValueError("invalid RSA modulus")
    return pow(_digest_int(message, n), d, n)


def rsa_verify(message: bytes, signature: int, public_key: tuple[int, int]) -> bool:
    """Verify a signature produced by :func:`rsa_sign` against ``(n, e)``."""
    n, e = int(public_key[0]), int(public_key[1])
    if n <= 1:
        return False
    try:
        recovered = pow(int(signature), e, n)
    except (TypeError, ValueError):
        return False
    return recovered == _digest_int(message, n)


def rsa_encrypt(plaintext_int: int, public_key: tuple[int, int]) -> int:
    """Textbook RSA encryption of an integer smaller than the modulus."""
    n, e = int(public_key[0]), int(public_key[1])
    m = int(plaintext_int)
    if not (0 <= m < n):
        raise ValueError(f"plaintext must lie in [0, modulus), got {m} for modulus {n}")
    return pow(m, e, n)


def rsa_decrypt(ciphertext_int: int, private_key: tuple[int, int]) -> int:
    """Textbook RSA decryption of an integer ciphertext."""
    n, d = int(private_key[0]), int(private_key[1])
    c = int(ciphertext_int)
    if not (0 <= c < n):
        raise ValueError(f"ciphertext must lie in [0, modulus), got {c} for modulus {n}")
    return pow(c, d, n)
