"""Per-client key registry.

"In the beginning, each client is assigned a unique private key according to
its ID, and the corresponding public key will be held by the miners"
(paper Section 4.2).  The :class:`KeyStore` implements exactly that contract:
it generates one key pair per client ID, hands the private key to the client
and exposes only public keys to miners.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.rsa import RSAKeyPair, rsa_sign, rsa_verify
from repro.utils.rng import new_rng

__all__ = ["KeyStore"]


class KeyStore:
    """Registry mapping client IDs to RSA key pairs.

    Parameters
    ----------
    seed:
        Experiment seed; key generation for client ``i`` uses an independent
        stream derived from ``(seed, "rsa-key", i)``.
    key_bits:
        RSA modulus size.  The default (256) keeps key generation fast at
        simulation scale while exercising the full sign/verify code path.
    """

    def __init__(self, seed: int = 0, *, key_bits: int = 256) -> None:
        if key_bits < 32:
            raise ValueError(f"key_bits must be >= 32, got {key_bits}")
        self.seed = int(seed)
        self.key_bits = int(key_bits)
        self._keys: dict[str, RSAKeyPair] = {}

    def register(self, entity_id: str) -> RSAKeyPair:
        """Generate (or return the existing) key pair for ``entity_id``."""
        entity_id = str(entity_id)
        if entity_id not in self._keys:
            rng = new_rng(self.seed, "rsa-key", entity_id)
            self._keys[entity_id] = RSAKeyPair.generate(rng, bits=self.key_bits)
        return self._keys[entity_id]

    def has(self, entity_id: str) -> bool:
        """True when a key pair has been registered for ``entity_id``."""
        return str(entity_id) in self._keys

    def public_key(self, entity_id: str) -> tuple[int, int]:
        """The ``(n, e)`` public key of ``entity_id`` (miners' view).

        Raises
        ------
        KeyError
            If the entity was never registered.
        """
        entity_id = str(entity_id)
        if entity_id not in self._keys:
            raise KeyError(f"no key registered for entity {entity_id!r}")
        return self._keys[entity_id].public_key

    def private_key(self, entity_id: str) -> tuple[int, int]:
        """The ``(n, d)`` private key of ``entity_id`` (client's view)."""
        entity_id = str(entity_id)
        if entity_id not in self._keys:
            raise KeyError(f"no key registered for entity {entity_id!r}")
        return self._keys[entity_id].private_key

    def sign(self, entity_id: str, message: bytes) -> int:
        """Sign ``message`` with the private key of ``entity_id``."""
        return rsa_sign(message, self.private_key(entity_id))

    def verify(self, entity_id: str, message: bytes, signature: int) -> bool:
        """Verify ``signature`` on ``message`` against the public key of ``entity_id``.

        Unknown entities verify as ``False`` rather than raising, because a
        miner receiving a transaction from an unregistered sender should simply
        reject it.
        """
        entity_id = str(entity_id)
        if entity_id not in self._keys:
            return False
        return rsa_verify(message, signature, self._keys[entity_id].public_key)

    def registered_ids(self) -> list[str]:
        """All registered entity IDs, in registration order."""
        return list(self._keys.keys())

    def __len__(self) -> int:
        return len(self._keys)

    @staticmethod
    def batch_register(store: "KeyStore", count: int, prefix: str = "client") -> list[str]:
        """Register ``count`` entities named ``{prefix}-{i}`` and return their IDs."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        ids = [f"{prefix}-{i}" for i in range(count)]
        for entity_id in ids:
            store.register(entity_id)
        return ids
