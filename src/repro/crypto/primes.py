"""Prime generation via Miller-Rabin.

Used by :mod:`repro.crypto.rsa` to generate key pairs.  The implementation is
deterministic given a ``numpy.random.Generator`` so client key assignment is
replayable across runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["is_probable_prime", "generate_prime"]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(n: int, *, rounds: int = 20, rng: np.random.Generator | None = None) -> bool:
    """Miller-Rabin primality test.

    Parameters
    ----------
    n:
        Integer to test (``n >= 0``).
    rounds:
        Number of random witness rounds; 20 rounds gives an error probability
        below ``4**-20`` for composite inputs.
    rng:
        Optional generator for witness selection (falls back to a fixed set of
        deterministic witnesses plus pseudo-random ones derived from ``n``).
    """
    n = int(n)
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness_fails(a: int) -> bool:
        """Return True if witness ``a`` proves ``n`` composite."""
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return False
        return True

    for i in range(rounds):
        if rng is not None:
            # n can exceed the int64 range accepted by Generator.integers, so
            # build the witness from raw random bytes instead.
            num_bytes = (n.bit_length() + 7) // 8 + 1
            raw = int.from_bytes(rng.bytes(num_bytes), "big")
            a = 2 + raw % (n - 3) if n > 4 else 2
        else:
            # Deterministic witnesses: small primes, then a simple expanding sequence.
            a = _SMALL_PRIMES[i % len(_SMALL_PRIMES)] + i * 2
            a = 2 + (a % (n - 3)) if n > 4 else 2
        if witness_fails(a):
            return False
    return True


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """Generate a random probable prime with exactly ``bits`` bits.

    Parameters
    ----------
    bits:
        Bit length (``>= 8``).  Simulation-scale RSA uses 128-512 bit primes.
    rng:
        Source of candidate randomness.
    """
    if bits < 8:
        raise ValueError(f"bits must be >= 8 for prime generation, got {bits}")
    while True:
        # Draw a random odd integer with the top bit set so the product of two
        # such primes has the expected modulus size.
        raw = rng.integers(0, 2, size=bits, dtype=np.int64)
        candidate = 0
        for bit in raw:
            candidate = (candidate << 1) | int(bit)
        candidate |= (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
