"""Cryptography substrate.

FAIR-BFL signs every uploaded gradient with the client's RSA private key and
miners verify with the matching public key (paper Figure 2); blocks are linked
and mined with SHA-256 (Equation 4).  This package implements those primitives
from scratch on Python integers and :mod:`hashlib`:

* :mod:`repro.crypto.primes` — Miller-Rabin primality testing and prime
  generation;
* :mod:`repro.crypto.rsa` — key generation, hash-then-sign signatures, and
  textbook encryption;
* :mod:`repro.crypto.hashing` — SHA-256 helpers and proof-of-work target
  arithmetic;
* :mod:`repro.crypto.keystore` — the per-client key registry miners use to
  verify uploads.

Key sizes are configurable and intentionally small by default (simulation
scale); this is an educational/simulation implementation, not hardened
production cryptography.
"""

from repro.crypto.hashing import (
    difficulty_to_target,
    hash_to_int,
    meets_target,
    sha256_hex,
)
from repro.crypto.keystore import KeyStore
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RSAKeyPair, rsa_decrypt, rsa_encrypt, rsa_sign, rsa_verify

__all__ = [
    "difficulty_to_target",
    "hash_to_int",
    "meets_target",
    "sha256_hex",
    "KeyStore",
    "generate_prime",
    "is_probable_prime",
    "RSAKeyPair",
    "rsa_decrypt",
    "rsa_encrypt",
    "rsa_sign",
    "rsa_verify",
]
