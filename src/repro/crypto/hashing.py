"""SHA-256 helpers and proof-of-work target arithmetic.

Equation (4) of the paper defines mining as finding a nonce such that
``H(nonce + Block) < Target`` where ``Target = Target_1 / difficulty`` and
``Target_1`` is the maximum target.  These helpers implement that arithmetic
on 256-bit integers.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "sha256_hex",
    "hash_to_int",
    "MAX_TARGET",
    "difficulty_to_target",
    "meets_target",
]

#: ``Target_1`` in the paper's Equation (4): the largest possible 256-bit value,
#: i.e. difficulty 1 accepts (almost) every hash.
MAX_TARGET: int = (1 << 256) - 1


def sha256_hex(data: bytes | str) -> str:
    """Hex-encoded SHA-256 digest of ``data`` (str inputs are UTF-8 encoded)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def hash_to_int(hex_digest: str) -> int:
    """Interpret a hex digest as a big-endian integer."""
    return int(hex_digest, 16)


def difficulty_to_target(difficulty: float) -> int:
    """Convert a mining difficulty to an absolute 256-bit target.

    ``difficulty = 1`` maps to :data:`MAX_TARGET` (every hash wins);
    larger difficulties shrink the target proportionally, so the expected
    number of hash evaluations to find a block grows linearly with difficulty.
    """
    if difficulty < 1.0:
        raise ValueError(f"difficulty must be >= 1, got {difficulty}")
    if float(difficulty).is_integer():
        # Exact integer arithmetic avoids the precision loss of float division
        # on 256-bit targets (difficulty 1 must map to exactly MAX_TARGET).
        return max(1, MAX_TARGET // int(difficulty))
    return max(1, min(MAX_TARGET, int(MAX_TARGET / float(difficulty))))


def meets_target(hex_digest: str, target: int) -> bool:
    """True when ``H(...) < Target`` (the winning condition of Equation 4)."""
    if target <= 0:
        raise ValueError(f"target must be positive, got {target}")
    return hash_to_int(hex_digest) < target
