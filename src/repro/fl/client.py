"""Federated clients and their local update procedure.

Procedure I of Algorithm 1: the client reads the global parameters from the
latest block (or from the central server in the FL baselines), runs ``E``
epochs of mini-batch SGD with batch size ``B`` and learning rate ``η`` on its
local shard, and produces the updated parameter vector ``w^i_{r+1}`` that it
will upload.

The same client type also implements the FedProx local objective (an added
proximal term ``(μ/2)·||w - w_global||²``), selected through
:class:`LocalTrainingConfig.proximal_mu`, so the FedProx baseline shares all
of the data/model plumbing with FAIR-BFL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.datasets.federated import ClientDataset
from repro.datasets.loaders import BatchIterator
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.metrics import accuracy
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.nn.parameters import get_flat_parameters, set_flat_parameters
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["LocalTrainingConfig", "ClientUpdate", "FLClient"]


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Hyper-parameters of the local update (paper Table 1 defaults).

    Attributes
    ----------
    epochs:
        Number of local epochs ``E`` (paper default 5).
    batch_size:
        Mini-batch size ``B`` (paper default 10).
    learning_rate:
        SGD step size ``η`` (paper default 0.01; swept in Figure 5).
    proximal_mu:
        FedProx proximal coefficient ``μ``; 0 recovers plain SGD / FedAvg.
    weight_decay:
        Optional L2 regularisation (0 by default; a small value makes the
        logistic-regression objective strongly convex for the Theorem 3.1
        benchmark).
    """

    epochs: int = 5
    batch_size: int = 10
    learning_rate: float = 0.01
    proximal_mu: float = 0.0
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        check_positive("learning_rate", self.learning_rate)
        check_non_negative("proximal_mu", self.proximal_mu)
        check_non_negative("weight_decay", self.weight_decay)


@dataclass
class ClientUpdate:
    """What a client hands to its miner/server after a local update.

    Attributes
    ----------
    client_id:
        Index of the producing client.
    parameters:
        Updated flat parameter vector ``w^i_{r+1}``.
    num_samples:
        Size of the client's local training shard (the quantity vanilla BFL
        would have asked the client to self-report).
    train_loss:
        Mean training loss over the local epochs.
    val_accuracy:
        Accuracy on the client's local verification split under the *updated*
        parameters; the paper averages these into "average accuracy".
    is_malicious:
        Set by the attack layer when the update has been forged.
    """

    client_id: int
    parameters: np.ndarray
    num_samples: int
    train_loss: float
    val_accuracy: float
    is_malicious: bool = False
    metadata: dict = field(default_factory=dict)

    def copy_with_parameters(self, parameters: np.ndarray) -> "ClientUpdate":
        """Return a copy of this update carrying different parameters."""
        return ClientUpdate(
            client_id=self.client_id,
            parameters=np.asarray(parameters, dtype=np.float64),
            num_samples=self.num_samples,
            train_loss=self.train_loss,
            val_accuracy=self.val_accuracy,
            is_malicious=self.is_malicious,
            metadata=dict(self.metadata),
        )


class FLClient:
    """A federated client owning a local data shard and a scratch model.

    Parameters
    ----------
    dataset:
        The client's :class:`~repro.datasets.federated.ClientDataset`.
    model_factory:
        Zero-argument callable building a fresh model instance; called lazily
        the first time the client trains (each client keeps one scratch model
        and re-loads the global parameters into it every round).
    rng:
        The client's private generator (mini-batch shuffling).
    """

    def __init__(
        self,
        dataset: ClientDataset,
        model_factory: Callable[[], Module],
        rng: np.random.Generator,
    ) -> None:
        self.dataset = dataset
        self.client_id = int(dataset.client_id)
        self._model_factory = model_factory
        self._model: Module | None = None
        self.rng = rng
        self.rounds_participated = 0
        self.total_reward = 0.0

    # -- model management ----------------------------------------------------
    @property
    def model(self) -> Module:
        """The client's scratch model (created on first use)."""
        if self._model is None:
            self._model = self._model_factory()
        return self._model

    @property
    def num_samples(self) -> int:
        """Local training-set size |D_i|."""
        return self.dataset.num_samples

    # -- Procedure I: local learning and update -------------------------------
    def local_update(
        self,
        global_parameters: np.ndarray,
        config: LocalTrainingConfig,
    ) -> ClientUpdate:
        """Run ``E`` epochs of mini-batch SGD starting from ``global_parameters``.

        Implements Algorithm 1 lines 6-11 (and, when ``config.proximal_mu > 0``,
        the FedProx local objective).  Returns the client's
        :class:`ClientUpdate`.
        """
        model = self.model
        set_flat_parameters(model, global_parameters)
        model.train()
        loss_fn = SoftmaxCrossEntropyLoss()
        optimizer = SGD(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        global_ref = np.asarray(global_parameters, dtype=np.float64)

        batches = BatchIterator(
            self.dataset.images,
            self.dataset.labels,
            config.batch_size,
            rng=self.rng,
            shuffle=True,
        )

        losses: list[float] = []
        params = list(model.parameters())
        # Pre-compute the per-parameter slices of the global reference vector so
        # the proximal-gradient term can be added without re-flattening.
        offsets: list[tuple[int, int]] = []
        cursor = 0
        for p in params:
            offsets.append((cursor, cursor + p.size))
            cursor += p.size

        for _epoch in range(config.epochs):
            for x_batch, y_batch in batches.epoch():
                optimizer.zero_grad()
                logits = model.forward(x_batch)
                loss = loss_fn.forward(logits, y_batch)
                model.backward(loss_fn.backward())
                if config.proximal_mu > 0.0:
                    # FedProx: add mu * (w - w_global) to each parameter gradient.
                    for p, (lo, hi) in zip(params, offsets):
                        p.grad += config.proximal_mu * (
                            p.value - global_ref[lo:hi].reshape(p.shape)
                        )
                optimizer.step()
                losses.append(loss)

        self.rounds_participated += 1
        updated = get_flat_parameters(model)
        val_acc = self.evaluate(updated)
        return ClientUpdate(
            client_id=self.client_id,
            parameters=updated,
            num_samples=self.num_samples,
            train_loss=float(np.mean(losses)) if losses else 0.0,
            val_accuracy=val_acc,
        )

    def evaluate(self, parameters: np.ndarray) -> float:
        """Accuracy of ``parameters`` on the client's local verification split."""
        model = self.model
        set_flat_parameters(model, parameters)
        model.eval()
        logits = model.forward(self.dataset.val_images)
        return accuracy(logits, self.dataset.val_labels)

    def grant_reward(self, amount: float) -> float:
        """Credit a reward issued by the incentive mechanism; returns the new total."""
        self.total_reward += float(amount)
        return self.total_reward
